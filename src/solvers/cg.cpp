#include "solvers/cg.h"

#include <algorithm>
#include <cmath>

#include "blas/hblas.h"
#include "common/cancel.h"
#include "common/error.h"

namespace fastsc::solvers {

namespace {

/// Shared PCG loop; `apply_prec` maps r -> z (identity for plain CG).
template <class Prec>
CgResult pcg(const std::function<void(const real*, real*)>& matvec, index_t n,
             const real* b, real* x, const Prec& apply_prec,
             const CgConfig& config) {
  FASTSC_CHECK(n >= 1, "system size must be positive");
  std::vector<real> r(static_cast<usize>(n));
  std::vector<real> z(static_cast<usize>(n));
  std::vector<real> p(static_cast<usize>(n));
  std::vector<real> ap(static_cast<usize>(n));

  const real bnorm = hblas::nrm2(n, b);
  CgResult result;
  if (bnorm == 0) {
    for (index_t i = 0; i < n; ++i) x[i] = 0;
    result.converged = true;
    return result;
  }

  // r = b - A x
  matvec(x, r.data());
  for (index_t i = 0; i < n; ++i) r[static_cast<usize>(i)] = b[i] - r[static_cast<usize>(i)];
  apply_prec(r.data(), z.data());
  hblas::copy(n, z.data(), p.data());
  real rz = hblas::dot(n, r.data(), z.data());

  for (index_t it = 0; it < config.max_iters; ++it) {
    cancel::poll("cg.iteration");
    result.relative_residual = hblas::nrm2(n, r.data()) / bnorm;
    if (result.relative_residual <= config.tol) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    matvec(p.data(), ap.data());
    const real pap = hblas::dot(n, p.data(), ap.data());
    FASTSC_CHECK(pap > 0, "operator is not positive definite (p'Ap <= 0)");
    const real alpha = rz / pap;
    hblas::axpy(n, alpha, p.data(), x);
    hblas::axpy(n, -alpha, ap.data(), r.data());
    apply_prec(r.data(), z.data());
    const real rz_new = hblas::dot(n, r.data(), z.data());
    const real beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) {
      p[static_cast<usize>(i)] = z[static_cast<usize>(i)] +
                                 beta * p[static_cast<usize>(i)];
    }
    result.iterations = it + 1;
  }
  result.relative_residual = hblas::nrm2(n, r.data()) / bnorm;
  result.converged = result.relative_residual <= config.tol;
  return result;
}

}  // namespace

CgResult conjugate_gradient(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, real* x, const CgConfig& config) {
  return pcg(matvec, n, b, x,
             [n](const real* r, real* z) { hblas::copy(n, r, z); }, config);
}

CgResult conjugate_gradient_jacobi(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, const real* inv_diag, real* x, const CgConfig& config) {
  return pcg(
      matvec, n, b, x,
      [n, inv_diag](const real* r, real* z) {
        for (index_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
      },
      config);
}

CgBlockResult conjugate_gradient_block(
    const std::function<void(const real* x, real* y, index_t nvec)>&
        block_matvec,
    index_t n, index_t nrhs, const real* b, real* x, const CgConfig& config) {
  FASTSC_CHECK(n >= 1, "system size must be positive");
  FASTSC_CHECK(nrhs >= 0, "right-hand-side count must be non-negative");
  CgBlockResult result;
  result.rhs.resize(static_cast<usize>(nrhs));
  if (nrhs == 0) {
    result.all_converged = true;
    return result;
  }
  const usize total = static_cast<usize>(nrhs) * static_cast<usize>(n);
  std::vector<real> r(total);
  std::vector<real> p(total);
  std::vector<real> ap(total);
  std::vector<real> panel(total);
  std::vector<real> bnorm(static_cast<usize>(nrhs));
  std::vector<real> rz(static_cast<usize>(nrhs));
  std::vector<index_t> active;
  active.reserve(static_cast<usize>(nrhs));

  // R = B - A X, batched over all systems.
  block_matvec(x, ap.data(), nrhs);
  ++result.block_applies;
  for (index_t i = 0; i < nrhs; ++i) {
    const usize off = static_cast<usize>(i) * static_cast<usize>(n);
    bnorm[static_cast<usize>(i)] = hblas::nrm2(n, b + off);
    if (bnorm[static_cast<usize>(i)] == 0) {
      for (index_t j = 0; j < n; ++j) x[off + static_cast<usize>(j)] = 0;
      result.rhs[static_cast<usize>(i)].converged = true;
      continue;
    }
    for (index_t j = 0; j < n; ++j) {
      r[off + static_cast<usize>(j)] =
          b[off + static_cast<usize>(j)] - ap[off + static_cast<usize>(j)];
    }
    hblas::copy(n, r.data() + off, p.data() + off);
    rz[static_cast<usize>(i)] = hblas::dot(n, r.data() + off, r.data() + off);
    active.push_back(i);
  }

  std::vector<index_t> still_active;
  for (index_t it = 0; it < config.max_iters && !active.empty(); ++it) {
    cancel::poll("cg.block_iteration");
    // Convergence checks first, same cadence as the single-RHS loop; a
    // system that converges drops out of this iteration's batch.
    still_active.clear();
    for (index_t i : active) {
      CgResult& out = result.rhs[static_cast<usize>(i)];
      const usize off = static_cast<usize>(i) * static_cast<usize>(n);
      out.relative_residual =
          hblas::nrm2(n, r.data() + off) / bnorm[static_cast<usize>(i)];
      if (out.relative_residual <= config.tol) {
        out.converged = true;
        out.iterations = it;
      } else {
        still_active.push_back(i);
      }
    }
    active.swap(still_active);
    if (active.empty()) break;

    // One batched product over the active panel.
    const auto act = static_cast<index_t>(active.size());
    for (index_t k = 0; k < act; ++k) {
      hblas::copy(n,
                  p.data() + static_cast<usize>(active[static_cast<usize>(k)]) *
                                 static_cast<usize>(n),
                  panel.data() + static_cast<usize>(k) * static_cast<usize>(n));
    }
    block_matvec(panel.data(), ap.data(), act);
    ++result.block_applies;

    for (index_t k = 0; k < act; ++k) {
      const index_t i = active[static_cast<usize>(k)];
      const usize off = static_cast<usize>(i) * static_cast<usize>(n);
      real* pi = p.data() + off;
      real* ri = r.data() + off;
      const real* apk =
          ap.data() + static_cast<usize>(k) * static_cast<usize>(n);
      const real pap = hblas::dot(n, pi, apk);
      FASTSC_CHECK(pap > 0, "operator is not positive definite (p'Ap <= 0)");
      const real alpha = rz[static_cast<usize>(i)] / pap;
      hblas::axpy(n, alpha, pi, x + off);
      hblas::axpy(n, -alpha, apk, ri);
      const real rz_new = hblas::dot(n, ri, ri);
      const real beta = rz_new / rz[static_cast<usize>(i)];
      rz[static_cast<usize>(i)] = rz_new;
      for (index_t j = 0; j < n; ++j) pi[j] = ri[j] + beta * pi[j];
      result.rhs[static_cast<usize>(i)].iterations = it + 1;
    }
  }
  // Budget exhausted for whatever stayed active.
  for (index_t i : active) {
    CgResult& out = result.rhs[static_cast<usize>(i)];
    const usize off = static_cast<usize>(i) * static_cast<usize>(n);
    out.relative_residual =
        hblas::nrm2(n, r.data() + off) / bnorm[static_cast<usize>(i)];
    out.converged = out.relative_residual <= config.tol;
  }
  result.all_converged = true;
  for (const CgResult& out : result.rhs) {
    result.iterations = std::max(result.iterations, out.iterations);
    result.all_converged = result.all_converged && out.converged;
  }
  return result;
}

}  // namespace fastsc::solvers
