#include "solvers/cg.h"

#include <cmath>

#include "blas/hblas.h"
#include "common/error.h"

namespace fastsc::solvers {

namespace {

/// Shared PCG loop; `apply_prec` maps r -> z (identity for plain CG).
template <class Prec>
CgResult pcg(const std::function<void(const real*, real*)>& matvec, index_t n,
             const real* b, real* x, const Prec& apply_prec,
             const CgConfig& config) {
  FASTSC_CHECK(n >= 1, "system size must be positive");
  std::vector<real> r(static_cast<usize>(n));
  std::vector<real> z(static_cast<usize>(n));
  std::vector<real> p(static_cast<usize>(n));
  std::vector<real> ap(static_cast<usize>(n));

  const real bnorm = hblas::nrm2(n, b);
  CgResult result;
  if (bnorm == 0) {
    for (index_t i = 0; i < n; ++i) x[i] = 0;
    result.converged = true;
    return result;
  }

  // r = b - A x
  matvec(x, r.data());
  for (index_t i = 0; i < n; ++i) r[static_cast<usize>(i)] = b[i] - r[static_cast<usize>(i)];
  apply_prec(r.data(), z.data());
  hblas::copy(n, z.data(), p.data());
  real rz = hblas::dot(n, r.data(), z.data());

  for (index_t it = 0; it < config.max_iters; ++it) {
    result.relative_residual = hblas::nrm2(n, r.data()) / bnorm;
    if (result.relative_residual <= config.tol) {
      result.converged = true;
      result.iterations = it;
      return result;
    }
    matvec(p.data(), ap.data());
    const real pap = hblas::dot(n, p.data(), ap.data());
    FASTSC_CHECK(pap > 0, "operator is not positive definite (p'Ap <= 0)");
    const real alpha = rz / pap;
    hblas::axpy(n, alpha, p.data(), x);
    hblas::axpy(n, -alpha, ap.data(), r.data());
    apply_prec(r.data(), z.data());
    const real rz_new = hblas::dot(n, r.data(), z.data());
    const real beta = rz_new / rz;
    rz = rz_new;
    for (index_t i = 0; i < n; ++i) {
      p[static_cast<usize>(i)] = z[static_cast<usize>(i)] +
                                 beta * p[static_cast<usize>(i)];
    }
    result.iterations = it + 1;
  }
  result.relative_residual = hblas::nrm2(n, r.data()) / bnorm;
  result.converged = result.relative_residual <= config.tol;
  return result;
}

}  // namespace

CgResult conjugate_gradient(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, real* x, const CgConfig& config) {
  return pcg(matvec, n, b, x,
             [n](const real* r, real* z) { hblas::copy(n, r, z); }, config);
}

CgResult conjugate_gradient_jacobi(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, const real* inv_diag, real* x, const CgConfig& config) {
  return pcg(
      matvec, n, b, x,
      [n, inv_diag](const real* r, real* z) {
        for (index_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
      },
      config);
}

}  // namespace fastsc::solvers
