// Conjugate gradient solver for symmetric positive definite operators.
//
// Substrate for the shift-invert spectral transformation (solvers/
// shift_invert.h): ARPACK users pair the reverse-communication eigensolver
// with a linear solve per iteration when they need interior/smallest
// eigenvalues; CG is the matching iterative solver for our SPD shifted
// operators.  Operator-based (like the eigensolver), so any SpMV backend
// plugs in.
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"

namespace fastsc::solvers {

struct CgConfig {
  real tol = 1e-10;          ///< relative residual ||r|| / ||b||
  index_t max_iters = 1000;  ///< iteration cap
};

struct CgResult {
  index_t iterations = 0;
  real relative_residual = 0;
  bool converged = false;
};

/// Solve A x = b for SPD A given as matvec(x, y) computing y = A x.
/// `x` is the initial guess on entry and the solution on exit.
CgResult conjugate_gradient(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, real* x, const CgConfig& config = {});

/// Jacobi-preconditioned CG: `inv_diag` holds 1 / A_ii.
CgResult conjugate_gradient_jacobi(
    const std::function<void(const real*, real*)>& matvec, index_t n,
    const real* b, const real* inv_diag, real* x, const CgConfig& config = {});

struct CgBlockResult {
  index_t iterations = 0;  ///< max iterations over the right-hand sides
  index_t block_applies = 0;  ///< batched operator applications
  std::vector<CgResult> rhs;  ///< per-RHS outcome, same order as b
  bool all_converged = false;
};

/// Solve A X = B for nrhs right-hand sides simultaneously (B and X row-major
/// nrhs x n, rows are vectors).  Each RHS runs its own CG recurrence —
/// scalars, convergence, and iterates match conjugate_gradient exactly —
/// but the per-iteration products A p_i are batched through one
/// `block_matvec` call over the still-active systems, so a sparse operator
/// (sparse::device_csrmm) reads the matrix once per iteration instead of
/// once per RHS.  Converged systems drop out of the batch.
CgBlockResult conjugate_gradient_block(
    const std::function<void(const real* x, real* y, index_t nvec)>&
        block_matvec,
    index_t n, index_t nrhs, const real* b, real* x,
    const CgConfig& config = {});

}  // namespace fastsc::solvers
