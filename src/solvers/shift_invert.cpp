#include "solvers/shift_invert.h"

#include <algorithm>
#include <vector>

#include "common/error.h"
#include "obs/trace.h"
#include "solvers/subspace_iteration.h"

namespace fastsc::solvers {

lanczos::SymEigResult solve_smallest_shift_invert(
    const std::function<void(const real*, real*)>& matvec,
    const ShiftInvertConfig& config, ShiftInvertStats* stats) {
  const index_t n = config.lanczos.n;
  FASTSC_CHECK(n >= 1, "problem size must be positive");
  const real sigma = config.sigma;

  // Shifted operator B = A - sigma I (SPD by assumption).
  auto shifted = [&](const real* x, real* y) {
    matvec(x, y);
    for (index_t i = 0; i < n; ++i) y[i] -= sigma * x[i];
  };

  ShiftInvertStats local_stats;

  lanczos::LanczosConfig lcfg = config.lanczos;
  lcfg.which = lanczos::EigWhich::kLargestAlgebraic;  // largest of B^-1

  lanczos::SymEigResult result = lanczos::solve_symmetric(
      lcfg, [&](const real* x, real* y) {
        // y = (A - sigma I)^-1 x via CG from a zero initial guess
        // (consecutive Lanczos vectors are mutually orthogonal, so the
        // previous solution carries no useful warm-start information).
        std::fill(y, y + n, 0.0);
        const CgResult cg =
            config.inv_diag != nullptr
                ? conjugate_gradient_jacobi(shifted, n, x, config.inv_diag, y,
                                            config.cg)
                : conjugate_gradient(shifted, n, x, y, config.cg);
        local_stats.outer_matvecs += 1;
        local_stats.total_cg_iterations += cg.iterations;
        local_stats.all_solves_converged &= cg.converged;
        local_stats.cg_iteration_history.push_back(cg.iterations);
        if (obs::trace_enabled()) {
          obs::trace().counter("shift_invert.cg_iterations",
                               static_cast<double>(cg.iterations),
                               obs::wall_now_us());
        }
      });

  // Back-map eigenvalues: theta = 1/(lambda - sigma) => lambda = sigma + 1/theta.
  for (real& theta : result.eigenvalues) {
    FASTSC_ASSERT(theta != 0);
    theta = sigma + 1.0 / theta;
  }
  // Ascending order of the original problem (largest theta = smallest lambda
  // already first; just reverse-check ordering).
  std::vector<index_t> order(result.eigenvalues.size());
  for (usize i = 0; i < order.size(); ++i) order[i] = static_cast<index_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return result.eigenvalues[static_cast<usize>(a)] <
           result.eigenvalues[static_cast<usize>(b)];
  });
  lanczos::SymEigResult sorted = result;
  for (usize i = 0; i < order.size(); ++i) {
    const auto src = static_cast<usize>(order[i]);
    sorted.eigenvalues[i] = result.eigenvalues[src];
    sorted.residuals[i] = result.residuals[src];
    std::copy(result.eigenvectors.begin() + static_cast<index_t>(src) * n,
              result.eigenvectors.begin() + static_cast<index_t>(src + 1) * n,
              sorted.eigenvectors.begin() + static_cast<index_t>(i) * n);
  }
  if (stats != nullptr) *stats = local_stats;
  return sorted;
}

lanczos::SymEigResult solve_smallest_shift_invert_block(
    const std::function<void(const real* x, real* y, index_t nvec)>&
        block_matvec,
    const ShiftInvertConfig& config, ShiftInvertStats* stats) {
  const index_t n = config.lanczos.n;
  FASTSC_CHECK(n >= 1, "problem size must be positive");
  const real sigma = config.sigma;

  // Shifted block operator Y = (A - sigma I) X, batched.
  auto shifted_block = [&](const real* x, real* y, index_t nvec) {
    block_matvec(x, y, nvec);
    const usize total = static_cast<usize>(nvec) * static_cast<usize>(n);
    for (usize i = 0; i < total; ++i) y[i] -= sigma * x[i];
  };

  ShiftInvertStats local_stats;

  SubspaceConfig scfg;
  scfg.n = n;
  scfg.nev = config.lanczos.nev;
  scfg.tol = config.lanczos.tol;
  scfg.seed = config.lanczos.seed;
  scfg.max_iters = std::max<index_t>(config.lanczos.max_restarts, 1) * 10;
  // Inverse applied to the whole basis at once: one multi-RHS CG solve per
  // outer iteration, each of whose inner products is a single batched SpMM.
  scfg.block_matvec = [&](const real* x, real* y, index_t nvec) {
    const usize total = static_cast<usize>(nvec) * static_cast<usize>(n);
    std::fill(y, y + total, 0.0);
    const CgBlockResult cg = conjugate_gradient_block(
        shifted_block, n, nvec, x, y, config.cg);
    local_stats.outer_matvecs += nvec;
    local_stats.all_solves_converged &= cg.all_converged;
    for (const CgResult& out : cg.rhs) {
      local_stats.total_cg_iterations += out.iterations;
      local_stats.cg_iteration_history.push_back(out.iterations);
    }
    if (obs::trace_enabled()) {
      obs::trace().counter("shift_invert.cg_iterations",
                           static_cast<double>(cg.iterations),
                           obs::wall_now_us());
    }
  };
  scfg.block = 0;  // nev + guard vectors

  const SubspaceResult sub = subspace_iteration(
      [&](const real* x, real* y) { scfg.block_matvec(x, y, 1); }, scfg);

  // Back-map theta = 1/(lambda - sigma) => lambda = sigma + 1/theta and sort
  // ascending in the original spectrum.
  const auto nev = static_cast<usize>(config.lanczos.nev);
  std::vector<real> lambdas(nev);
  for (usize i = 0; i < nev; ++i) {
    const real theta = sub.eigenvalues[i];
    FASTSC_ASSERT(theta != 0);
    lambdas[i] = sigma + 1.0 / theta;
  }
  std::vector<index_t> order(nev);
  for (usize i = 0; i < nev; ++i) order[i] = static_cast<index_t>(i);
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return lambdas[static_cast<usize>(a)] < lambdas[static_cast<usize>(b)];
  });

  lanczos::SymEigResult result;
  result.eigenvalues.resize(nev);
  result.residuals.resize(nev);
  result.eigenvectors.resize(nev * static_cast<usize>(n));
  for (usize i = 0; i < nev; ++i) {
    const auto src = static_cast<usize>(order[i]);
    result.eigenvalues[i] = lambdas[src];
    result.residuals[i] = sub.residuals[src];
    std::copy(sub.eigenvectors.begin() + static_cast<index_t>(src) * n,
              sub.eigenvectors.begin() + static_cast<index_t>(src + 1) * n,
              result.eigenvectors.begin() + static_cast<index_t>(i) * n);
  }
  result.converged = sub.converged;
  result.stats.matvec_count = sub.matvec_count;
  result.stats.restart_count = sub.iterations;
  result.stats.converged_count = sub.converged ? config.lanczos.nev : 0;
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace fastsc::solvers
