// Shift-invert spectral transformation for smallest eigenvalues.
//
// The paper computes the LARGEST eigenpairs of D^-1 W because unshifted
// Lanczos converges poorly to the smallest end (§IV.B).  The classic ARPACK
// alternative is shift-invert: run the iteration on (A - sigma I)^-1, whose
// largest eigenvalues correspond to A's eigenvalues nearest sigma, solving
// one SPD linear system (CG) per reverse-communication step.  This module
// implements that mode as the natural "extension" the paper leaves on the
// table; bench_ablation_spectrum_side contrasts all three strategies.
#pragma once

#include <functional>
#include <vector>

#include "lanczos/rci.h"
#include "solvers/cg.h"

namespace fastsc::solvers {

struct ShiftInvertConfig {
  /// Shift; A - sigma*I must be SPD (pick sigma below the smallest
  /// eigenvalue, e.g. a small negative value for a PSD Laplacian).
  real sigma = -1e-3;
  lanczos::LanczosConfig lanczos;  ///< n/nev/ncv/tol/seed (which is ignored)
  CgConfig cg;
  /// Optional 1/diag(A - sigma I) for Jacobi preconditioning (size n).
  const real* inv_diag = nullptr;
};

struct ShiftInvertStats {
  index_t outer_matvecs = 0;  ///< Lanczos operator applications
  index_t total_cg_iterations = 0;
  bool all_solves_converged = true;
  /// CG iteration count of each inner solve, in outer-iteration order (also
  /// emitted as the "shift_invert.cg_iterations" trace counter).
  std::vector<index_t> cg_iteration_history;
};

/// Compute the nev eigenvalues of A nearest (above) sigma — for PSD A with
/// sigma < lambda_min these are the smallest — and their eigenvectors.
/// `matvec` applies A.  Eigenvalues are returned in ascending order.
lanczos::SymEigResult solve_smallest_shift_invert(
    const std::function<void(const real*, real*)>& matvec,
    const ShiftInvertConfig& config, ShiftInvertStats* stats = nullptr);

/// Multi-RHS variant: subspace iteration on (A - sigma I)^-1 where each
/// outer restart applies the inverse to the whole basis through one
/// block-CG solve (solvers::conjugate_gradient_block), whose per-iteration
/// products batch through `block_matvec` — Y = A X for nvec packed row
/// vectors, typically sparse::device_csrmm — so the matrix is read once
/// per CG iteration instead of once per basis vector.  Same eigenpairs as
/// solve_smallest_shift_invert to solver tolerances, ascending order.
lanczos::SymEigResult solve_smallest_shift_invert_block(
    const std::function<void(const real* x, real* y, index_t nvec)>&
        block_matvec,
    const ShiftInvertConfig& config, ShiftInvertStats* stats = nullptr);

}  // namespace fastsc::solvers
