#include "solvers/subspace_iteration.h"

#include <algorithm>
#include <cmath>

#include "blas/hblas.h"
#include "common/error.h"
#include "common/rng.h"
#include "lanczos/dense_eig.h"

namespace fastsc::solvers {

namespace {

/// Modified Gram-Schmidt on the rows of X (p x n), two passes.
void orthonormalize_rows(real* x, index_t p, index_t n, Rng& rng) {
  for (index_t i = 0; i < p; ++i) {
    real* row = x + i * n;
    for (int pass = 0; pass < 2; ++pass) {
      for (index_t j = 0; j < i; ++j) {
        const real c = hblas::dot(n, x + j * n, row);
        if (c != 0) hblas::axpy(n, -c, x + j * n, row);
      }
    }
    real norm = hblas::nrm2(n, row);
    if (norm < 1e-14) {
      // Deficient direction: replace with a random one and retry once.
      for (index_t l = 0; l < n; ++l) row[l] = rng.uniform() - 0.5;
      for (index_t j = 0; j < i; ++j) {
        const real c = hblas::dot(n, x + j * n, row);
        hblas::axpy(n, -c, x + j * n, row);
      }
      norm = hblas::nrm2(n, row);
      FASTSC_ASSERT(norm > 0);
    }
    hblas::scal(n, 1.0 / norm, row);
  }
}

}  // namespace

SubspaceResult subspace_iteration(
    const std::function<void(const real*, real*)>& matvec,
    const SubspaceConfig& config) {
  const index_t n = config.n;
  const index_t nev = config.nev;
  FASTSC_CHECK(n >= 1 && nev >= 1 && nev <= n, "bad subspace dimensions");
  index_t p = config.block;
  if (p == 0) p = nev + std::min<index_t>(nev, 10);
  p = std::min(p, n);

  Rng rng(config.seed);
  std::vector<real> x(static_cast<usize>(p) * static_cast<usize>(n));
  for (real& v : x) v = rng.uniform() - 0.5;
  orthonormalize_rows(x.data(), p, n, rng);

  std::vector<real> ax(x.size());
  std::vector<real> b(static_cast<usize>(p) * static_cast<usize>(p));
  std::vector<real> rotated(x.size());

  SubspaceResult result;
  real norm_est = 1.0;

  for (index_t iter = 0; iter < config.max_iters; ++iter) {
    result.iterations = iter + 1;
    // AX: one batched application when the caller provides a block
    // operator (SpMM amortizes the matrix read), else one matvec per row.
    if (config.block_matvec) {
      config.block_matvec(x.data(), ax.data(), p);
    } else {
      for (index_t i = 0; i < p; ++i) {
        matvec(x.data() + i * n, ax.data() + i * n);
      }
    }
    result.matvec_count += p;

    const bool do_ritz =
        (iter % config.ritz_every) == config.ritz_every - 1 ||
        iter == config.max_iters - 1;
    if (!do_ritz) {
      std::swap(x, ax);
      orthonormalize_rows(x.data(), p, n, rng);
      continue;
    }

    // Rayleigh-Ritz: B = X A X^T (p x p symmetric; rows of X orthonormal).
    hblas::gemm_nt(p, p, n, 1.0, x.data(), n, ax.data(), n, 0.0, b.data(), p);
    // Symmetrize against roundoff.
    for (index_t i = 0; i < p; ++i) {
      for (index_t j = i + 1; j < p; ++j) {
        const real avg = 0.5 * (b[static_cast<usize>(i * p + j)] +
                                b[static_cast<usize>(j * p + i)]);
        b[static_cast<usize>(i * p + j)] = avg;
        b[static_cast<usize>(j * p + i)] = avg;
      }
    }
    const lanczos::DenseEigResult eig = lanczos::dense_sym_eig(b.data(), p);
    for (real lam : eig.eigenvalues) {
      norm_est = std::max(norm_est, std::fabs(lam));
    }
    // Order by |lambda| descending (dominant pairs).
    std::vector<index_t> order(static_cast<usize>(p));
    for (index_t i = 0; i < p; ++i) order[static_cast<usize>(i)] = i;
    std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b2) {
      return std::fabs(eig.eigenvalues[static_cast<usize>(a)]) >
             std::fabs(eig.eigenvalues[static_cast<usize>(b2)]);
    });
    // Rotate the basis: rows of X_new = Y_sel^T X.
    std::vector<real> g(static_cast<usize>(p) * static_cast<usize>(p));
    for (index_t i = 0; i < p; ++i) {
      const index_t col = order[static_cast<usize>(i)];
      for (index_t q = 0; q < p; ++q) {
        g[static_cast<usize>(i * p + q)] =
            eig.eigenvectors[static_cast<usize>(q * p + col)];
      }
    }
    hblas::gemm(p, n, p, 1.0, g.data(), p, x.data(), n, 0.0, rotated.data(),
                n);
    std::swap(x, rotated);

    // Residual check for the nev wanted pairs: ||A v - lambda v||, the
    // products batched through the block operator when available.
    result.eigenvalues.assign(static_cast<usize>(nev), 0.0);
    result.residuals.assign(static_cast<usize>(nev), 0.0);
    bool all_ok = true;
    std::vector<real> av(static_cast<usize>(nev) * static_cast<usize>(n));
    if (config.block_matvec) {
      config.block_matvec(x.data(), av.data(), nev);
    } else {
      for (index_t i = 0; i < nev; ++i) {
        matvec(x.data() + i * n, av.data() + i * n);
      }
    }
    result.matvec_count += nev;
    for (index_t i = 0; i < nev; ++i) {
      const real lam = eig.eigenvalues[static_cast<usize>(
          order[static_cast<usize>(i)])];
      result.eigenvalues[static_cast<usize>(i)] = lam;
      real* avi = av.data() + i * n;
      hblas::axpy(n, -lam, x.data() + i * n, avi);
      const real res = hblas::nrm2(n, avi);
      result.residuals[static_cast<usize>(i)] = res;
      if (res > config.tol * norm_est) all_ok = false;
    }
    if (all_ok) {
      result.converged = true;
      break;
    }
  }

  result.eigenvectors.assign(x.begin(), x.begin() + nev * n);
  return result;
}

}  // namespace fastsc::solvers
