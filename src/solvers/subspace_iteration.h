// Block power (subspace) iteration with Rayleigh-Ritz acceleration.
//
// The classic pre-Lanczos method for a few extreme eigenpairs, implemented
// as an algorithmic baseline for the eigensolver ablation: the paper claims
// IRAM/ARPACK is "the most efficient and convenient way" (§IV.B), and
// bench_ablation_eigensolvers quantifies that against this simpler method
// (typically many more operator applications for clustered spectra).
#pragma once

#include <functional>
#include <vector>

#include "common/types.h"

namespace fastsc::solvers {

struct SubspaceConfig {
  index_t n = 0;
  index_t nev = 1;
  /// Block size; 0 selects nev + min(nev, 10) guard vectors.
  index_t block = 0;
  real tol = 1e-8;            ///< residual tolerance relative to ||A|| est.
  index_t max_iters = 1000;   ///< outer iterations
  index_t ritz_every = 5;     ///< Rayleigh-Ritz projection cadence
  std::uint64_t seed = 42;
  /// Optional batched operator: Y = A X for nvec packed vectors (X and Y
  /// row-major nvec x n, rows are vectors).  When set, the per-iteration
  /// A X panel and the residual batch go through one call instead of one
  /// matvec per basis vector — with sparse::device_csrmm the matrix is
  /// read once per panel.  Must agree with `matvec` row-for-row.
  std::function<void(const real* x, real* y, index_t nvec)> block_matvec;
};

struct SubspaceResult {
  std::vector<real> eigenvalues;   ///< nev values, largest-magnitude first
  std::vector<real> eigenvectors;  ///< row-major nev x n
  std::vector<real> residuals;
  index_t iterations = 0;
  index_t matvec_count = 0;  ///< operator applications (counting block cols)
  bool converged = false;
};

/// Compute the nev dominant (largest-magnitude) eigenpairs of the symmetric
/// operator `matvec`.
SubspaceResult subspace_iteration(
    const std::function<void(const real*, real*)>& matvec,
    const SubspaceConfig& config);

}  // namespace fastsc::solvers
