#include "sparse/balance.h"

#include <algorithm>

#include "common/error.h"

namespace fastsc::sparse {

namespace {

/// Diagonal binary search: find the merge-path coordinate (r, e) with
/// r + e == d where the merge of the row-end offsets row_ptr[row_begin+1..]
/// and the entry indices crosses diagonal d.  Both coordinates are relative
/// to the range (r counts rows past row_begin, e entries past
/// row_ptr[row_begin]).  The result satisfies the CSR invariant
/// row_ptr[row_begin + r] - ent0 <= e <= row_ptr[row_begin + r + 1] - ent0.
struct Coord {
  index_t row;
  index_t ent;
};

Coord merge_path_search(const index_t* row_ptr, index_t row_begin,
                        index_t rows, index_t nnz, index_t d) {
  const index_t ent0 = row_ptr[row_begin];
  index_t lo = d > nnz ? d - nnz : 0;
  index_t hi = d < rows ? d : rows;
  while (lo < hi) {
    const index_t mid = lo + (hi - lo) / 2;
    // Consume row-end offset `mid` before entry `d - 1 - mid` iff the row
    // ends at or before that entry.
    if (row_ptr[row_begin + mid + 1] - ent0 <= d - 1 - mid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return Coord{lo, d - lo};
}

}  // namespace

MergePathPartition merge_path_partition(const index_t* row_ptr,
                                        index_t row_begin, index_t row_end,
                                        index_t spans) {
  FASTSC_CHECK(row_begin >= 0 && row_begin <= row_end,
               "bad merge-path row range");
  MergePathPartition part;
  part.row_begin = row_begin;
  part.row_end = row_end;
  part.spans = spans < 1 ? 1 : spans;

  const index_t rows = row_end - row_begin;
  const index_t ent0 = row_ptr[row_begin];
  const index_t nnz = row_ptr[row_end] - ent0;
  const index_t total = rows + nnz;

  part.span_row.resize(static_cast<usize>(part.spans) + 1);
  part.span_ent.resize(static_cast<usize>(part.spans) + 1);
  for (index_t s = 0; s <= part.spans; ++s) {
    const index_t d = (total * s) / part.spans;
    const Coord c = merge_path_search(row_ptr, row_begin, rows, nnz, d);
    part.span_row[static_cast<usize>(s)] = row_begin + c.row;
    part.span_ent[static_cast<usize>(s)] = ent0 + c.ent;
  }

  index_t max_nnz = 0;
  for (index_t s = 0; s < part.spans; ++s) {
    max_nnz = std::max(max_nnz, part.span_ent[static_cast<usize>(s) + 1] -
                                    part.span_ent[static_cast<usize>(s)]);
  }
  part.max_span_nnz = max_nnz;
  part.mean_span_nnz =
      static_cast<real>(nnz) / static_cast<real>(part.spans);
  return part;
}

index_t rowchunk_max_span_nnz(const index_t* row_ptr, index_t row_begin,
                              index_t row_end, index_t workers) {
  const index_t rows = row_end - row_begin;
  if (rows <= 0) return 0;
  const index_t w = workers < 1 ? 1 : workers;
  const index_t chunk = (rows + w - 1) / w;
  index_t max_nnz = 0;
  for (index_t lo = row_begin; lo < row_end; lo += chunk) {
    const index_t hi = std::min(lo + chunk, row_end);
    max_nnz = std::max(max_nnz, row_ptr[hi] - row_ptr[lo]);
  }
  return max_nnz;
}

}  // namespace fastsc::sparse
