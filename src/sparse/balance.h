// nnz-balanced work partitioning for CSR SpMV (merge-path decomposition).
//
// device::launch splits a row-parallel kernel into one contiguous chunk of
// rows per worker — owner-computes by *row count*.  On power-law graphs a
// few hub-heavy chunks serialize the whole wave.  The fix (Merrill &
// Garland, "Merge-based parallel sparse matrix-vector multiplication") is
// to walk the merge of two sorted lists — the row-end offsets
// row_ptr[1..rows] and the entry indices 0..nnz-1 — and split that merged
// path into equal pieces with a diagonal binary search.  Every span then
// carries (rows consumed + entries consumed) ~= (rows + nnz) / spans of
// work regardless of how skewed the degree distribution is: a hub row is
// simply cut across several spans.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::sparse {

/// Equal-work partition of the merge path of a CSR row range.  Span s
/// covers merge-path diagonals [s*M/spans, (s+1)*M/spans) where
/// M = (row_end - row_begin) + nnz(range); its 2-D coordinates are
/// (span_row[s], span_ent[s]) .. (span_row[s+1], span_ent[s+1]): it
/// processes entries [span_ent[s], span_ent[s+1]) and finishes rows
/// [span_row[s], span_row[s+1]).  Rows cut by a span boundary are shared;
/// their partial sums are combined by a deterministic fixup pass.
struct MergePathPartition {
  index_t row_begin = 0;
  index_t row_end = 0;
  index_t spans = 0;
  std::vector<index_t> span_row;  ///< size spans + 1, ascending
  std::vector<index_t> span_ent;  ///< size spans + 1, ascending (absolute)

  /// Worst / mean entries handled by one span — the balance telemetry
  /// published as spmv.wave_max_nnz / spmv.wave_mean_nnz.
  index_t max_span_nnz = 0;
  real mean_span_nnz = 0;

  [[nodiscard]] index_t nnz() const noexcept {
    return span_ent.empty() ? 0 : span_ent.back() - span_ent.front();
  }
};

/// Build the merge-path partition of rows [row_begin, row_end) of a CSR
/// with the given row_ptr (length >= row_end + 1).  `spans` is clamped to
/// at least 1.  Pure host computation, O(spans * log(rows + nnz)).
[[nodiscard]] MergePathPartition merge_path_partition(const index_t* row_ptr,
                                                      index_t row_begin,
                                                      index_t row_end,
                                                      index_t spans);

/// Worst-case entries handled by one worker under the owner-computes
/// row-count split device::launch uses today (chunk = ceil(rows/workers))
/// — the row-chunked baseline the balance metrics are compared against.
[[nodiscard]] index_t rowchunk_max_span_nnz(const index_t* row_ptr,
                                            index_t row_begin, index_t row_end,
                                            index_t workers);

}  // namespace fastsc::sparse
