#include "sparse/bsr.h"

#include "common/error.h"

namespace fastsc::sparse {

void Bsr::validate() const {
  FASTSC_CHECK(block_size >= 1, "BSR block size must be positive");
  FASTSC_CHECK(block_rows == (rows + block_size - 1) / block_size,
               "BSR block_rows inconsistent with rows/block_size");
  FASTSC_CHECK(block_cols == (cols + block_size - 1) / block_size,
               "BSR block_cols inconsistent with cols/block_size");
  FASTSC_CHECK(block_row_ptr.size() == static_cast<usize>(block_rows) + 1,
               "BSR block_row_ptr must have block_rows+1 entries");
  FASTSC_CHECK(block_row_ptr.front() == 0, "BSR block_row_ptr must start at 0");
  FASTSC_CHECK(block_row_ptr.back() == block_count(),
               "BSR block_row_ptr must end at block count");
  FASTSC_CHECK(values.size() == static_cast<usize>(block_count()) *
                                    static_cast<usize>(block_size) *
                                    static_cast<usize>(block_size),
               "BSR values must hold b*b entries per block");
  for (usize r = 0; r < static_cast<usize>(block_rows); ++r) {
    FASTSC_CHECK(block_row_ptr[r] <= block_row_ptr[r + 1],
                 "BSR block_row_ptr must be nondecreasing");
  }
  for (index_t c : block_col_idx) {
    FASTSC_CHECK(c >= 0 && c < block_cols, "BSR block col index out of range");
  }
}

}  // namespace fastsc::sparse
