// Block Compressed Sparse Row matrix (BSR).
//
// Supported per the paper ("... Block Compressed Sparse Row Format (BSR) are
// also supported").  Dense b x b blocks stored row-major; rows/cols are
// padded up to a multiple of the block size at conversion time (zero fill),
// matching cuSPARSE's bsr behaviour.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::sparse {

struct Bsr {
  index_t rows = 0;        // logical (unpadded) rows
  index_t cols = 0;        // logical (unpadded) cols
  index_t block_size = 1;  // b
  index_t block_rows = 0;  // ceil(rows / b)
  index_t block_cols = 0;  // ceil(cols / b)
  std::vector<index_t> block_row_ptr;  // length block_rows + 1
  std::vector<index_t> block_col_idx;  // length nblocks
  std::vector<real> values;            // nblocks * b * b, block-major

  [[nodiscard]] index_t block_count() const noexcept {
    return static_cast<index_t>(block_col_idx.size());
  }

  void validate() const;
};

}  // namespace fastsc::sparse
