#include "sparse/convert.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace fastsc::sparse {

void sort_and_merge(Coo& coo) {
  const usize nnz = coo.values.size();
  std::vector<index_t> order(nnz);
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    const auto ia = static_cast<usize>(a);
    const auto ib = static_cast<usize>(b);
    if (coo.row_idx[ia] != coo.row_idx[ib]) {
      return coo.row_idx[ia] < coo.row_idx[ib];
    }
    return coo.col_idx[ia] < coo.col_idx[ib];
  });
  std::vector<index_t> rows_out, cols_out;
  std::vector<real> vals_out;
  rows_out.reserve(nnz);
  cols_out.reserve(nnz);
  vals_out.reserve(nnz);
  for (usize i = 0; i < nnz; ++i) {
    const auto p = static_cast<usize>(order[i]);
    const index_t r = coo.row_idx[p];
    const index_t c = coo.col_idx[p];
    const real v = coo.values[p];
    if (!vals_out.empty() && rows_out.back() == r && cols_out.back() == c) {
      vals_out.back() += v;
    } else {
      rows_out.push_back(r);
      cols_out.push_back(c);
      vals_out.push_back(v);
    }
  }
  coo.row_idx = std::move(rows_out);
  coo.col_idx = std::move(cols_out);
  coo.values = std::move(vals_out);
}

Csr coo_to_csr(const Coo& coo) {
  coo.validate();
  Csr csr(coo.rows, coo.cols);
  const usize nnz = coo.values.size();
  csr.col_idx.resize(nnz);
  csr.values.resize(nnz);
  // Counting sort on rows.
  for (usize i = 0; i < nnz; ++i) {
    csr.row_ptr[static_cast<usize>(coo.row_idx[i]) + 1] += 1;
  }
  for (usize r = 0; r < static_cast<usize>(coo.rows); ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }
  std::vector<index_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (usize i = 0; i < nnz; ++i) {
    const auto r = static_cast<usize>(coo.row_idx[i]);
    const auto dst = static_cast<usize>(cursor[r]++);
    csr.col_idx[dst] = coo.col_idx[i];
    csr.values[dst] = coo.values[i];
  }
  return csr;
}

Coo csr_to_coo(const Csr& csr) {
  csr.validate();
  Coo coo(csr.rows, csr.cols);
  coo.reserve(csr.nnz());
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t p = csr.row_ptr[static_cast<usize>(r)];
         p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      coo.push(r, csr.col_idx[static_cast<usize>(p)],
               csr.values[static_cast<usize>(p)]);
    }
  }
  return coo;
}

Csc csr_to_csc(const Csr& csr) {
  csr.validate();
  Csc csc(csr.rows, csr.cols);
  const usize nnz = csr.values.size();
  csc.row_idx.resize(nnz);
  csc.values.resize(nnz);
  for (index_t c : csr.col_idx) {
    csc.col_ptr[static_cast<usize>(c) + 1] += 1;
  }
  for (usize c = 0; c < static_cast<usize>(csr.cols); ++c) {
    csc.col_ptr[c + 1] += csc.col_ptr[c];
  }
  std::vector<index_t> cursor(csc.col_ptr.begin(), csc.col_ptr.end() - 1);
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t p = csr.row_ptr[static_cast<usize>(r)];
         p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      const auto c = static_cast<usize>(csr.col_idx[static_cast<usize>(p)]);
      const auto dst = static_cast<usize>(cursor[c]++);
      csc.row_idx[dst] = r;
      csc.values[dst] = csr.values[static_cast<usize>(p)];
    }
  }
  return csc;
}

Csr csc_to_csr(const Csc& csc) {
  csc.validate();
  Csr csr(csc.rows, csc.cols);
  const usize nnz = csc.values.size();
  csr.col_idx.resize(nnz);
  csr.values.resize(nnz);
  for (index_t r : csc.row_idx) {
    csr.row_ptr[static_cast<usize>(r) + 1] += 1;
  }
  for (usize r = 0; r < static_cast<usize>(csc.rows); ++r) {
    csr.row_ptr[r + 1] += csr.row_ptr[r];
  }
  std::vector<index_t> cursor(csr.row_ptr.begin(), csr.row_ptr.end() - 1);
  for (index_t c = 0; c < csc.cols; ++c) {
    for (index_t p = csc.col_ptr[static_cast<usize>(c)];
         p < csc.col_ptr[static_cast<usize>(c) + 1]; ++p) {
      const auto r = static_cast<usize>(csc.row_idx[static_cast<usize>(p)]);
      const auto dst = static_cast<usize>(cursor[r]++);
      csr.col_idx[dst] = c;
      csr.values[dst] = csc.values[static_cast<usize>(p)];
    }
  }
  return csr;
}

Bsr csr_to_bsr(const Csr& csr, index_t block_size) {
  FASTSC_CHECK(block_size >= 1, "block size must be positive");
  csr.validate();
  Bsr bsr;
  bsr.rows = csr.rows;
  bsr.cols = csr.cols;
  bsr.block_size = block_size;
  bsr.block_rows = (csr.rows + block_size - 1) / block_size;
  bsr.block_cols = (csr.cols + block_size - 1) / block_size;
  bsr.block_row_ptr.assign(static_cast<usize>(bsr.block_rows) + 1, 0);

  // Pass 1: count distinct block columns per block row.
  std::vector<index_t> last_seen(static_cast<usize>(bsr.block_cols), -1);
  for (index_t br = 0; br < bsr.block_rows; ++br) {
    index_t count = 0;
    const index_t r_lo = br * block_size;
    const index_t r_hi = std::min(r_lo + block_size, csr.rows);
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t p = csr.row_ptr[static_cast<usize>(r)];
           p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
        const index_t bc = csr.col_idx[static_cast<usize>(p)] / block_size;
        if (last_seen[static_cast<usize>(bc)] != br) {
          last_seen[static_cast<usize>(bc)] = br;
          ++count;
        }
      }
    }
    bsr.block_row_ptr[static_cast<usize>(br) + 1] =
        bsr.block_row_ptr[static_cast<usize>(br)] + count;
  }
  const index_t nblocks = bsr.block_row_ptr.back();
  bsr.block_col_idx.assign(static_cast<usize>(nblocks), 0);
  bsr.values.assign(static_cast<usize>(nblocks) *
                        static_cast<usize>(block_size) *
                        static_cast<usize>(block_size),
                    0.0);

  // Pass 2: assign block slots (sorted by block column) and scatter values.
  std::vector<index_t> slot_of_block(static_cast<usize>(bsr.block_cols), -1);
  std::fill(last_seen.begin(), last_seen.end(), -1);
  for (index_t br = 0; br < bsr.block_rows; ++br) {
    const index_t base = bsr.block_row_ptr[static_cast<usize>(br)];
    index_t next = base;
    const index_t r_lo = br * block_size;
    const index_t r_hi = std::min(r_lo + block_size, csr.rows);
    // Collect distinct block columns in this block row.
    std::vector<index_t> bcols;
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t p = csr.row_ptr[static_cast<usize>(r)];
           p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
        const index_t bc = csr.col_idx[static_cast<usize>(p)] / block_size;
        if (last_seen[static_cast<usize>(bc)] != br) {
          last_seen[static_cast<usize>(bc)] = br;
          bcols.push_back(bc);
        }
      }
    }
    std::sort(bcols.begin(), bcols.end());
    for (index_t bc : bcols) {
      bsr.block_col_idx[static_cast<usize>(next)] = bc;
      slot_of_block[static_cast<usize>(bc)] = next;
      ++next;
    }
    FASTSC_ASSERT(next == bsr.block_row_ptr[static_cast<usize>(br) + 1]);
    for (index_t r = r_lo; r < r_hi; ++r) {
      for (index_t p = csr.row_ptr[static_cast<usize>(r)];
           p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
        const index_t c = csr.col_idx[static_cast<usize>(p)];
        const index_t bc = c / block_size;
        const index_t slot = slot_of_block[static_cast<usize>(bc)];
        const index_t local =
            (r - r_lo) * block_size + (c - bc * block_size);
        bsr.values[static_cast<usize>(slot) * static_cast<usize>(block_size) *
                       static_cast<usize>(block_size) +
                   static_cast<usize>(local)] +=
            csr.values[static_cast<usize>(p)];
      }
    }
  }
  return bsr;
}

Csr bsr_to_csr(const Bsr& bsr) {
  bsr.validate();
  Coo coo(bsr.rows, bsr.cols);
  const index_t b = bsr.block_size;
  for (index_t br = 0; br < bsr.block_rows; ++br) {
    for (index_t s = bsr.block_row_ptr[static_cast<usize>(br)];
         s < bsr.block_row_ptr[static_cast<usize>(br) + 1]; ++s) {
      const index_t bc = bsr.block_col_idx[static_cast<usize>(s)];
      const real* block =
          bsr.values.data() + static_cast<usize>(s) * static_cast<usize>(b) *
                                  static_cast<usize>(b);
      for (index_t i = 0; i < b; ++i) {
        const index_t r = br * b + i;
        if (r >= bsr.rows) break;
        for (index_t j = 0; j < b; ++j) {
          const index_t c = bc * b + j;
          if (c >= bsr.cols) break;
          const real v = block[i * b + j];
          if (v != 0) coo.push(r, c, v);
        }
      }
    }
  }
  return coo_to_csr(coo);
}

Csr dense_to_csr(index_t rows, index_t cols, const real* dense, real drop_tol) {
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      const real v = dense[r * cols + c];
      if (std::fabs(v) > drop_tol) coo.push(r, c, v);
    }
  }
  return coo_to_csr(coo);
}

void csr_to_dense(const Csr& csr, real* dense) {
  std::fill(dense,
            dense + static_cast<usize>(csr.rows) * static_cast<usize>(csr.cols),
            0.0);
  for (index_t r = 0; r < csr.rows; ++r) {
    for (index_t p = csr.row_ptr[static_cast<usize>(r)];
         p < csr.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      dense[r * csr.cols + csr.col_idx[static_cast<usize>(p)]] +=
          csr.values[static_cast<usize>(p)];
    }
  }
}

}  // namespace fastsc::sparse
