// Conversions between sparse formats.
//
// coo_to_csr is the cusparseXcoo2csr step of the paper's Algorithm 2; the
// other conversions back the "other formats are also supported" claim and
// give the SpMV format-comparison bench its inputs.
#pragma once

#include "sparse/bsr.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/csr.h"

namespace fastsc::sparse {

/// Sort COO entries by (row, col) and sum duplicates in place.
void sort_and_merge(Coo& coo);

/// COO -> CSR via counting sort on rows; within-row order follows the COO
/// order (stable).  Duplicates are kept; call sort_and_merge first if the
/// input may contain them.
[[nodiscard]] Csr coo_to_csr(const Coo& coo);

/// CSR -> COO (rows expanded from the prefix sums).
[[nodiscard]] Coo csr_to_coo(const Csr& csr);

/// CSR -> CSC (equivalently: CSR of the transpose).
[[nodiscard]] Csc csr_to_csc(const Csr& csr);

/// CSC -> CSR.
[[nodiscard]] Csr csc_to_csr(const Csc& csc);

/// CSR -> BSR with the given block size (zero-padded partial blocks).
[[nodiscard]] Bsr csr_to_bsr(const Csr& csr, index_t block_size);

/// BSR -> CSR (drops stored zeros introduced by padding).
[[nodiscard]] Csr bsr_to_csr(const Bsr& bsr);

/// Dense row-major -> CSR, keeping entries with |v| > drop_tol.
[[nodiscard]] Csr dense_to_csr(index_t rows, index_t cols, const real* dense,
                               real drop_tol = 0.0);

/// CSR -> dense row-major (caller-sized output of rows*cols).
void csr_to_dense(const Csr& csr, real* dense);

}  // namespace fastsc::sparse
