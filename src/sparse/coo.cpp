#include "sparse/coo.h"

#include "common/error.h"

namespace fastsc::sparse {

void Coo::validate() const {
  FASTSC_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  FASTSC_CHECK(row_idx.size() == values.size() &&
                   col_idx.size() == values.size(),
               "COO arrays must have equal length");
  for (usize i = 0; i < values.size(); ++i) {
    FASTSC_CHECK(row_idx[i] >= 0 && row_idx[i] < rows,
                 "COO row index out of range");
    FASTSC_CHECK(col_idx[i] >= 0 && col_idx[i] < cols,
                 "COO col index out of range");
  }
}

bool Coo::is_sorted_unique() const noexcept {
  for (usize i = 1; i < values.size(); ++i) {
    if (row_idx[i] < row_idx[i - 1]) return false;
    if (row_idx[i] == row_idx[i - 1] && col_idx[i] <= col_idx[i - 1]) {
      return false;
    }
  }
  return true;
}

}  // namespace fastsc::sparse
