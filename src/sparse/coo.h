// Coordinate-format sparse matrix (COO).
//
// The paper's graph-construction step (Algorithm 1) produces the similarity
// matrix in COO: the given edge list supplies (row, col) pairs and a device
// kernel fills the value array.  COO is also the interchange format between
// the dataset generators and the pipeline.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::sparse {

struct Coo {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_idx;
  std::vector<index_t> col_idx;
  std::vector<real> values;

  Coo() = default;
  Coo(index_t rows_, index_t cols_) : rows(rows_), cols(cols_) {}

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  void reserve(index_t nnz_hint) {
    row_idx.reserve(static_cast<usize>(nnz_hint));
    col_idx.reserve(static_cast<usize>(nnz_hint));
    values.reserve(static_cast<usize>(nnz_hint));
  }

  void push(index_t r, index_t c, real v) {
    row_idx.push_back(r);
    col_idx.push_back(c);
    values.push_back(v);
  }

  /// Throws std::invalid_argument if the arrays are inconsistent or any
  /// index is out of bounds.
  void validate() const;

  /// True if entries are sorted by (row, col) with no duplicates.
  [[nodiscard]] bool is_sorted_unique() const noexcept;
};

}  // namespace fastsc::sparse
