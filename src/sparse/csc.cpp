#include "sparse/csc.h"

#include "common/error.h"

namespace fastsc::sparse {

void Csc::validate() const {
  FASTSC_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  FASTSC_CHECK(col_ptr.size() == static_cast<usize>(cols) + 1,
               "CSC col_ptr must have cols+1 entries");
  FASTSC_CHECK(row_idx.size() == values.size(),
               "CSC row_idx and values must have equal length");
  FASTSC_CHECK(col_ptr.front() == 0, "CSC col_ptr must start at 0");
  FASTSC_CHECK(col_ptr.back() == nnz(), "CSC col_ptr must end at nnz");
  for (usize c = 0; c < static_cast<usize>(cols); ++c) {
    FASTSC_CHECK(col_ptr[c] <= col_ptr[c + 1],
                 "CSC col_ptr must be nondecreasing");
  }
  for (index_t r : row_idx) {
    FASTSC_CHECK(r >= 0 && r < rows, "CSC row index out of range");
  }
}

}  // namespace fastsc::sparse
