// Compressed Sparse Column matrix (CSC).
//
// Supported per the paper ("Other sparse formats such as CSC ... are also
// supported in our implementation").  Useful as the transpose view of a CSR
// matrix; for symmetric similarity matrices CSC SpMV equals CSR SpMV, which
// the tests exploit as a consistency check.
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::sparse {

struct Csc {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_ptr;  // length cols + 1
  std::vector<index_t> row_idx;  // length nnz
  std::vector<real> values;      // length nnz

  Csc() = default;
  Csc(index_t rows_, index_t cols_)
      : rows(rows_), cols(cols_), col_ptr(static_cast<usize>(cols_) + 1, 0) {}

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  void validate() const;
};

}  // namespace fastsc::sparse
