#include "sparse/csr.h"

#include "common/error.h"

namespace fastsc::sparse {

void Csr::validate() const {
  FASTSC_CHECK(rows >= 0 && cols >= 0, "matrix dimensions must be nonnegative");
  FASTSC_CHECK(row_ptr.size() == static_cast<usize>(rows) + 1,
               "CSR row_ptr must have rows+1 entries");
  FASTSC_CHECK(col_idx.size() == values.size(),
               "CSR col_idx and values must have equal length");
  FASTSC_CHECK(row_ptr.front() == 0, "CSR row_ptr must start at 0");
  FASTSC_CHECK(row_ptr.back() == nnz(), "CSR row_ptr must end at nnz");
  for (usize r = 0; r < static_cast<usize>(rows); ++r) {
    FASTSC_CHECK(row_ptr[r] <= row_ptr[r + 1],
                 "CSR row_ptr must be nondecreasing");
  }
  for (index_t c : col_idx) {
    FASTSC_CHECK(c >= 0 && c < cols, "CSR col index out of range");
  }
}

bool Csr::has_sorted_rows() const noexcept {
  for (index_t r = 0; r < rows; ++r) {
    for (index_t p = row_ptr[static_cast<usize>(r)] + 1;
         p < row_ptr[static_cast<usize>(r) + 1]; ++p) {
      if (col_idx[static_cast<usize>(p)] <= col_idx[static_cast<usize>(p) - 1]) {
        return false;
      }
    }
  }
  return true;
}

real Csr::at(index_t r, index_t c) const noexcept {
  if (r < 0 || r >= rows) return 0;
  real acc = 0;  // sum stored duplicates, matching the dense interpretation
  for (index_t p = row_ptr[static_cast<usize>(r)];
       p < row_ptr[static_cast<usize>(r) + 1]; ++p) {
    if (col_idx[static_cast<usize>(p)] == c) {
      acc += values[static_cast<usize>(p)];
    }
  }
  return acc;
}

}  // namespace fastsc::sparse
