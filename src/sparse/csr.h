// Compressed Sparse Row matrix (CSR).
//
// The workhorse format: the eigensolver's repeated SpMV (cusparseDcsrmv in
// the paper's Algorithm 3) runs on CSR, produced from COO via coo2csr
// (Algorithm 2, step 4).
#pragma once

#include <vector>

#include "common/types.h"

namespace fastsc::sparse {

struct Csr {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> row_ptr;  // length rows + 1, prefix sums of row nnz
  std::vector<index_t> col_idx;  // length nnz
  std::vector<real> values;      // length nnz

  Csr() = default;
  Csr(index_t rows_, index_t cols_)
      : rows(rows_), cols(cols_), row_ptr(static_cast<usize>(rows_) + 1, 0) {}

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  /// Number of stored entries in a row.
  [[nodiscard]] index_t row_nnz(index_t r) const noexcept {
    return row_ptr[static_cast<usize>(r) + 1] - row_ptr[static_cast<usize>(r)];
  }

  /// Throws std::invalid_argument on malformed structure (bad prefix sums,
  /// out-of-range column indices).
  void validate() const;

  /// True if each row's column indices are strictly increasing.
  [[nodiscard]] bool has_sorted_rows() const noexcept;

  /// Stored value at (r, c) or 0 if absent (linear scan of row r; for tests
  /// and small-matrix work, not hot paths).
  [[nodiscard]] real at(index_t r, index_t c) const noexcept;
};

}  // namespace fastsc::sparse
