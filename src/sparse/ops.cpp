#include "sparse/ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sparse/convert.h"

namespace fastsc::sparse {

std::vector<real> row_sums(const Csr& a) {
  std::vector<real> sums(static_cast<usize>(a.rows), 0.0);
  for (index_t r = 0; r < a.rows; ++r) {
    real acc = 0;
    for (index_t p = a.row_ptr[static_cast<usize>(r)];
         p < a.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      acc += a.values[static_cast<usize>(p)];
    }
    sums[static_cast<usize>(r)] = acc;
  }
  return sums;
}

Csr transpose(const Csr& a) {
  const Csc csc = csr_to_csc(a);
  // The CSC of A holds exactly the CSR of A^T with rows/cols swapped.
  Csr t;
  t.rows = a.cols;
  t.cols = a.rows;
  t.row_ptr = csc.col_ptr;
  t.col_idx = csc.row_idx;
  t.values = csc.values;
  return t;
}

bool is_symmetric(const Csr& a, real tol) {
  if (a.rows != a.cols) return false;
  const Csr t = transpose(a);
  if (t.nnz() != a.nnz()) return false;
  // transpose() yields sorted rows; sort a's rows by comparing via transpose
  // twice (cheap and simple: transpose(transpose(a)) is a with sorted rows).
  const Csr sorted_a = transpose(t);
  for (usize i = 0; i < sorted_a.values.size(); ++i) {
    if (sorted_a.col_idx[i] != t.col_idx[i]) return false;
    if (std::fabs(sorted_a.values[i] - t.values[i]) > tol) return false;
  }
  return sorted_a.row_ptr == t.row_ptr;
}

std::vector<real> diagonal(const Csr& a) {
  FASTSC_CHECK(a.rows == a.cols, "diagonal requires a square matrix");
  std::vector<real> d(static_cast<usize>(a.rows), 0.0);
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t p = a.row_ptr[static_cast<usize>(r)];
         p < a.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      if (a.col_idx[static_cast<usize>(p)] == r) {
        d[static_cast<usize>(r)] += a.values[static_cast<usize>(p)];
      }
    }
  }
  return d;
}

real frobenius_norm(const Csr& a) {
  real acc = 0;
  for (real v : a.values) acc += v * v;
  return std::sqrt(acc);
}

real inf_norm(const Csr& a) {
  real best = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    real acc = 0;
    for (index_t p = a.row_ptr[static_cast<usize>(r)];
         p < a.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      acc += std::fabs(a.values[static_cast<usize>(p)]);
    }
    best = std::max(best, acc);
  }
  return best;
}

Csr drop_small(const Csr& a, real tol) {
  Csr out(a.rows, a.cols);
  out.col_idx.reserve(a.col_idx.size());
  out.values.reserve(a.values.size());
  for (index_t r = 0; r < a.rows; ++r) {
    for (index_t p = a.row_ptr[static_cast<usize>(r)];
         p < a.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      if (std::fabs(a.values[static_cast<usize>(p)]) > tol) {
        out.col_idx.push_back(a.col_idx[static_cast<usize>(p)]);
        out.values.push_back(a.values[static_cast<usize>(p)]);
      }
    }
    out.row_ptr[static_cast<usize>(r) + 1] =
        static_cast<index_t>(out.values.size());
  }
  return out;
}

Csr symmetrize(const Csr& a) {
  FASTSC_CHECK(a.rows == a.cols, "symmetrize requires a square matrix");
  Coo acc = csr_to_coo(a);
  const Csr t = transpose(a);
  const Coo tc = csr_to_coo(t);
  acc.row_idx.insert(acc.row_idx.end(), tc.row_idx.begin(), tc.row_idx.end());
  acc.col_idx.insert(acc.col_idx.end(), tc.col_idx.begin(), tc.col_idx.end());
  acc.values.insert(acc.values.end(), tc.values.begin(), tc.values.end());
  for (real& v : acc.values) v *= 0.5;
  sort_and_merge(acc);
  return coo_to_csr(acc);
}

index_t empty_row_count(const Csr& a) {
  index_t count = 0;
  for (index_t r = 0; r < a.rows; ++r) {
    if (a.row_nnz(r) == 0) ++count;
  }
  return count;
}

}  // namespace fastsc::sparse
