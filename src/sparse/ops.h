// Structural and numeric operations on sparse matrices.
#pragma once

#include <vector>

#include "sparse/coo.h"
#include "sparse/csr.h"

namespace fastsc::sparse {

/// Row sums (weighted degrees d_ii = sum_j W_ij of the paper's Step 2).
[[nodiscard]] std::vector<real> row_sums(const Csr& a);

/// Transpose as CSR.
[[nodiscard]] Csr transpose(const Csr& a);

/// True if A equals A^T up to `tol` on every stored entry.
[[nodiscard]] bool is_symmetric(const Csr& a, real tol = 0.0);

/// Stored diagonal (0 where absent); square matrices only.
[[nodiscard]] std::vector<real> diagonal(const Csr& a);

/// Frobenius norm of stored values.
[[nodiscard]] real frobenius_norm(const Csr& a);

/// Infinity norm (max absolute row sum).
[[nodiscard]] real inf_norm(const Csr& a);

/// Remove entries with |v| <= tol; keeps structure sorted if it was sorted.
[[nodiscard]] Csr drop_small(const Csr& a, real tol);

/// Symmetrize: (A + A^T) / 2.
[[nodiscard]] Csr symmetrize(const Csr& a);

/// Number of rows with zero stored entries (isolated graph nodes).
[[nodiscard]] index_t empty_row_count(const Csr& a);

}  // namespace fastsc::sparse
