#include "sparse/shard.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "common/error.h"
#include "device/stream.h"

namespace fastsc::sparse {

namespace {

using device::PipelineExecutor;

/// Nearest multiple of `align`, monotone in `v` so rounded cuts stay
/// ascending.
index_t round_to_align(index_t v, index_t align) {
  return ((v + align / 2) / align) * align;
}

}  // namespace

index_t RowPartition::owner(index_t r) const {
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), r);
  return static_cast<index_t>(it - cuts.begin()) - 1;
}

RowPartition make_row_partition(const index_t* row_ptr, index_t rows,
                                index_t parts, index_t align,
                                index_t row_weight) {
  parts = std::max<index_t>(parts, 1);
  align = std::max<index_t>(align, 1);
  row_weight = std::max<index_t>(row_weight, 1);
  RowPartition part;
  part.rows = rows;
  part.parts = parts;
  part.cuts.assign(static_cast<usize>(parts) + 1, 0);
  if (rows <= 0) return part;

  // Weighting a row as `w` merge-path units is the same as cutting the
  // merge path of a matrix with w - 1 extra entries per row; synthesizing
  // that row_ptr reuses the unmodified search.
  std::vector<index_t> weighted;
  const index_t* cut_ptr = row_ptr;
  if (row_weight > 1) {
    weighted.resize(static_cast<usize>(rows) + 1);
    for (index_t r = 0; r <= rows; ++r) {
      weighted[static_cast<usize>(r)] = row_ptr[r] + (row_weight - 1) * r;
    }
    cut_ptr = weighted.data();
  }
  const MergePathPartition mp = merge_path_partition(cut_ptr, 0, rows, parts);
  for (index_t p = 1; p < parts; ++p) {
    index_t cut = round_to_align(mp.span_row[static_cast<usize>(p)], align);
    cut = std::min(cut, rows);
    // Whole-row ownership: the straddled boundary row goes to the later
    // part; monotonicity is preserved by clamping against the previous cut.
    part.cuts[static_cast<usize>(p)] =
        std::max(cut, part.cuts[static_cast<usize>(p) - 1]);
  }
  part.cuts[static_cast<usize>(parts)] = rows;

  const index_t nnz = row_ptr[rows];
  part.mean_part_nnz =
      static_cast<real>(nnz) / static_cast<real>(parts);
  for (index_t p = 0; p < parts; ++p) {
    const index_t pn = row_ptr[part.end(p)] - row_ptr[part.begin(p)];
    part.max_part_nnz = std::max(part.max_part_nnz, pn);
  }
  for (index_t r = 0; r < rows; ++r) {
    part.max_row_nnz = std::max(part.max_row_nnz, row_ptr[r + 1] - row_ptr[r]);
  }
  return part;
}

namespace {

/// Host-side shard bookkeeping: local structure, halo, interior/frontier.
struct HostShard {
  Csr local;  ///< local structure (values present only on the upload path)
  std::vector<index_t> halo;
  std::vector<usize> halo_peer_begin;
  std::vector<index_t> interior;
  std::vector<index_t> frontier;
  index_t interior_nnz = 0;
  index_t frontier_nnz = 0;
};

/// Fill halo / interior / frontier from `hs.local`'s structure (row_ptr and
/// global col_idx).  `hs.local` must already hold the row block [rb, re).
void classify_shard(HostShard& hs, const RowPartition& part, index_t rb,
                    index_t re) {
  const index_t parts = part.parts;
  // Halo: sorted unique out-of-range columns.
  hs.halo = hs.local.col_idx;
  std::sort(hs.halo.begin(), hs.halo.end());
  hs.halo.erase(std::unique(hs.halo.begin(), hs.halo.end()), hs.halo.end());
  std::erase_if(hs.halo, [rb, re](index_t c) { return c >= rb && c < re; });
  // Per-peer slice boundaries of the sorted halo.
  hs.halo_peer_begin.resize(static_cast<usize>(parts) + 1);
  for (index_t e = 0; e < parts; ++e) {
    hs.halo_peer_begin[static_cast<usize>(e)] = static_cast<usize>(
        std::lower_bound(hs.halo.begin(), hs.halo.end(), part.begin(e)) -
        hs.halo.begin());
  }
  hs.halo_peer_begin[static_cast<usize>(parts)] = hs.halo.size();

  // Interior vs frontier rows (global row ids).
  for (index_t lr = 0; lr < re - rb; ++lr) {
    bool interior = true;
    const index_t p0 = hs.local.row_ptr[static_cast<usize>(lr)];
    const index_t p1 = hs.local.row_ptr[static_cast<usize>(lr) + 1];
    for (index_t p = p0; p < p1; ++p) {
      const index_t c = hs.local.col_idx[static_cast<usize>(p)];
      if (c < rb || c >= re) {
        interior = false;
        break;
      }
    }
    if (interior) {
      hs.interior.push_back(rb + lr);
      hs.interior_nnz += p1 - p0;
    } else {
      hs.frontier.push_back(rb + lr);
      hs.frontier_nnz += p1 - p0;
    }
  }
}

/// Common tail of the two sharding entry points: move or upload the local
/// blocks, allocate the exchange state, and swap the request lists.  When
/// `locals` is non-null the blocks are adopted as-is (values already on
/// device); otherwise each HostShard's full local CSR uploads over the
/// owning device's link.
ShardedCsr build_sharded(device::DeviceGroup& group, RowPartition part,
                         index_t cols, std::vector<HostShard> host,
                         std::vector<DeviceCsr>* locals) {
  ShardedCsr out;
  out.group = &group;
  out.rows = part.rows;
  out.cols = cols;
  out.part = std::move(part);
  const auto parts = static_cast<index_t>(group.size());

  out.shards.reserve(static_cast<usize>(parts));
  for (index_t d = 0; d < parts; ++d) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(d));
    HostShard& hs = host[static_cast<usize>(d)];
    DeviceCsrShard sh;
    sh.device = d;
    sh.row_begin = out.part.begin(d);
    sh.row_end = out.part.end(d);
    sh.local = locals != nullptr ? std::move((*locals)[static_cast<usize>(d)])
                                 : DeviceCsr(ctx, hs.local);
    out.nnz += sh.local.nnz();
    sh.halo = std::move(hs.halo);
    sh.halo_peer_begin = std::move(hs.halo_peer_begin);
    sh.interior_rows = std::move(hs.interior);
    sh.frontier_rows = std::move(hs.frontier);
    sh.interior_nnz = hs.interior_nnz;
    sh.frontier_nnz = hs.frontier_nnz;
    sh.x_replica = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(out.cols));
    sh.halo_idx = device::DeviceBuffer<index_t>(
        ctx, std::span<const index_t>(sh.halo));
    sh.halo_vals = device::DeviceBuffer<real>(ctx, sh.halo.size());
    sh.interior_idx = device::DeviceBuffer<index_t>(
        ctx, std::span<const index_t>(sh.interior_rows));
    sh.frontier_idx = device::DeviceBuffer<index_t>(
        ctx, std::span<const index_t>(sh.frontier_rows));
    sh.y_local = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(sh.rows()));
    out.shards.push_back(std::move(sh));
  }
  for (index_t e = 0; e < parts; ++e) {
    device::DeviceContext& ctx = group.device(static_cast<usize>(e));
    DeviceCsrShard& se = out.shards[static_cast<usize>(e)];
    std::vector<index_t> requests;
    se.send_begin.assign(static_cast<usize>(parts) + 1, 0);
    for (index_t d = 0; d < parts; ++d) {
      se.send_begin[static_cast<usize>(d)] = requests.size();
      if (d == e) continue;
      const DeviceCsrShard& sd = out.shards[static_cast<usize>(d)];
      const usize o0 = sd.halo_peer_begin[static_cast<usize>(e)];
      const usize o1 = sd.halo_peer_begin[static_cast<usize>(e) + 1];
      requests.insert(requests.end(), sd.halo.begin() + o0,
                      sd.halo.begin() + o1);
    }
    se.send_begin[static_cast<usize>(parts)] = requests.size();
    if (!requests.empty()) {
      se.send_idx = device::DeviceBuffer<index_t>(
          ctx, std::span<const index_t>(requests));
      se.send_buf = device::DeviceBuffer<real>(ctx, requests.size());
    }
  }
  out.executors.reserve(static_cast<usize>(parts));
  for (index_t d = 0; d < parts; ++d) {
    out.executors.push_back(std::make_unique<PipelineExecutor>(
        group.device(static_cast<usize>(d)), 2));
  }
  return out;
}

}  // namespace

ShardedCsr shard_csr(device::DeviceGroup& group, const Csr& a, index_t align,
                     index_t row_weight) {
  FASTSC_CHECK(a.rows == a.cols,
               "sharded operator must be square: x and y share the row "
               "partition");
  const auto parts = static_cast<index_t>(group.size());
  RowPartition part =
      make_row_partition(a.row_ptr.data(), a.rows, parts, align, row_weight);

  // Host-side pass: slice the local row blocks, then classify.
  std::vector<HostShard> host(static_cast<usize>(parts));
  for (index_t d = 0; d < parts; ++d) {
    HostShard& hs = host[static_cast<usize>(d)];
    const index_t rb = part.begin(d);
    const index_t re = part.end(d);
    const index_t e0 = a.row_ptr[static_cast<usize>(rb)];
    const index_t e1 = a.row_ptr[static_cast<usize>(re)];
    hs.local.rows = re - rb;
    hs.local.cols = a.cols;
    hs.local.row_ptr.resize(static_cast<usize>(re - rb) + 1);
    for (index_t r = rb; r <= re; ++r) {
      hs.local.row_ptr[static_cast<usize>(r - rb)] =
          a.row_ptr[static_cast<usize>(r)] - e0;
    }
    hs.local.col_idx.assign(a.col_idx.begin() + e0, a.col_idx.begin() + e1);
    hs.local.values.assign(a.values.begin() + e0, a.values.begin() + e1);
    classify_shard(hs, part, rb, re);
  }
  return build_sharded(group, std::move(part), a.cols, std::move(host),
                       nullptr);
}

ShardedCsr shard_device_locals(device::DeviceGroup& group,
                               const RowPartition& part,
                               std::vector<DeviceCsr> locals,
                               const std::vector<Csr>& structure) {
  const auto parts = static_cast<index_t>(group.size());
  FASTSC_CHECK(part.parts == parts &&
                   locals.size() == static_cast<usize>(parts) &&
                   structure.size() == static_cast<usize>(parts),
               "shard_device_locals needs one local block per device");
  std::vector<HostShard> host(static_cast<usize>(parts));
  for (index_t d = 0; d < parts; ++d) {
    HostShard& hs = host[static_cast<usize>(d)];
    const sparse::Csr& st = structure[static_cast<usize>(d)];
    FASTSC_CHECK(st.rows == part.size(d) &&
                     locals[static_cast<usize>(d)].rows == part.size(d),
                 "local block shape disagrees with the partition");
    hs.local.rows = st.rows;
    hs.local.cols = st.cols;
    hs.local.row_ptr = st.row_ptr;
    hs.local.col_idx = st.col_idx;
    classify_shard(hs, part, part.begin(d), part.end(d));
  }
  // The sharded operator is square (sharded_csrmv shares the row partition
  // between x and y), so the global column count is the partition's rows.
  return build_sharded(group, part, part.rows, std::move(host), &locals);
}

namespace {

/// Per-row CSR multiply over a device row list, writing the local y
/// segment.  The accumulation loop is entry-for-entry identical to
/// device_csrmv, which is what makes the sharded result bitwise equal to
/// the single-device kernel.
void rowlist_csrmv(device::DeviceGroup& group, device::DeviceContext& ctx,
                   DeviceCsrShard& sh,
                   const device::DeviceBuffer<index_t>& rows_idx,
                   index_t nnz_cost, const char* site) {
  const auto n = static_cast<index_t>(rows_idx.size());
  const index_t* rlist = rows_idx.data();
  const index_t* row_ptr = sh.local.row_ptr.data();
  const index_t* col_idx = sh.local.col_idx.data();
  const CsrValuesView values = sh.local.values_view();
  const real* sc = sh.fused_scale.size() != 0 ? sh.fused_scale.data() : nullptr;
  // Narrow rungs stream x at the staging width straight from the packed
  // replica; load-widening is exact, so the operand is bitwise the fp64
  // value the widened replica would hold.
  const bool xnarrow = sh.stage_precision != Precision::kFp64;
  const ConstVecView xq(sh.x_narrow.data(), sh.stage_precision);
  const real* x = sh.x_replica.data();
  real* yl = sh.y_local.data();
  const index_t rb = sh.row_begin;
  const double nnzd = static_cast<double>(nnz_cost);
  const double bw =
      static_cast<double>(bytes_per_scalar(sh.local.value_precision));
  const double bx =
      xnarrow ? static_cast<double>(bytes_per_scalar(sh.stage_precision))
              : static_cast<double>(sizeof(real));
  const double read_bytes =
      nnzd * (bw + bx + sizeof(index_t)) +
      (sc != nullptr ? 2.0 * n * sizeof(real) : 0.0);
  device::LaunchConfig cfg =
      device::tagged(site, (sc != nullptr ? 3.0 : 2.0) * nnzd, read_bytes,
                     static_cast<double>(n) * sizeof(real));
  cfg.bytes_per_scalar = (nnzd * (bw + bx) + n * static_cast<double>(sizeof(real))) /
                         std::max(2.0 * nnzd + n, 1.0);
  cfg.modeled_seconds = group.modeled_kernel_seconds(read_bytes);
  device::launch(
      ctx, n,
      [=](index_t i) {
        const index_t gr = rlist[i];
        const index_t lr = gr - rb;
        real acc = 0;
        for (index_t p = row_ptr[lr]; p < row_ptr[lr + 1]; ++p) {
          const index_t c = col_idx[p];
          // Entry-for-entry the same accumulation as device_csrmv_mp: the
          // fused x term multiplies scale into x before the value product.
          const real xv = xnarrow ? xq.load(static_cast<usize>(c)) : x[c];
          acc += values[p] * (sc != nullptr ? sc[c] * xv : xv);
        }
        yl[lr] = sc != nullptr ? sc[gr] * acc : acc;
      },
      cfg);
}

/// Drain every device's executor before letting any error escape.  add()
/// enqueues eagerly, so once the add-loops finish all P devices' nodes are
/// in flight holding pointers into the caller's frame (x_ready, send_ready,
/// the staging buffers); unwinding past a live stream is a use-after-free.
/// Event records fire even after a sticky stream error, so draining the
/// surviving executors after a fault cannot deadlock.
void run_all(ShardedCsr& a) {
  std::exception_ptr first;
  for (auto& ex : a.executors) {
    try {
      ex->run();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace

void set_sharded_stage_precision(ShardedCsr& a, Precision p) {
  FASTSC_CHECK(a.group != nullptr,
               "set_sharded_stage_precision on an empty ShardedCsr");
  const usize w = bytes_per_scalar(p);
  for (usize d = 0; d < a.shards.size(); ++d) {
    DeviceCsrShard& sh = a.shards[d];
    sh.stage_precision = p;
    if (p == Precision::kFp64) continue;
    device::DeviceContext& ctx = a.group->device(d);
    const auto rows = static_cast<usize>(sh.rows());
    const auto cols = static_cast<usize>(a.cols);
    if (sh.x_narrow.size() < cols * w) {
      sh.x_narrow = device::DeviceBuffer<unsigned char>(ctx, cols * w);
    }
    if (sh.y_stage.size() < rows * w) {
      sh.y_stage = device::DeviceBuffer<unsigned char>(ctx, rows * w);
    }
    if (sh.halo_stage.size() < sh.halo.size() * w && !sh.halo.empty()) {
      sh.halo_stage =
          device::DeviceBuffer<unsigned char>(ctx, sh.halo.size() * w);
    }
    if (sh.send_stage.size() < sh.send_idx.size() * w &&
        sh.send_idx.size() != 0) {
      sh.send_stage =
          device::DeviceBuffer<unsigned char>(ctx, sh.send_idx.size() * w);
    }
  }
}

void demote_sharded_values(ShardedCsr& a, Precision p) {
  FASTSC_CHECK(a.group != nullptr,
               "demote_sharded_values on an empty ShardedCsr");
  for (usize d = 0; d < a.shards.size(); ++d) {
    demote_csr_values(a.group->device(d), a.shards[d].local, p);
  }
}

void set_sharded_fused_scale(
    ShardedCsr& a, std::vector<device::DeviceBuffer<real>> replicas) {
  FASTSC_CHECK(replicas.size() == a.shards.size(),
               "fused scale needs one replica per device");
  for (usize d = 0; d < a.shards.size(); ++d) {
    FASTSC_CHECK(static_cast<index_t>(replicas[d].size()) == a.cols,
                 "fused scale replica must cover every column");
    a.shards[d].fused_scale = std::move(replicas[d]);
  }
}

void set_sharded_fused_scale(ShardedCsr& a, const real* scale) {
  FASTSC_CHECK(a.group != nullptr,
               "set_sharded_fused_scale on an empty ShardedCsr");
  std::vector<device::DeviceBuffer<real>> replicas;
  replicas.reserve(a.shards.size());
  for (usize d = 0; d < a.shards.size(); ++d) {
    replicas.emplace_back(
        a.group->device(d),
        std::span<const real>(scale, static_cast<usize>(a.cols)));
  }
  set_sharded_fused_scale(a, std::move(replicas));
}

void sharded_csrmv(ShardedCsr& a, const real* x, real* y) {
  FASTSC_CHECK(a.group != nullptr, "sharded_csrmv on an empty ShardedCsr");
  device::DeviceGroup& group = *a.group;
  const usize P = a.shards.size();
  if (a.rows <= 0) return;
  const Precision prec = a.shards.empty() ? Precision::kFp64
                                          : a.shards[0].stage_precision;
  const auto w = static_cast<usize>(bytes_per_scalar(prec));
  const bool narrow = prec != Precision::kFp64;

  // Phase A: every device uploads its own x segment and gathers the values
  // its peers requested.  The phase barrier below makes the send buffers
  // stable before any peer copy reads them.  At a narrow staging precision
  // the upload moves packed scalars straight into the narrow full-column
  // replica, so every device reads exactly quantize(x[i]) via exact
  // load-widening (the fp64 x_replica is untouched on narrow rungs).
  std::vector<std::vector<unsigned char>> xpack(narrow ? P : 0);
  std::vector<PipelineExecutor::NodeId> xnode(P), gnode(P);
  for (usize d = 0; d < P; ++d) {
    PipelineExecutor& ex = *a.executors[d];
    ex.reset();
    if (!narrow) {
      xnode[d] = ex.add(
          PipelineExecutor::kTransferStream, "shard.x_upload",
          [&a, &group, x, d] {
            DeviceCsrShard& sh = a.shards[d];
            const index_t b = sh.row_begin;
            device::copy_h2d(group.device(d), sh.x_replica.data() + b, x + b,
                             static_cast<usize>(sh.rows()));
          });
    } else {
      // Packed upload lands directly in this device's slice of the narrow
      // full-column replica — no widening kernel; the SpMV kernels widen on
      // load, which is exact.
      xnode[d] = ex.add(
          PipelineExecutor::kTransferStream, "shard.x_upload",
          [&a, &group, &xpack, x, d, prec, w] {
            DeviceCsrShard& sh = a.shards[d];
            const auto rows = static_cast<usize>(sh.rows());
            xpack[d].resize(rows * w);
            pack_scalars(x + sh.row_begin, rows, prec, xpack[d].data());
            device::copy_h2d(
                group.device(d),
                sh.x_narrow.data() + static_cast<usize>(sh.row_begin) * w,
                xpack[d].data(), rows * w);
          });
    }
    gnode[d] = ex.add(
        PipelineExecutor::kComputeStream, "shard.halo_gather",
        [&a, &group, d, prec, w, narrow] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          // One launch over the concatenated request lists: per-peer
          // launches would pay N-1 launch latencies every wave.
          const usize cnt = sh.send_idx.size();
          if (cnt == 0) return;
          const index_t* idx = sh.send_idx.data();
          const double c = static_cast<double>(cnt);
          const double bx = narrow ? static_cast<double>(w) : sizeof(real);
          device::LaunchConfig cfg = device::tagged(
              "spmv.halo_gather", c, c * (bx + sizeof(index_t)),
              c * static_cast<double>(w));
          cfg.bytes_per_scalar = static_cast<double>(w);
          cfg.modeled_seconds = group.modeled_kernel_seconds(
              c * (bx + static_cast<double>(w)));
          if (!narrow) {
            const real* xr = sh.x_replica.data();
            real* buf = sh.send_buf.data();
            device::launch(
                ctx, static_cast<index_t>(cnt),
                [=](index_t i) { buf[i] = xr[idx[i]]; }, cfg);
          } else {
            // Gather the narrow replica bytes into the send staging; the
            // load/store round-trip re-quantizes an already-quantized value,
            // which is the identity, so the peer receives bitwise the same
            // bytes the owner's upload landed.
            const ConstVecView xn(sh.x_narrow.data(), prec);
            const VecView buf(sh.send_stage.data(), prec);
            device::launch(
                ctx, static_cast<index_t>(cnt),
                [=](index_t i) {
                  buf.store(static_cast<usize>(i),
                            xn.load(static_cast<usize>(idx[i])));
                },
                cfg);
          }
        },
        {xnode[d]});
  }
  run_all(a);
  std::vector<double> x_ready(P), send_ready(P);
  for (usize d = 0; d < P; ++d) {
    x_ready[d] = a.executors[d]->done(xnode[d]).virtual_time();
    send_ready[d] = a.executors[d]->done(gnode[d]).virtual_time();
  }

  // Phase B: halo exchange on the transfer stream while interior rows
  // multiply on the compute stream; frontier rows wait for the scatter.
  for (usize d = 0; d < P; ++d) {
    PipelineExecutor& ex = *a.executors[d];
    ex.reset();
    // Interior first on the compute stream so the stream FIFO does not park
    // it behind the scatter's wait for the exchange.
    const auto inode = ex.add(
        PipelineExecutor::kComputeStream, "shard.spmv_interior",
        [&a, &group, &x_ready, d] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          ctx.sync_current_clock_to(x_ready[d]);
          rowlist_csrmv(group, ctx, sh, sh.interior_idx, sh.interior_nnz,
                        "spmv.shard_interior");
        });
    const auto hnode = ex.add(
        PipelineExecutor::kTransferStream, "shard.halo_exchange",
        [&a, &group, &send_ready, d, P, w, narrow] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          for (usize e = 0; e < P; ++e) {
            if (e == d) continue;
            const usize o0 = sh.halo_peer_begin[e];
            const usize cnt = sh.halo_peer_begin[e + 1] - o0;
            if (cnt == 0) continue;
            // The peer's gather must have retired before its buffer is
            // read; floor this link's clock to that completion time.
            ctx.sync_current_clock_to(send_ready[e]);
            const DeviceCsrShard& pe = a.shards[e];
            if (!narrow) {
              group.copy_peer(e, d, pe.send_buf.data() + pe.send_begin[d],
                              sh.halo_vals.data() + o0, cnt, "d2d.halo");
            } else {
              group.copy_peer(e, d,
                              pe.send_stage.data() + w * pe.send_begin[d],
                              sh.halo_stage.data() + w * o0, cnt * w,
                              "d2d.halo");
            }
          }
        });
    const auto snode = ex.add(
        PipelineExecutor::kComputeStream, "shard.halo_scatter",
        [&a, &group, d, prec, w, narrow] {
          DeviceCsrShard& sh = a.shards[d];
          const usize cnt = sh.halo.size();
          if (cnt == 0) return;
          const index_t* idx = sh.halo_idx.data();
          const double c = static_cast<double>(cnt);
          const double bo = narrow ? static_cast<double>(w) : sizeof(real);
          device::LaunchConfig cfg = device::tagged(
              "spmv.halo_scatter",
              c, c * (static_cast<double>(w) + sizeof(index_t)), c * bo);
          cfg.bytes_per_scalar = static_cast<double>(w);
          cfg.modeled_seconds = group.modeled_kernel_seconds(
              c * (static_cast<double>(w) + bo));
          if (!narrow) {
            real* xr = sh.x_replica.data();
            const real* vals = sh.halo_vals.data();
            device::launch(
                group.device(d), static_cast<index_t>(cnt),
                [=](index_t i) { xr[idx[i]] = vals[i]; }, cfg);
          } else {
            // Scatter the received narrow bytes into the halo slots of the
            // narrow replica: values were quantized once at the owner's
            // upload, so the load/store round-trip is the identity and the
            // slot lands bitwise the same bytes the owner holds.
            const ConstVecView vals(sh.halo_stage.data(), prec);
            const VecView xn(sh.x_narrow.data(), prec);
            device::launch(
                group.device(d), static_cast<index_t>(cnt),
                [=](index_t i) {
                  xn.store(static_cast<usize>(idx[i]),
                           vals.load(static_cast<usize>(i)));
                },
                cfg);
          }
        },
        {hnode});
    const auto fnode = ex.add(
        PipelineExecutor::kComputeStream, "shard.spmv_frontier",
        [&a, &group, d] {
          DeviceCsrShard& sh = a.shards[d];
          rowlist_csrmv(group, group.device(d), sh, sh.frontier_idx,
                        sh.frontier_nnz, "spmv.shard_frontier");
        },
        {snode});
    if (!narrow) {
      ex.add(
          PipelineExecutor::kTransferStream, "shard.y_download",
          [&a, &group, y, d] {
            DeviceCsrShard& sh = a.shards[d];
            device::copy_d2h(group.device(d), y + sh.row_begin,
                             sh.y_local.data(), static_cast<usize>(sh.rows()));
          },
          {inode, fnode});
    } else {
      // Quantize y on device, move the packed bytes over PCIe, widen on the
      // host — the downlink twin of the x staging above.
      const auto pnode = ex.add(
          PipelineExecutor::kComputeStream, "shard.y_pack",
          [&a, &group, d, prec, w] {
            DeviceCsrShard& sh = a.shards[d];
            const auto rows = static_cast<index_t>(sh.rows());
            if (rows == 0) return;
            const real* yl = sh.y_local.data();
            const VecView v(sh.y_stage.data(), prec);
            const double c = static_cast<double>(rows);
            device::LaunchConfig cfg = device::tagged(
                "precision.stage", c, c * sizeof(real),
                c * static_cast<double>(w));
            cfg.bytes_per_scalar = static_cast<double>(w);
            cfg.modeled_seconds = group.modeled_kernel_seconds(
                c * (sizeof(real) + static_cast<double>(w)));
            device::launch(
                group.device(d), rows,
                [=](index_t i) { v.store(static_cast<usize>(i), yl[i]); },
                cfg);
          },
          {inode, fnode});
      ex.add(
          PipelineExecutor::kTransferStream, "shard.y_download",
          [&a, &group, y, d, prec, w] {
            DeviceCsrShard& sh = a.shards[d];
            const auto rows = static_cast<usize>(sh.rows());
            std::vector<unsigned char> packed(rows * w);
            device::copy_d2h(group.device(d), packed.data(),
                             sh.y_stage.data(), rows * w);
            unpack_scalars(packed.data(), rows, prec, y + sh.row_begin);
          },
          {pnode});
    }
  }
  run_all(a);
  for (usize d = 0; d < P; ++d) a.executors[d]->reset();
}

void sharded_csrmm(ShardedCsr& a, const real* x, real* y, index_t nvec) {
  FASTSC_CHECK(a.group != nullptr, "sharded_csrmm on an empty ShardedCsr");
  FASTSC_CHECK(nvec >= 0, "csrmm vector count must be non-negative");
  if (nvec == 0 || a.rows <= 0) return;
  device::DeviceGroup& group = *a.group;
  const usize P = a.shards.size();
  const index_t cols = a.cols;
  const index_t rows = a.rows;

  // Per-call block buffers (the differential suite's workload; the RCI hot
  // path is the single-vector sharded_csrmv above).  Block layouts mirror
  // device_csrmm: vector j occupies x_block[j*cols ..] / y_block[j*lrows..].
  struct BlockBufs {
    device::DeviceBuffer<real> x_block;
    device::DeviceBuffer<real> y_block;
    device::DeviceBuffer<real> halo_vals;
    /// Gather staging over the concatenated request lists, nvec values per
    /// requested element (elem-major like the csrmv layout).
    device::DeviceBuffer<real> send_buf;
  };
  std::vector<BlockBufs> bufs(P);
  for (usize d = 0; d < P; ++d) {
    device::DeviceContext& ctx = group.device(d);
    DeviceCsrShard& sh = a.shards[d];
    BlockBufs& b = bufs[d];
    b.x_block = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(nvec) * static_cast<usize>(cols));
    b.y_block = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(nvec) * static_cast<usize>(sh.rows()));
    b.halo_vals = device::DeviceBuffer<real>(
        ctx, static_cast<usize>(nvec) * sh.halo.size());
    if (sh.send_idx.size() != 0) {
      b.send_buf = device::DeviceBuffer<real>(
          ctx, static_cast<usize>(nvec) * sh.send_idx.size());
    }
  }

  std::vector<PipelineExecutor::NodeId> unode(P), gnode(P);
  for (usize d = 0; d < P; ++d) {
    PipelineExecutor& ex = *a.executors[d];
    ex.reset();
    unode[d] = ex.add(
        PipelineExecutor::kTransferStream, "shard.xblk_upload",
        [&a, &group, &bufs, x, d, nvec, cols] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          for (index_t j = 0; j < nvec; ++j) {
            device::copy_h2d(ctx, bufs[d].x_block.data() + j * cols +
                                      sh.row_begin,
                             x + j * cols + sh.row_begin,
                             static_cast<usize>(sh.rows()));
          }
        });
    gnode[d] = ex.add(
        PipelineExecutor::kComputeStream, "shard.halo_gather",
        [&a, &group, &bufs, d, nvec, cols] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          const usize cnt = sh.send_idx.size();
          if (cnt == 0) return;
          const index_t* idx = sh.send_idx.data();
          const real* xb = bufs[d].x_block.data();
          real* buf = bufs[d].send_buf.data();
          const auto n = static_cast<index_t>(cnt) * nvec;
          const double c = static_cast<double>(n);
          device::LaunchConfig cfg = device::tagged(
              "spmv.halo_gather", c, c * (sizeof(real) + sizeof(index_t)),
              c * sizeof(real));
          cfg.modeled_seconds =
              group.modeled_kernel_seconds(c * 2.0 * sizeof(real));
          device::launch(
              ctx, n,
              [=](index_t i) {
                const index_t elem = i / nvec;
                const index_t j = i % nvec;
                buf[i] = xb[j * cols + idx[elem]];
              },
              cfg);
        },
        {unode[d]});
  }
  run_all(a);
  std::vector<double> send_ready(P);
  for (usize d = 0; d < P; ++d) {
    send_ready[d] = a.executors[d]->done(gnode[d]).virtual_time();
  }

  for (usize d = 0; d < P; ++d) {
    PipelineExecutor& ex = *a.executors[d];
    ex.reset();
    const auto hnode = ex.add(
        PipelineExecutor::kTransferStream, "shard.halo_exchange",
        [&a, &group, &bufs, &send_ready, d, P, nvec] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          for (usize e = 0; e < P; ++e) {
            if (e == d) continue;
            const usize o0 = sh.halo_peer_begin[e];
            const usize cnt = sh.halo_peer_begin[e + 1] - o0;
            if (cnt == 0) continue;
            ctx.sync_current_clock_to(send_ready[e]);
            const DeviceCsrShard& pe = a.shards[e];
            group.copy_peer(e, d,
                            bufs[e].send_buf.data() +
                                static_cast<usize>(nvec) * pe.send_begin[d],
                            bufs[d].halo_vals.data() +
                                static_cast<usize>(nvec) * o0,
                            static_cast<usize>(nvec) * cnt, "d2d.halo");
          }
        });
    const auto snode = ex.add(
        PipelineExecutor::kComputeStream, "shard.halo_scatter",
        [&a, &group, &bufs, d, nvec, cols] {
          DeviceCsrShard& sh = a.shards[d];
          const usize cnt = sh.halo.size();
          if (cnt == 0) return;
          const index_t* idx = sh.halo_idx.data();
          const real* vals = bufs[d].halo_vals.data();
          real* xb = bufs[d].x_block.data();
          const auto n = static_cast<index_t>(cnt) * nvec;
          const double c = static_cast<double>(n);
          device::LaunchConfig cfg = device::tagged(
              "spmv.halo_scatter", c, c * (sizeof(real) + sizeof(index_t)),
              c * sizeof(real));
          cfg.modeled_seconds =
              group.modeled_kernel_seconds(c * 2.0 * sizeof(real));
          device::launch(
              group.device(d), n,
              [=](index_t i) {
                const index_t elem = i / nvec;
                const index_t j = i % nvec;
                xb[j * cols + idx[elem]] = vals[i];
              },
              cfg);
        },
        {hnode});
    const auto cnode = ex.add(
        PipelineExecutor::kComputeStream, "shard.spmm",
        [&a, &group, &bufs, d, nvec] {
          // All rows wait for the scatter: the block sweep amortizes the A
          // read across vectors, so splitting interior/frontier would
          // re-sweep the matrix (device_csrmm makes the same trade).
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          const index_t lrows = sh.rows();
          const index_t* row_ptr = sh.local.row_ptr.data();
          const index_t* col_idx = sh.local.col_idx.data();
          const CsrValuesView values = sh.local.values_view();
          const real* sc =
              sh.fused_scale.size() != 0 ? sh.fused_scale.data() : nullptr;
          const index_t rb = sh.row_begin;
          const real* xb = bufs[d].x_block.data();
          real* yb = bufs[d].y_block.data();
          const index_t ncols = sh.local.cols;
          const double nnzd = static_cast<double>(sh.local.nnz());
          const auto bw =
              static_cast<double>(bytes_per_scalar(sh.local.value_precision));
          device::LaunchConfig cfg = device::tagged(
              "spmv.shard_spmm", (sc != nullptr ? 3.0 : 2.0) * nnzd * nvec,
              nnzd * (bw + sizeof(index_t)) +
                  nnzd * nvec * static_cast<double>(sizeof(real)),
              static_cast<double>(lrows) * nvec * sizeof(real));
          cfg.bytes_per_scalar =
              (nnzd * bw + nnzd * nvec * 8.0 +
               static_cast<double>(lrows) * nvec * 8.0) /
              (nnzd + nnzd * nvec + static_cast<double>(lrows) * nvec);
          cfg.modeled_seconds = group.modeled_kernel_seconds(
              nnzd * nvec * 2.0 * sizeof(real));
          device::launch(
              ctx, lrows,
              [=](index_t lr) {
                for (index_t j = 0; j < nvec; ++j) {
                  const real* xj = xb + j * ncols;
                  real acc = 0;
                  for (index_t p = row_ptr[lr]; p < row_ptr[lr + 1]; ++p) {
                    const index_t c = col_idx[p];
                    acc += values[static_cast<usize>(p)] *
                           (sc != nullptr ? sc[c] * xj[c] : xj[c]);
                  }
                  yb[j * lrows + lr] =
                      sc != nullptr ? sc[rb + lr] * acc : acc;
                }
              },
              cfg);
        },
        {snode});
    ex.add(
        PipelineExecutor::kTransferStream, "shard.yblk_download",
        [&a, &group, &bufs, y, d, nvec, rows] {
          DeviceCsrShard& sh = a.shards[d];
          device::DeviceContext& ctx = group.device(d);
          const index_t lrows = sh.rows();
          for (index_t j = 0; j < nvec; ++j) {
            device::copy_d2h(ctx, y + j * rows + sh.row_begin,
                             bufs[d].y_block.data() + j * lrows,
                             static_cast<usize>(lrows));
          }
        },
        {cnode});
  }
  run_all(a);
  for (usize d = 0; d < P; ++d) a.executors[d]->reset();
}

}  // namespace fastsc::sparse
