// 1-D row sharding of a CSR operator across a DeviceGroup.
//
// The multi-GPU layout follows Sgherzi et al. (arXiv:2201.07498): device d
// owns a contiguous row block of A (global column indices preserved) plus a
// full-length replica of the dense vector x.  A sharded SpMV wave is then
//
//   1. each device uploads its *own* x segment over its PCIe link,
//   2. devices exchange halos peer-to-peer: device e gathers the x values
//      devices d != e reference from e's row range (the request lists are
//      exchanged once at shard-build time, as a real implementation would),
//      ships them over the modeled D2D link, and d scatters them into its
//      replica,
//   3. each device multiplies its rows — *interior* rows (every referenced
//      column inside the own range) start as soon as the own segment is up,
//      overlapping the halo exchange on the virtual timeline; *frontier*
//      rows wait for the scatter,
//   4. each device downloads its y segment.
//
// The wave runs through one {transfer, compute} PipelineExecutor per device
// (the same machinery the single-device pipelined eigensolver uses), so
// every copy and kernel lands on the owning device's virtual timeline and
// exchange/compute overlap is metered per device.
//
// Determinism contract (tests/test_sharded_differential.cpp): the per-row
// accumulation loop is identical to device_csrmv — ascending CSR entry
// order into one scalar accumulator — and the replica holds bitwise the
// same x values regardless of which link delivered them, so a sharded
// multiply is bitwise equal to the single-device kernel for every device
// count.  Row cuts can be aligned to a block size so blocked cross-device
// reductions (core/sharded.cpp k-means) keep a fixed fold order too.
#pragma once

#include <memory>
#include <vector>

#include "common/types.h"
#include "device/device_group.h"
#include "device/executor.h"
#include "sparse/balance.h"
#include "sparse/csr.h"
#include "sparse/spmv.h"

namespace fastsc::sparse {

/// Contiguous row partition of [0, rows) into `parts` pieces, cut where the
/// merge path (row_weight * rows + nnz work measure) is evenly split, then
/// rounded to `align`-row boundaries.  Boundary rows are owned whole by one
/// part, so with align == 1 and row_weight == 1,
///   nnz(part) <= ceil((rows + nnz) / parts) + max_row_nnz
/// — the merge-path bound plus at most one row (the property
/// tests/test_device_group.cpp asserts).
///
/// `row_weight` counts each row as that many merge-path units: the sharded
/// pipeline's per-row dense work (CGS2 reorthogonalization sweeps, k-means
/// assignment, the PCIe x/y staging) scales with rows, not entries, and at
/// weight 1 a partition balanced on nnz alone leaves the sparse shards with
/// the most rows carrying the most dense work.
struct RowPartition {
  index_t rows = 0;
  index_t parts = 0;
  std::vector<index_t> cuts;  ///< size parts + 1; cuts[0]=0, back()=rows

  /// Balance telemetry over the whole-row shards.
  index_t max_part_nnz = 0;
  real mean_part_nnz = 0;
  index_t max_row_nnz = 0;

  [[nodiscard]] index_t begin(index_t p) const {
    return cuts[static_cast<usize>(p)];
  }
  [[nodiscard]] index_t end(index_t p) const {
    return cuts[static_cast<usize>(p) + 1];
  }
  [[nodiscard]] index_t size(index_t p) const { return end(p) - begin(p); }

  /// Part owning global row r (cuts are ascending; binary search).
  [[nodiscard]] index_t owner(index_t r) const;
};

[[nodiscard]] RowPartition make_row_partition(const index_t* row_ptr,
                                              index_t rows, index_t parts,
                                              index_t align = 1,
                                              index_t row_weight = 1);

/// One device's shard: the local row block (global columns), the halo
/// bookkeeping, and the exchange staging buffers.
struct DeviceCsrShard {
  index_t device = 0;
  index_t row_begin = 0;
  index_t row_end = 0;

  /// Local row block as a DeviceCsr with rows = row_end - row_begin and
  /// cols = global n (column indices stay global).
  DeviceCsr local;

  /// Sorted global columns outside [row_begin, row_end) referenced by local
  /// entries — exactly the values this device must receive each wave.
  std::vector<index_t> halo;
  /// halo[halo_peer_begin[e] .. halo_peer_begin[e+1]) lie in peer e's row
  /// range (size parts + 1; own range is empty by construction).
  std::vector<usize> halo_peer_begin;

  /// Global rows whose columns all fall inside the own range (computable
  /// before the halo lands) vs. the rest.
  std::vector<index_t> interior_rows;
  std::vector<index_t> frontier_rows;

  // Device-resident exchange state.
  device::DeviceBuffer<real> x_replica;        ///< length = global cols
  device::DeviceBuffer<index_t> halo_idx;      ///< device copy of `halo`
  device::DeviceBuffer<real> halo_vals;        ///< recv staging, |halo|
  device::DeviceBuffer<index_t> interior_idx;  ///< device row lists
  device::DeviceBuffer<index_t> frontier_idx;
  device::DeviceBuffer<real> y_local;          ///< local y segment

  /// Staging precision (mixed-precision ladder): when narrower than fp64,
  /// the PCIe x/y staging and the D2D halo exchange move scalars packed at
  /// this width, and the SpMV kernels read x straight from the packed
  /// full-column replica `x_narrow` (the fp64 x_replica above is fp64-path
  /// only).  Every slot of x_narrow holds the same narrow bytes on every
  /// device — locals land via the packed upload, halo slots via the byte
  /// exchange — and load-widening is exact, so the kernels see exactly
  /// quantize(x[i]) regardless of which link delivered each value,
  /// preserving the bitwise determinism contract across device counts.
  Precision stage_precision = Precision::kFp64;
  device::DeviceBuffer<unsigned char> x_narrow;    ///< global cols * width
  device::DeviceBuffer<unsigned char> y_stage;     ///< rows() * width
  device::DeviceBuffer<unsigned char> halo_stage;  ///< |halo| * width
  device::DeviceBuffer<unsigned char> send_stage;  ///< |send_idx| * width

  /// Full-length D^{-1/2} replica for the fused SpMV epilogue (empty =
  /// unfused; see device_csrmv_mp for the fused semantics).
  device::DeviceBuffer<real> fused_scale;
  /// Entry counts under the two row lists (kernel cost telemetry).
  index_t interior_nnz = 0;
  index_t frontier_nnz = 0;
  /// Request lists of every *other* device d — the subset of d's halo
  /// inside this device's row range — concatenated in ascending d so the
  /// whole gather is ONE kernel launch per wave (the per-peer variant
  /// spends N-1 launch latencies and dominates the modeled time at scale).
  /// send_begin[d] .. send_begin[d+1]) is the slice destined for device d.
  device::DeviceBuffer<index_t> send_idx;
  device::DeviceBuffer<real> send_buf;
  std::vector<usize> send_begin;  ///< size parts + 1

  [[nodiscard]] index_t rows() const noexcept { return row_end - row_begin; }
};

/// A CSR row-sharded across every device of a group, with one persistent
/// {transfer, compute} executor per device (reset between waves so the
/// virtual clocks persist across the RCI loop like the single-device
/// pipeline's streams do).
struct ShardedCsr {
  device::DeviceGroup* group = nullptr;
  index_t rows = 0;
  index_t cols = 0;
  index_t nnz = 0;
  RowPartition part;
  std::vector<DeviceCsrShard> shards;
  std::vector<std::unique_ptr<device::PipelineExecutor>> executors;
};

/// Shard `a` (square or rectangular; columns index x) across all devices of
/// `group` using the merge-path row partition.  `align` rounds row cuts
/// (see make_row_partition).  Uploads each shard's CSR arrays and row lists
/// over the owning device's link (metered H2D).
[[nodiscard]] ShardedCsr shard_csr(device::DeviceGroup& group, const Csr& a,
                                   index_t align = 1, index_t row_weight = 1);

/// Build a ShardedCsr from per-device row blocks that are ALREADY resident
/// on their devices — the distributed-normalization path, where each device
/// assembled and scaled its own block and the values never round-trip
/// through the host.  `locals[d]` is device d's block (rows = part.size(d),
/// global column indices); `structure[d]` is its host mirror (row_ptr and
/// col_idx only; values may be empty) used to build the halo bookkeeping.
/// `part` must be the partition the blocks were cut with.
[[nodiscard]] ShardedCsr shard_device_locals(device::DeviceGroup& group,
                                             const RowPartition& part,
                                             std::vector<DeviceCsr> locals,
                                             const std::vector<Csr>& structure);

/// Switch every wave's x/y PCIe staging and halo exchange to width `p`,
/// allocating the packed staging buffers (kFp64 reverts to the direct fp64
/// copies; buffers stay allocated).  Values already on device are
/// unaffected — pair with demote_sharded_values for the full ladder rung.
void set_sharded_stage_precision(ShardedCsr& a, Precision p);

/// Demote every shard's local value array to `p` storage in place (one
/// "precision.demote" pass per device; see demote_csr_values).
void demote_sharded_values(ShardedCsr& a, Precision p);

/// Install a fused D^{-1/2} epilogue from per-device full-length replicas
/// of the scale vector (ownership transferred; replicas[d] must live on
/// device d and have length cols).  Subsequent waves compute y = S A S x
/// in the multiply kernels, matching device_csrmv_mp's fused semantics.
void set_sharded_fused_scale(ShardedCsr& a,
                             std::vector<device::DeviceBuffer<real>> replicas);

/// Convenience for tests: upload a host scale vector (length cols) to every
/// device (metered H2D) and install it as the fused epilogue.
void set_sharded_fused_scale(ShardedCsr& a, const real* scale);

/// One sharded SpMV wave: y = A x with host-resident x (length cols) and y
/// (length rows).  Bitwise equal to device_csrmv of the unsharded matrix
/// for any device count (at fp64 staging, to device_csrmv_mp at the shared
/// staging precision otherwise).  Fault sites: the halo copies ride
/// "d2d.halo"; uploads/downloads ride the copy.h2d / copy.d2h mechanisms.
void sharded_csrmv(ShardedCsr& a, const real* x, real* y);

/// Sharded SpMM for `nvec` packed vectors, X row-major nvec x cols and Y
/// nvec x rows (the device_csrmm convention); row j of Y is bitwise equal
/// to sharded_csrmv on X's row j.  Exchange buffers for the block are
/// allocated per call (the differential suite's workload, not a hot path).
void sharded_csrmm(ShardedCsr& a, const real* x, real* y, index_t nvec);

}  // namespace fastsc::sparse
