#include "sparse/spmv.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "device/algorithms.h"
#include "obs/attribution.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fastsc::sparse {

namespace {

/// Shared beta prologue of the accumulate-style host SpMVs: y = beta * y,
/// with beta == 0 writing zeros outright so callers may pass fresh
/// (uninitialized) storage — NaNs in y must never leak through 0 * NaN.
inline void host_beta_prologue(index_t rows, real beta, real* y) {
  if (beta == 0) {
    std::fill(y, y + rows, 0.0);
  } else if (beta != 1) {
    for (index_t r = 0; r < rows; ++r) y[r] *= beta;
  }
}

/// Cost model of one csrmv-shaped launch over `nnz` entries and `rows`
/// rows, accounting each scalar array at its storage width.  The fused
/// scale vector is modeled cache-resident: one read of rows * 8 bytes, not
/// nnz * 8 — matching what an n-length vector costs a real GPU's DRAM.
device::LaunchConfig csrmv_cost(const char* site, double nnz, double rows,
                                Precision w, Precision x, Precision y,
                                bool fused) {
  const double bw = static_cast<double>(bytes_per_scalar(w));
  const double bx = static_cast<double>(bytes_per_scalar(x));
  const double by = static_cast<double>(bytes_per_scalar(y));
  const double scale_bytes = fused ? 2.0 * rows * sizeof(real) : 0.0;
  device::LaunchConfig cfg = device::tagged(
      site, (fused ? 3.0 : 2.0) * nnz + (fused ? rows : 0.0),
      nnz * (bw + bx + sizeof(index_t)) + (rows + 1.0) * sizeof(index_t) +
          scale_bytes,
      rows * by);
  // Byte-weighted storage width over the scalar arrays only (structure
  // indices excluded): 8 for pure fp64, smaller as storage narrows.
  const double scalar_elems = 2.0 * nnz + rows + (fused ? 2.0 * rows : 0.0);
  const double scalar_bytes = nnz * (bw + bx) + rows * by + scale_bytes;
  cfg.bytes_per_scalar = scalar_elems > 0 ? scalar_bytes / scalar_elems : 8.0;
  return cfg;
}

}  // namespace

void csr_mv(const Csr& a, const real* x, real* y, real alpha, real beta) {
  host_beta_prologue(a.rows, beta, y);
  for (index_t r = 0; r < a.rows; ++r) {
    real acc = 0;
    for (index_t p = a.row_ptr[static_cast<usize>(r)];
         p < a.row_ptr[static_cast<usize>(r) + 1]; ++p) {
      acc += a.values[static_cast<usize>(p)] *
             x[a.col_idx[static_cast<usize>(p)]];
    }
    y[r] += alpha * acc;
  }
}

void coo_mv(const Coo& a, const real* x, real* y, real alpha, real beta) {
  host_beta_prologue(a.rows, beta, y);
  const usize nnz = a.values.size();
  for (usize i = 0; i < nnz; ++i) {
    y[a.row_idx[i]] += alpha * a.values[i] * x[a.col_idx[i]];
  }
}

void csc_mv(const Csc& a, const real* x, real* y, real alpha, real beta) {
  host_beta_prologue(a.rows, beta, y);
  for (index_t c = 0; c < a.cols; ++c) {
    const real s = alpha * x[c];
    if (s == 0) continue;
    for (index_t p = a.col_ptr[static_cast<usize>(c)];
         p < a.col_ptr[static_cast<usize>(c) + 1]; ++p) {
      y[a.row_idx[static_cast<usize>(p)]] +=
          s * a.values[static_cast<usize>(p)];
    }
  }
}

void bsr_mv(const Bsr& a, const real* x, real* y, real alpha, real beta) {
  const index_t b = a.block_size;
  host_beta_prologue(a.rows, beta, y);
  for (index_t br = 0; br < a.block_rows; ++br) {
    const index_t r_lo = br * b;
    const index_t r_hi = std::min(r_lo + b, a.rows);
    for (index_t s = a.block_row_ptr[static_cast<usize>(br)];
         s < a.block_row_ptr[static_cast<usize>(br) + 1]; ++s) {
      const index_t c_lo = a.block_col_idx[static_cast<usize>(s)] * b;
      const index_t c_hi = std::min(c_lo + b, a.cols);
      const real* block = a.values.data() +
                          static_cast<usize>(s) * static_cast<usize>(b) *
                              static_cast<usize>(b);
      for (index_t r = r_lo; r < r_hi; ++r) {
        real acc = 0;
        const real* brow = block + (r - r_lo) * b;
        for (index_t c = c_lo; c < c_hi; ++c) acc += brow[c - c_lo] * x[c];
        y[r] += alpha * acc;
      }
    }
  }
}

DeviceCsr::DeviceCsr(device::DeviceContext& ctx, const Csr& host)
    : rows(host.rows),
      cols(host.cols),
      row_ptr(ctx, std::span<const index_t>(host.row_ptr)),
      col_idx(ctx, std::span<const index_t>(host.col_idx)),
      values(ctx, std::span<const real>(host.values)) {}

Csr DeviceCsr::to_host() const {
  Csr out;
  out.rows = rows;
  out.cols = cols;
  out.row_ptr = row_ptr.to_host();
  out.col_idx = col_idx.to_host();
  switch (value_precision) {
    case Precision::kFp64:
      out.values = values.to_host();
      break;
    case Precision::kFp32: {
      const std::vector<float> v = values_f32.to_host();
      out.values.resize(v.size());
      for (usize i = 0; i < v.size(); ++i) {
        out.values[i] = static_cast<real>(v[i]);
      }
      break;
    }
    case Precision::kBf16: {
      const std::vector<std::uint16_t> v = values_b16.to_host();
      out.values.resize(v.size());
      for (usize i = 0; i < v.size(); ++i) {
        out.values[i] = static_cast<real>(float_from_bf16(v[i]));
      }
      break;
    }
  }
  return out;
}

void demote_csr_values(device::DeviceContext& ctx, DeviceCsr& a, Precision p) {
  if (p == a.value_precision) return;
  FASTSC_CHECK(a.value_precision == Precision::kFp64,
               "demote_csr_values: only fp64 values can be demoted");
  const index_t nnz = a.nnz();
  const real* src = a.values.data();
  device::LaunchConfig cfg = device::tagged(
      "precision.demote", static_cast<double>(nnz),
      nnz * static_cast<double>(sizeof(real)),
      nnz * static_cast<double>(bytes_per_scalar(p)));
  cfg.bytes_per_scalar = static_cast<double>(bytes_per_scalar(p));
  if (p == Precision::kFp32) {
    a.values_f32 = device::DeviceBuffer<float>(ctx, static_cast<usize>(nnz));
    float* dst = a.values_f32.data();
    device::launch(ctx, nnz,
                   [=](index_t i) { dst[i] = float_from_real(src[i]); }, cfg);
  } else {
    a.values_b16 =
        device::DeviceBuffer<std::uint16_t>(ctx, static_cast<usize>(nnz));
    std::uint16_t* dst = a.values_b16.data();
    device::launch(
        ctx, nnz,
        [=](index_t i) { dst[i] = bf16_from_float(float_from_real(src[i])); },
        cfg);
  }
  a.value_precision = p;
  // Release the fp64 copy — halving (or quartering) the matrix's device
  // footprint is the point of the demotion.
  a.values = device::DeviceBuffer<real>();
}

DeviceCoo::DeviceCoo(device::DeviceContext& ctx, const Coo& host)
    : rows(host.rows),
      cols(host.cols),
      row_idx(ctx, std::span<const index_t>(host.row_idx)),
      col_idx(ctx, std::span<const index_t>(host.col_idx)),
      values(ctx, std::span<const real>(host.values)) {}

Coo DeviceCoo::to_host() const {
  Coo out(rows, cols);
  out.row_idx = row_idx.to_host();
  out.col_idx = col_idx.to_host();
  out.values = values.to_host();
  return out;
}

void device_csrmv(device::DeviceContext& ctx, const DeviceCsr& a, const real* x,
                  real* y, real alpha, real beta) {
  device_csrmv_mp(ctx, a, ConstVecView(x), VecView(y), alpha, beta, nullptr);
}

void device_csrmv_mp(device::DeviceContext& ctx, const DeviceCsr& a,
                     ConstVecView x, VecView y, real alpha, real beta,
                     const real* fused_scale) {
  const index_t* row_ptr = a.row_ptr.data();
  const index_t* col_idx = a.col_idx.data();
  const CsrValuesView w = a.values_view();
  const real* sc = fused_scale;
  const double nnz = static_cast<double>(a.nnz());
  device::launch(
      ctx, a.rows,
      [=](index_t r) {
        real acc = 0;
        for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
          const index_t c = col_idx[p];
          const real xv = sc != nullptr
                              ? sc[c] * x.load(static_cast<usize>(c))
                              : x.load(static_cast<usize>(c));
          acc += w[p] * xv;
        }
        const real t =
            alpha * acc +
            (beta == 0 ? 0 : beta * y.load(static_cast<usize>(r)));
        y.store(static_cast<usize>(r), sc != nullptr ? sc[r] * t : t);
      },
      csrmv_cost(sc != nullptr ? "spmv.fused_scale" : "spmv.csr", nnz,
                 static_cast<double>(a.rows), a.value_precision, x.prec,
                 y.prec, sc != nullptr));
}

std::shared_ptr<const MergePathPartition> CsrBalanceCache::get(
    const index_t* row_ptr, index_t row_begin, index_t row_end,
    index_t spans) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Entry& e : entries_) {
      if (e.row_begin == row_begin && e.row_end == row_end &&
          e.spans == spans) {
        return e.part;
      }
    }
  }
  // Build outside the lock (the search is read-only, so a racing duplicate
  // build is wasted work, not a hazard).
  auto part = std::make_shared<const MergePathPartition>(
      merge_path_partition(row_ptr, row_begin, row_end, spans));
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : entries_) {
    if (e.row_begin == row_begin && e.row_end == row_end &&
        e.spans == spans) {
      return e.part;
    }
  }
  entries_.push_back(Entry{row_begin, row_end, spans, part});
  return part;
}

namespace {

/// Shared body of the balanced csrmv variants.  Each span walks its merge
/// segment: rows it fully owns are written directly; the partial sums of
/// rows cut by a span boundary go to per-span carry slots (head = 2s,
/// tail = 2s + 1) that a sequential fixup kernel folds in span order —
/// same grouping every run, so the result is deterministic for a fixed
/// worker count.
void csrmv_balanced_impl(device::DeviceContext& ctx, const DeviceCsr& a,
                         ConstVecView x, VecView y, index_t row_begin,
                         index_t row_end, real alpha, real beta,
                         const real* fused_scale) {
  FASTSC_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= a.rows,
               "csrmv row range out of bounds");
  if (row_end == row_begin) return;
  const index_t* row_ptr = a.row_ptr.data();
  const index_t* col_idx = a.col_idx.data();
  const CsrValuesView values = a.values_view();
  const real* sc = fused_scale;

  const auto spans = static_cast<index_t>(ctx.pool().worker_count());
  const std::shared_ptr<const MergePathPartition> part =
      a.balance->get(row_ptr, row_begin, row_end, spans);
  obs::metrics().set_gauge("spmv.wave_max_nnz",
                           static_cast<double>(part->max_span_nnz));
  obs::metrics().set_gauge("spmv.wave_mean_nnz",
                           static_cast<double>(part->mean_span_nnz));
  obs::metrics().counter("spmv.balanced_waves").add(1);
  if (obs::trace_enabled()) {
    const double ts = obs::wall_now_us();
    obs::trace().counter("spmv.wave_max_nnz",
                         static_cast<double>(part->max_span_nnz), ts);
    obs::trace().counter("spmv.wave_mean_nnz",
                         static_cast<double>(part->mean_span_nnz), ts);
  }

  const index_t* span_row = part->span_row.data();
  const index_t* span_ent = part->span_ent.data();
  // Host-side carry scratch captured by the kernels, like device_cscmv's
  // partial buffers.
  std::vector<real> carry_val(static_cast<usize>(2 * spans), 0.0);
  std::vector<index_t> carry_row(static_cast<usize>(2 * spans), -1);
  real* cval = carry_val.data();
  index_t* crow = carry_row.data();

  const double nnz_range =
      static_cast<double>(part->span_ent.back() - part->span_ent.front());
  const double rows_range = static_cast<double>(row_end - row_begin);
  device::LaunchConfig wave_cfg =
      csrmv_cost(sc != nullptr ? "spmv.fused_scale" : "spmv.balanced",
                 nnz_range, rows_range, a.value_precision, x.prec, y.prec,
                 sc != nullptr);
  device::launch(ctx, spans, [=](index_t s) {
    crow[2 * s] = -1;
    crow[2 * s + 1] = -1;
    const index_t r0 = span_row[s];
    const index_t r1 = span_row[s + 1];
    const index_t e0 = span_ent[s];
    const index_t e1 = span_ent[s + 1];
    index_t e = e0;
    for (index_t r = r0; r < r1; ++r) {
      const index_t end = row_ptr[r + 1];
      real acc = 0;
      for (; e < end; ++e) {
        const index_t c = col_idx[e];
        const real xv = sc != nullptr ? sc[c] * x.load(static_cast<usize>(c))
                                      : x.load(static_cast<usize>(c));
        acc += values[e] * xv;
      }
      if (r == r0 && e0 > row_ptr[r0]) {
        // Head of this span but tail of the row: earlier spans hold the
        // rest, so stash the partial instead of writing.  Carries stay raw
        // fp64 partials — the fused epilogue is applied once, in the fixup.
        crow[2 * s] = r;
        cval[2 * s] = acc;
      } else {
        const real t =
            alpha * acc +
            (beta == 0 ? 0 : beta * y.load(static_cast<usize>(r)));
        y.store(static_cast<usize>(r), sc != nullptr ? sc[r] * t : t);
      }
    }
    if (e < e1) {
      // Leading entries of the boundary row r1; later spans finish it.
      real acc = 0;
      for (; e < e1; ++e) {
        const index_t c = col_idx[e];
        const real xv = sc != nullptr ? sc[c] * x.load(static_cast<usize>(c))
                                      : x.load(static_cast<usize>(c));
        acc += values[e] * xv;
      }
      crow[2 * s + 1] = r1;
      cval[2 * s + 1] = acc;
    }
  }, wave_cfg);

  // Sequential fixup: consecutive same-row carries (empty slots skipped)
  // are one boundary row split across spans; fold them in span order.
  const index_t slots = 2 * spans;
  const double slots_d = static_cast<double>(slots);
  device::launch(ctx, 1, [=](index_t) {
    index_t i = 0;
    while (i < slots) {
      if (crow[i] < 0) {
        ++i;
        continue;
      }
      const index_t r = crow[i];
      real tot = cval[i];
      ++i;
      while (i < slots && (crow[i] == r || crow[i] < 0)) {
        if (crow[i] == r) tot += cval[i];
        ++i;
      }
      const real t =
          alpha * tot + (beta == 0 ? 0 : beta * y.load(static_cast<usize>(r)));
      y.store(static_cast<usize>(r), sc != nullptr ? sc[r] * t : t);
    }
  }, device::tagged("spmv.balanced_fixup", 2.0 * slots_d,
                    slots_d * (sizeof(real) + sizeof(index_t)),
                    slots_d * static_cast<double>(sizeof(real))));
}

}  // namespace

void device_csrmv_balanced(device::DeviceContext& ctx, const DeviceCsr& a,
                           const real* x, real* y, real alpha, real beta) {
  csrmv_balanced_impl(ctx, a, ConstVecView(x), VecView(y), 0, a.rows, alpha,
                      beta, nullptr);
}

void device_csrmv_balanced_mp(device::DeviceContext& ctx, const DeviceCsr& a,
                              ConstVecView x, VecView y, real alpha, real beta,
                              const real* fused_scale) {
  csrmv_balanced_impl(ctx, a, x, y, 0, a.rows, alpha, beta, fused_scale);
}

void device_csrmv_range_balanced(device::DeviceContext& ctx,
                                 const DeviceCsr& a, const real* x, real* y,
                                 index_t row_begin, index_t row_end, real alpha,
                                 real beta) {
  csrmv_balanced_impl(ctx, a, ConstVecView(x), VecView(y), row_begin, row_end,
                      alpha, beta, nullptr);
}

void device_csrmm(device::DeviceContext& ctx, const DeviceCsr& a,
                  const real* x, real* y, index_t nvec, real alpha,
                  real beta) {
  FASTSC_CHECK(nvec >= 0, "csrmm vector count must be non-negative");
  if (nvec == 0) return;
  const index_t* row_ptr = a.row_ptr.data();
  const index_t* col_idx = a.col_idx.data();
  const CsrValuesView values = a.values_view();
  const index_t rows = a.rows;
  const index_t cols = a.cols;
  // One sweep of A serves all nvec vectors: for each row the entry list is
  // read once and re-dotted against every input row.  The per-(j, r)
  // accumulation order matches device_csrmv exactly, so Y's row j is
  // bitwise identical to csrmv on X's row j.
  const double nnz = static_cast<double>(a.nnz());
  const double bw = static_cast<double>(bytes_per_scalar(a.value_precision));
  device::LaunchConfig mm_cfg = device::tagged(
      "spmv.csrmm", 2.0 * nnz * nvec,
      nnz * (bw + sizeof(index_t)) +
          nnz * nvec * static_cast<double>(sizeof(real)),
      static_cast<double>(rows) * nvec * sizeof(real));
  mm_cfg.bytes_per_scalar =
      (nnz * bw + (nnz + rows) * nvec * sizeof(real)) /
      std::max(nnz + (nnz + rows) * nvec, 1.0);
  device::launch(
      ctx, rows,
      [=](index_t r) {
        for (index_t j = 0; j < nvec; ++j) {
          const real* xj = x + j * cols;
          real acc = 0;
          for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
            acc += values[p] * xj[col_idx[p]];
          }
          real* yj = y + j * rows;
          yj[r] = alpha * acc + (beta == 0 ? 0 : beta * yj[r]);
        }
      },
      mm_cfg);
}

void device_coo2csr(device::DeviceContext& ctx, const DeviceCoo& coo,
                    DeviceCsr& out) {
  out.rows = coo.rows;
  out.cols = coo.cols;
  out.value_precision = Precision::kFp64;
  out.values_f32 = device::DeviceBuffer<float>();
  out.values_b16 = device::DeviceBuffer<std::uint16_t>();
  const index_t nnz = coo.nnz();
  out.row_ptr = device::DeviceBuffer<index_t>(
      ctx, static_cast<usize>(coo.rows) + 1);
  out.col_idx = device::DeviceBuffer<index_t>(ctx, static_cast<usize>(nnz));
  out.values = device::DeviceBuffer<real>(ctx, static_cast<usize>(nnz));

  const index_t* rows_in = coo.row_idx.data();
  index_t* row_ptr = out.row_ptr.data();
  const index_t n_rows = coo.rows;

  // Each thread r finds the first entry with row >= r by binary search over
  // the sorted row-index array — the standard GPU coo2csr formulation.
  obs::AttrSiteScope attr_site("sparse.coo2csr");
  const double probes = std::ceil(std::log2(static_cast<double>(nnz) + 2.0));
  device::launch(
      ctx, n_rows + 1,
      [=](index_t r) {
        index_t lo = 0, hi = nnz;
        while (lo < hi) {
          const index_t mid = lo + (hi - lo) / 2;
          if (rows_in[mid] < r) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        row_ptr[r] = lo;
      },
      device::tagged("sparse.coo2csr", (n_rows + 1.0) * probes,
                     (n_rows + 1.0) * probes * sizeof(index_t),
                     (n_rows + 1.0) * sizeof(index_t)));

  device::transform(ctx, coo.col_idx.data(), out.col_idx.data(), nnz,
                    [](index_t c) { return c; });
  device::transform(ctx, coo.values.data(), out.values.data(), nnz,
                    [](real v) { return v; });
}

DeviceCsc::DeviceCsc(device::DeviceContext& ctx, const Csc& host)
    : rows(host.rows),
      cols(host.cols),
      col_ptr(ctx, std::span<const index_t>(host.col_ptr)),
      row_idx(ctx, std::span<const index_t>(host.row_idx)),
      values(ctx, std::span<const real>(host.values)) {}

Csc DeviceCsc::to_host() const {
  Csc out;
  out.rows = rows;
  out.cols = cols;
  out.col_ptr = col_ptr.to_host();
  out.row_idx = row_idx.to_host();
  out.values = values.to_host();
  return out;
}

DeviceBsr::DeviceBsr(device::DeviceContext& ctx, const Bsr& host)
    : rows(host.rows),
      cols(host.cols),
      block_size(host.block_size),
      block_rows(host.block_rows),
      block_cols(host.block_cols),
      block_row_ptr(ctx, std::span<const index_t>(host.block_row_ptr)),
      block_col_idx(ctx, std::span<const index_t>(host.block_col_idx)),
      values(ctx, std::span<const real>(host.values)) {}

Bsr DeviceBsr::to_host() const {
  Bsr out;
  out.rows = rows;
  out.cols = cols;
  out.block_size = block_size;
  out.block_rows = block_rows;
  out.block_cols = block_cols;
  out.block_row_ptr = block_row_ptr.to_host();
  out.block_col_idx = block_col_idx.to_host();
  out.values = values.to_host();
  return out;
}

void device_cscmv(device::DeviceContext& ctx, const DeviceCsc& a, const real* x,
                  real* y, real alpha, real beta) {
  const index_t rows = a.rows;
  const index_t cols = a.cols;
  // Scale/clear the output first.
  obs::AttrSiteScope attr_site("spmv.csc");
  if (beta == 0) {
    device::fill(ctx, y, rows, real{0});
  } else if (beta != 1) {
    device::launch(ctx, rows, [=](index_t i) { y[i] *= beta; },
                   device::tagged("spmv.csc", static_cast<double>(rows),
                                  rows * static_cast<double>(sizeof(real)),
                                  rows * static_cast<double>(sizeof(real))));
  }
  if (a.nnz() == 0 || alpha == 0) {
    return;
  }
  const index_t* col_ptr = a.col_ptr.data();
  const index_t* row_idx = a.row_idx.data();
  const real* values = a.values.data();

  // Column-parallel scatter: each worker accumulates into a private output
  // slice, then a row-parallel reduction folds the partials into y (the
  // deterministic stand-in for GPU atomics).
  WallTimer t;
  const double nnz = static_cast<double>(a.nnz());
  const obs::KernelCost scatter_cost{
      "spmv.csc", 2.0 * nnz,
      nnz * (2.0 * sizeof(real) + sizeof(index_t)) +
          (cols + 1.0) * sizeof(index_t),
      nnz * static_cast<double>(sizeof(real))};
  const auto workers = static_cast<index_t>(ctx.pool().worker_count());
  if (workers == 1) {
    for (index_t c = 0; c < cols; ++c) {
      const real s = alpha * x[c];
      if (s == 0) continue;
      for (index_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
        y[row_idx[p]] += s * values[p];
      }
    }
    ctx.record_kernel(t.seconds(), -1.0, scatter_cost);
    return;
  }
  std::vector<real> partials(
      static_cast<usize>(workers) * static_cast<usize>(rows), 0.0);
  const index_t chunk = (cols + workers - 1) / workers;
  std::function<void(usize)> job = [&](usize w) {
    const index_t lo = static_cast<index_t>(w) * chunk;
    const index_t hi = lo + chunk < cols ? lo + chunk : cols;
    real* part = partials.data() + static_cast<index_t>(w) * rows;
    for (index_t c = lo; c < hi; ++c) {
      const real s = alpha * x[c];
      if (s == 0) continue;
      for (index_t p = col_ptr[c]; p < col_ptr[c + 1]; ++p) {
        part[row_idx[p]] += s * values[p];
      }
    }
  };
  ctx.run_compute(job);
  ctx.record_kernel(t.seconds(), -1.0, scatter_cost);
  const double reduce_reads =
      static_cast<double>(workers) * rows * sizeof(real);
  device::launch(ctx, rows,
                 [&partials, y, workers, rows](index_t i) {
                   real acc = 0;
                   for (index_t w = 0; w < workers; ++w) {
                     acc += partials[w * rows + i];
                   }
                   y[i] += acc;
                 },
                 device::tagged("spmv.csc_reduce",
                                static_cast<double>(workers) * rows,
                                reduce_reads,
                                rows * static_cast<double>(sizeof(real))));
}

void device_bsrmv(device::DeviceContext& ctx, const DeviceBsr& a, const real* x,
                  real* y, real alpha, real beta) {
  const index_t b = a.block_size;
  const index_t* block_row_ptr = a.block_row_ptr.data();
  const index_t* block_col_idx = a.block_col_idx.data();
  const real* values = a.values.data();
  const index_t rows = a.rows;
  const index_t cols = a.cols;
  const double nblk = static_cast<double>(a.block_col_idx.size());
  const double blk2 = static_cast<double>(b) * b;
  device::LaunchConfig bsr_cfg = device::tagged(
      "spmv.bsr", 2.0 * nblk * blk2,
      nblk * (blk2 + static_cast<double>(b)) * sizeof(real) +
          nblk * sizeof(index_t) + (a.block_rows + 1.0) * sizeof(index_t),
      rows * static_cast<double>(sizeof(real)));
  device::launch(ctx, a.block_rows, [=](index_t br) {
    const index_t r_lo = br * b;
    const index_t r_hi = r_lo + b < rows ? r_lo + b : rows;
    for (index_t r = r_lo; r < r_hi; ++r) {
      real acc = 0;
      for (index_t s = block_row_ptr[br]; s < block_row_ptr[br + 1]; ++s) {
        const index_t c_lo = block_col_idx[s] * b;
        const index_t c_hi = c_lo + b < cols ? c_lo + b : cols;
        const real* brow = values + s * b * b + (r - r_lo) * b;
        for (index_t c = c_lo; c < c_hi; ++c) acc += brow[c - c_lo] * x[c];
      }
      y[r] = alpha * acc + (beta == 0 ? 0 : beta * y[r]);
    }
  }, bsr_cfg);
}

std::vector<Csr> split_csr_col_blocks(const Csr& a, index_t num_blocks,
                                      std::vector<index_t>& col_start) {
  index_t nb = num_blocks < 1 ? 1 : num_blocks;
  if (a.cols > 0 && nb > a.cols) nb = a.cols;
  col_start.assign(static_cast<usize>(nb) + 1, 0);
  for (index_t b = 0; b <= nb; ++b) {
    // Near-equal column ranges; the first (cols % nb) blocks get one extra.
    col_start[static_cast<usize>(b)] =
        (a.cols * b) / nb;
  }
  std::vector<Csr> out(static_cast<usize>(nb));
  for (index_t b = 0; b < nb; ++b) {
    const index_t c_lo = col_start[static_cast<usize>(b)];
    const index_t c_hi = col_start[static_cast<usize>(b) + 1];
    Csr& blk = out[static_cast<usize>(b)];
    blk.rows = a.rows;
    blk.cols = a.cols;
    blk.row_ptr.assign(static_cast<usize>(a.rows) + 1, 0);
    for (index_t r = 0; r < a.rows; ++r) {
      // Column indices are ascending within a row, so the block's entries
      // form one contiguous subrange found by binary search.
      const auto row_lo = a.col_idx.begin() + a.row_ptr[static_cast<usize>(r)];
      const auto row_hi =
          a.col_idx.begin() + a.row_ptr[static_cast<usize>(r) + 1];
      const auto lo = std::lower_bound(row_lo, row_hi, c_lo);
      const auto hi = std::lower_bound(lo, row_hi, c_hi);
      const auto p0 = static_cast<usize>(lo - a.col_idx.begin());
      const auto p1 = static_cast<usize>(hi - a.col_idx.begin());
      blk.col_idx.insert(blk.col_idx.end(), a.col_idx.begin() + p0,
                         a.col_idx.begin() + p1);
      blk.values.insert(blk.values.end(), a.values.begin() + p0,
                        a.values.begin() + p1);
      blk.row_ptr[static_cast<usize>(r) + 1] =
          static_cast<index_t>(blk.col_idx.size());
    }
  }
  return out;
}

DeviceCsrColBlocks::DeviceCsrColBlocks(device::DeviceContext& ctx,
                                       const Csr& host, index_t num_blocks)
    : rows(host.rows), cols(host.cols) {
  std::vector<Csr> parts = split_csr_col_blocks(host, num_blocks, col_start);
  blocks.reserve(parts.size());
  for (const Csr& p : parts) blocks.emplace_back(ctx, p);
}

DeviceCsrColBlocks split_device_csr_col_blocks(device::DeviceContext& ctx,
                                               const DeviceCsr& a,
                                               index_t num_blocks) {
  // The pipelined column-block path is fp64-only (the precision ladder
  // forces the synchronous staging path for narrower rungs).
  FASTSC_CHECK(a.value_precision == Precision::kFp64,
               "split_device_csr_col_blocks requires fp64 values");
  index_t nb = num_blocks < 1 ? 1 : num_blocks;
  if (a.cols > 0 && nb > a.cols) nb = a.cols;
  DeviceCsrColBlocks out;
  out.rows = a.rows;
  out.cols = a.cols;
  out.col_start.assign(static_cast<usize>(nb) + 1, 0);
  for (index_t b = 0; b <= nb; ++b) {
    out.col_start[static_cast<usize>(b)] = (a.cols * b) / nb;
  }
  out.blocks.resize(static_cast<usize>(nb));

  obs::AttrSiteScope attr_site("sparse.col_blocks");
  const index_t n = a.rows;
  const index_t* src_row_ptr = a.row_ptr.data();
  const index_t* src_col_idx = a.col_idx.data();
  const real* src_values = a.values.data();
  // Per-row first/last entry positions of the current block's column range.
  device::DeviceBuffer<index_t> lo(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> hi(ctx, static_cast<usize>(n));
  device::DeviceBuffer<index_t> total(ctx, 1);
  index_t* lop = lo.data();
  index_t* hip = hi.data();
  index_t* totalp = total.data();

  for (index_t b = 0; b < nb; ++b) {
    const index_t c_lo = out.col_start[static_cast<usize>(b)];
    const index_t c_hi = out.col_start[static_cast<usize>(b) + 1];
    DeviceCsr& blk = out.blocks[static_cast<usize>(b)];
    blk.rows = a.rows;
    blk.cols = a.cols;
    blk.row_ptr = device::DeviceBuffer<index_t>(ctx, static_cast<usize>(n) + 1);
    index_t* blk_row_ptr = blk.row_ptr.data();

    // Columns are ascending within a row, so each row contributes one
    // contiguous entry range per block, found by binary search.
    device::launch(ctx, n, [=](index_t r) {
      const index_t* row_lo = src_col_idx + src_row_ptr[r];
      const index_t* row_hi = src_col_idx + src_row_ptr[r + 1];
      const index_t* first = std::lower_bound(row_lo, row_hi, c_lo);
      const index_t* last = std::lower_bound(first, row_hi, c_hi);
      lop[r] = static_cast<index_t>(first - src_col_idx);
      hip[r] = static_cast<index_t>(last - src_col_idx);
    }, device::tagged("sparse.col_blocks"));
    // Exclusive scan of per-row counts into the block's row_ptr (a real
    // implementation would use a parallel scan; the simulated device runs
    // it as one sequential kernel).
    device::launch(ctx, 1, [=](index_t) {
      index_t acc = 0;
      blk_row_ptr[0] = 0;
      for (index_t r = 0; r < n; ++r) {
        acc += hip[r] - lop[r];
        blk_row_ptr[r + 1] = acc;
      }
      totalp[0] = acc;
    }, device::tagged("sparse.col_blocks", static_cast<double>(n),
                      2.0 * n * sizeof(index_t),
                      (n + 2.0) * sizeof(index_t)));
    // The only PCIe traffic: one nnz count to size the block's arrays.
    index_t blk_nnz = 0;
    total.copy_to_host(std::span<index_t>(&blk_nnz, 1));
    blk.col_idx =
        device::DeviceBuffer<index_t>(ctx, static_cast<usize>(blk_nnz));
    blk.values = device::DeviceBuffer<real>(ctx, static_cast<usize>(blk_nnz));
    index_t* blk_col_idx = blk.col_idx.data();
    real* blk_values = blk.values.data();
    device::launch(ctx, n, [=](index_t r) {
      index_t dst = blk_row_ptr[r];
      for (index_t p = lop[r]; p < hip[r]; ++p, ++dst) {
        blk_col_idx[dst] = src_col_idx[p];
        blk_values[dst] = src_values[p];
      }
    }, device::tagged(
           "sparse.col_blocks", static_cast<double>(blk_nnz),
           blk_nnz * (static_cast<double>(sizeof(real)) + sizeof(index_t)),
           blk_nnz * (static_cast<double>(sizeof(real)) + sizeof(index_t))));
  }
  return out;
}

void device_csrmv_range(device::DeviceContext& ctx, const DeviceCsr& a,
                        const real* x, real* y, index_t row_begin,
                        index_t row_end, real alpha, real beta) {
  FASTSC_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= a.rows,
               "csrmv row range out of bounds");
  const index_t* row_ptr = a.row_ptr.data();
  const index_t* col_idx = a.col_idx.data();
  const CsrValuesView values = a.values_view();
  // Entry count of the row slice is device-resident; prorate total nnz by
  // the row fraction for the cost model rather than paying a transfer.
  const double frac = a.rows > 0
                          ? static_cast<double>(row_end - row_begin) / a.rows
                          : 0.0;
  const double nnz_est = static_cast<double>(a.nnz()) * frac;
  device::launch(
      ctx, row_end - row_begin,
      [=](index_t i) {
        const index_t r = row_begin + i;
        real acc = 0;
        for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
          acc += values[p] * x[col_idx[p]];
        }
        y[r] = alpha * acc + (beta == 0 ? 0 : beta * y[r]);
      },
      device::tagged("spmv.csr_range", 2.0 * nnz_est,
                     nnz_est * (2.0 * sizeof(real) + sizeof(index_t)),
                     (row_end - row_begin) *
                         static_cast<double>(sizeof(real))));
}

void device_sort_coo(device::DeviceContext& ctx, DeviceCoo& coo) {
  const index_t nnz = coo.nnz();
  if (nnz <= 1) return;
  obs::AttrSiteScope attr_site("sparse.sort_coo");
  device::DeviceBuffer<index_t> keys(ctx, static_cast<usize>(nnz));
  device::DeviceBuffer<index_t> perm(ctx, static_cast<usize>(nnz));
  const index_t cols = coo.cols;
  const index_t* rows_in = coo.row_idx.data();
  const index_t* cols_in = coo.col_idx.data();
  index_t* keyp = keys.data();
  device::launch(
      ctx, nnz,
      [=](index_t e) { keyp[e] = rows_in[e] * cols + cols_in[e]; },
      device::tagged("sparse.sort_coo", 2.0 * nnz, 2.0 * nnz * sizeof(index_t),
                     static_cast<double>(nnz) * sizeof(index_t)));
  device::sequence(ctx, perm.data(), nnz, index_t{0});
  device::sort_by_key(ctx, keys.data(), perm.data(), nnz);

  device::DeviceBuffer<index_t> rows_out(ctx, static_cast<usize>(nnz));
  device::DeviceBuffer<index_t> cols_out(ctx, static_cast<usize>(nnz));
  device::DeviceBuffer<real> vals_out(ctx, static_cast<usize>(nnz));
  device::gather(ctx, perm.data(), coo.row_idx.data(), rows_out.data(), nnz);
  device::gather(ctx, perm.data(), coo.col_idx.data(), cols_out.data(), nnz);
  device::gather(ctx, perm.data(), coo.values.data(), vals_out.data(), nnz);
  coo.row_idx = std::move(rows_out);
  coo.col_idx = std::move(cols_out);
  coo.values = std::move(vals_out);
}

}  // namespace fastsc::sparse
