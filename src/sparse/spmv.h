// Sparse matrix-vector multiplication, host and device.
//
// device_csrmv is the cusparseDcsrmv stand-in driving the paper's Algorithm
// 3: the eigensolver's reverse-communication loop hands a vector to the
// device, the device multiplies by D^-1 W in CSR, and the result goes back.
// Host variants cover all four formats for the baselines and the format-
// comparison bench.
#pragma once

#include <memory>
#include <mutex>

#include "common/precision.h"
#include "device/device.h"
#include "sparse/balance.h"
#include "sparse/bsr.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/csr.h"

namespace fastsc::sparse {

// ---- host SpMV: y = alpha * A @ x + beta * y ------------------------------

void csr_mv(const Csr& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void coo_mv(const Coo& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void csc_mv(const Csc& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void bsr_mv(const Bsr& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

// ---- device-resident CSR and SpMV -----------------------------------------

/// Memoized merge-path partitions of one DeviceCsr, keyed on
/// (row_begin, row_end, spans).  The balanced SpMV looks its partition up
/// here so the O(spans log nnz) search runs once per (matrix, row range,
/// worker count), not once per wave; the pipelined eigensolver hits the
/// same ranges every iteration.  Guarded by a mutex because waves of
/// different row tiles may race on first use.
class CsrBalanceCache {
 public:
  /// Return the cached partition, building it on a miss.
  [[nodiscard]] std::shared_ptr<const MergePathPartition> get(
      const index_t* row_ptr, index_t row_begin, index_t row_end,
      index_t spans);

 private:
  struct Entry {
    index_t row_begin;
    index_t row_end;
    index_t spans;
    std::shared_ptr<const MergePathPartition> part;
  };
  std::mutex mu_;
  std::vector<Entry> entries_;
};

/// Widening accessor over a DeviceCsr's value array at whatever storage
/// precision it currently holds.  The fp64 branch is a plain array read, so
/// kernels written against the view stay bitwise identical to the
/// pre-precision code on fp64 matrices.
struct CsrValuesView {
  const real* f64 = nullptr;
  const float* f32 = nullptr;
  const std::uint16_t* b16 = nullptr;

  [[nodiscard]] real operator[](index_t p) const noexcept {
    if (f64 != nullptr) return f64[p];
    if (f32 != nullptr) return static_cast<real>(f32[p]);
    return static_cast<real>(float_from_bf16(b16[p]));
  }
};

/// CSR matrix living in (simulated) device memory.  The structure arrays
/// are always index_t; the value array is fp64 on upload and may be demoted
/// in place to fp32/bf16 storage (see demote_csr_values) — kernels then
/// read it through values_view(), widening each entry to fp64 before
/// accumulating.
struct DeviceCsr {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> row_ptr;
  device::DeviceBuffer<index_t> col_idx;
  device::DeviceBuffer<real> values;  ///< valid iff value_precision == kFp64
  device::DeviceBuffer<float> values_f32;
  device::DeviceBuffer<std::uint16_t> values_b16;
  Precision value_precision = Precision::kFp64;
  /// Lazily-built merge-path partitions (shared so DeviceCsr stays movable).
  std::shared_ptr<CsrBalanceCache> balance =
      std::make_shared<CsrBalanceCache>();

  DeviceCsr() = default;

  /// Upload a host CSR (three H2D transfers, metered).
  DeviceCsr(device::DeviceContext& ctx, const Csr& host);

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(col_idx.size());
  }

  [[nodiscard]] CsrValuesView values_view() const noexcept {
    CsrValuesView v;
    switch (value_precision) {
      case Precision::kFp64: v.f64 = values.data(); break;
      case Precision::kFp32: v.f32 = values_f32.data(); break;
      case Precision::kBf16: v.b16 = values_b16.data(); break;
    }
    return v;
  }

  /// Download back to the host (three D2H transfers, metered); values are
  /// widened to fp64 from whatever storage precision the matrix holds.
  [[nodiscard]] Csr to_host() const;
};

/// Convert a device CSR's value array to `p` storage in place (one device
/// pass, site "precision.demote"), releasing the fp64 copy.  Only fp64 ->
/// {fp32, bf16} conversions are supported; demoting to the current
/// precision is a no-op.
void demote_csr_values(device::DeviceContext& ctx, DeviceCsr& a, Precision p);

/// COO matrix living in device memory (graph construction output).
struct DeviceCoo {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> row_idx;
  device::DeviceBuffer<index_t> col_idx;
  device::DeviceBuffer<real> values;

  DeviceCoo() = default;
  DeviceCoo(device::DeviceContext& ctx, const Coo& host);

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  [[nodiscard]] Coo to_host() const;
};

/// y = alpha * A @ x + beta * y with device pointers (cusparseDcsrmv).
/// One logical GPU thread per row.
void device_csrmv(device::DeviceContext& ctx, const DeviceCsr& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

/// Mixed-precision / fused csrmv.  Matrix values are read through the
/// CSR's storage precision, x and y through their view widths, and every
/// product accumulates in fp64.  With `fused_scale` == s non-null the
/// kernel computes the symmetric similarity transform in one pass
/// (site "spmv.fused_scale"):
///
///   y[r] = s[r] * (alpha * sum_p w[p] * (s[col[p]] * x[col[p]]) + beta*y[r])
///
/// which for beta == 0 is bitwise identical to the three-launch
/// z = s (.) x; t = W z; y = s (.) t sequence in fp64 — the fusion removes
/// the two n-length passes, not any rounding.  (The beta != 0 form scales
/// the beta*y term too; the eigensolver only uses beta == 0.)  The s
/// vector is modeled as cache-resident: its DRAM traffic is counted once
/// (rows * 8 bytes), not per entry.
void device_csrmv_mp(device::DeviceContext& ctx, const DeviceCsr& a,
                     ConstVecView x, VecView y, real alpha = 1.0,
                     real beta = 0.0, const real* fused_scale = nullptr);

/// nnz-balanced csrmv: the merge-path partition (cached on `a`) gives every
/// worker a near-equal share of rows + entries, so hub rows no longer
/// serialize the wave.  Rows cut by a span boundary are reduced by a
/// deterministic carry-fixup pass, so the result is reproducible for a
/// fixed worker count (and matches device_csrmv to rounding).  Publishes
/// the spmv.wave_max_nnz / spmv.wave_mean_nnz balance gauges.
void device_csrmv_balanced(device::DeviceContext& ctx, const DeviceCsr& a,
                           const real* x, real* y, real alpha = 1.0,
                           real beta = 0.0);

/// Mixed-precision / fused balanced csrmv (see device_csrmv_mp for the
/// fused semantics).  The D^{-1/2} epilogue is applied exactly once per
/// row: complete rows inside a span apply it in the wave, boundary rows
/// carry raw fp64 partials and the fixup applies it after folding.
void device_csrmv_balanced_mp(device::DeviceContext& ctx, const DeviceCsr& a,
                              ConstVecView x, VecView y, real alpha = 1.0,
                              real beta = 0.0,
                              const real* fused_scale = nullptr);

/// Y = alpha * A @ X + beta * Y for `nvec` packed vectors: X is row-major
/// nvec x cols (each row one input vector), Y is nvec x rows.  One sweep of
/// the matrix serves the whole block (cusparseDcsrmm with the dense operand
/// transposed), amortizing the A read that dominates a single csrmv.  Row j
/// of Y is bitwise identical to device_csrmv(a, X row j) — the per-row
/// accumulation order is the same.
void device_csrmm(device::DeviceContext& ctx, const DeviceCsr& a,
                  const real* x, real* y, index_t nvec, real alpha = 1.0,
                  real beta = 0.0);

/// cusparseXcoo2csr: compress sorted device COO row indices into row_ptr.
/// Requires row_idx sorted ascending; col order within a row is preserved.
void device_coo2csr(device::DeviceContext& ctx, const DeviceCoo& coo,
                    DeviceCsr& out);

/// Sort device COO entries by (row, col) in place (thrust::sort_by_key
/// equivalent; preparation for device_coo2csr).
void device_sort_coo(device::DeviceContext& ctx, DeviceCoo& coo);

/// CSC matrix living in device memory.
struct DeviceCsc {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> col_ptr;
  device::DeviceBuffer<index_t> row_idx;
  device::DeviceBuffer<real> values;

  DeviceCsc() = default;
  DeviceCsc(device::DeviceContext& ctx, const Csc& host);
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }
  [[nodiscard]] Csc to_host() const;
};

/// BSR matrix living in device memory.
struct DeviceBsr {
  index_t rows = 0;
  index_t cols = 0;
  index_t block_size = 1;
  index_t block_rows = 0;
  index_t block_cols = 0;
  device::DeviceBuffer<index_t> block_row_ptr;
  device::DeviceBuffer<index_t> block_col_idx;
  device::DeviceBuffer<real> values;

  DeviceBsr() = default;
  DeviceBsr(device::DeviceContext& ctx, const Bsr& host);
  [[nodiscard]] index_t block_count() const noexcept {
    return static_cast<index_t>(block_col_idx.size());
  }
  [[nodiscard]] Bsr to_host() const;
};

/// y = alpha * A @ x + beta * y for device CSC.  Column-parallel scatter
/// with per-worker partial outputs reduced at the end (the CPU-simulated
/// equivalent of cuSPARSE's atomics-based cscmv).
void device_cscmv(device::DeviceContext& ctx, const DeviceCsc& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

/// y = alpha * A @ x + beta * y for device BSR; one logical thread per
/// block row (cusparseDbsrmv).
void device_bsrmv(device::DeviceContext& ctx, const DeviceBsr& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

// ---- column-blocked CSR for the overlapped eigensolver pipeline -----------

/// Partition of a CSR matrix into contiguous column blocks: block b holds
/// exactly the entries whose column lies in [col_start[b], col_start[b+1]),
/// with *absolute* column indices preserved.  The overlapped RCI pipeline
/// computes y = A x as an ordered accumulation of partial products
/// y += A_b x, so block b's kernel only needs x's b-th tile to be
/// device-resident — the H2D staging of tile b+1 runs on the transfer
/// stream while block b multiplies on the compute stream.  Because the
/// blocks partition each row's entries in ascending column order, the
/// per-row accumulation order matches plain csrmv up to the partial-sum
/// grouping.
struct DeviceCsrColBlocks {
  index_t rows = 0;
  index_t cols = 0;
  std::vector<index_t> col_start;  ///< size block_count() + 1
  std::vector<DeviceCsr> blocks;

  DeviceCsrColBlocks() = default;

  /// Split `host` into `num_blocks` near-equal column ranges and upload
  /// each block (3 metered H2D transfers per block).  num_blocks is clamped
  /// to [1, cols].
  DeviceCsrColBlocks(device::DeviceContext& ctx, const Csr& host,
                     index_t num_blocks);

  [[nodiscard]] usize block_count() const noexcept { return blocks.size(); }
  [[nodiscard]] index_t nnz() const noexcept {
    index_t total = 0;
    for (const DeviceCsr& b : blocks) total += b.nnz();
    return total;
  }
};

/// Host-side column split used by the device constructor (exposed for
/// tests): returns one CSR per block and fills `col_start`.
[[nodiscard]] std::vector<Csr> split_csr_col_blocks(
    const Csr& a, index_t num_blocks, std::vector<index_t>& col_start);

/// Repartition a device-resident CSR into column blocks without moving the
/// matrix over the link: per-row range search, prefix-sum, and compaction
/// run as kernels on the device copy (cusparse-style format conversion),
/// and only one nnz count per block crosses PCIe to size the allocations.
/// Use this instead of `DeviceCsrColBlocks(ctx, a.to_host(), nb)` when the
/// matrix is already on the device.
[[nodiscard]] DeviceCsrColBlocks split_device_csr_col_blocks(
    device::DeviceContext& ctx, const DeviceCsr& a, index_t num_blocks);

/// Partial csrmv over rows [row_begin, row_end):
///   y[r] = alpha * (A x)[r] + beta * y[r]
/// The building block of the tiled/pipelined SpMV; call with a column
/// block's CSR and beta=1 to accumulate partial products.
void device_csrmv_range(device::DeviceContext& ctx, const DeviceCsr& a,
                        const real* x, real* y, index_t row_begin,
                        index_t row_end, real alpha = 1.0, real beta = 0.0);

/// nnz-balanced device_csrmv_range (see device_csrmv_balanced).  The
/// pipelined eigensolver's column blocks and row tiles hit stable ranges,
/// so their partitions are built once and cached on the block.
void device_csrmv_range_balanced(device::DeviceContext& ctx,
                                 const DeviceCsr& a, const real* x, real* y,
                                 index_t row_begin, index_t row_end,
                                 real alpha = 1.0, real beta = 0.0);

}  // namespace fastsc::sparse
