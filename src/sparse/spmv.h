// Sparse matrix-vector multiplication, host and device.
//
// device_csrmv is the cusparseDcsrmv stand-in driving the paper's Algorithm
// 3: the eigensolver's reverse-communication loop hands a vector to the
// device, the device multiplies by D^-1 W in CSR, and the result goes back.
// Host variants cover all four formats for the baselines and the format-
// comparison bench.
#pragma once

#include "device/device.h"
#include "sparse/bsr.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/csr.h"

namespace fastsc::sparse {

// ---- host SpMV: y = alpha * A @ x + beta * y ------------------------------

void csr_mv(const Csr& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void coo_mv(const Coo& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void csc_mv(const Csc& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

void bsr_mv(const Bsr& a, const real* x, real* y, real alpha = 1.0,
            real beta = 0.0);

// ---- device-resident CSR and SpMV -----------------------------------------

/// CSR matrix living in (simulated) device memory.
struct DeviceCsr {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> row_ptr;
  device::DeviceBuffer<index_t> col_idx;
  device::DeviceBuffer<real> values;

  DeviceCsr() = default;

  /// Upload a host CSR (three H2D transfers, metered).
  DeviceCsr(device::DeviceContext& ctx, const Csr& host);

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  /// Download back to the host (three D2H transfers, metered).
  [[nodiscard]] Csr to_host() const;
};

/// COO matrix living in device memory (graph construction output).
struct DeviceCoo {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> row_idx;
  device::DeviceBuffer<index_t> col_idx;
  device::DeviceBuffer<real> values;

  DeviceCoo() = default;
  DeviceCoo(device::DeviceContext& ctx, const Coo& host);

  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }

  [[nodiscard]] Coo to_host() const;
};

/// y = alpha * A @ x + beta * y with device pointers (cusparseDcsrmv).
/// One logical GPU thread per row.
void device_csrmv(device::DeviceContext& ctx, const DeviceCsr& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

/// cusparseXcoo2csr: compress sorted device COO row indices into row_ptr.
/// Requires row_idx sorted ascending; col order within a row is preserved.
void device_coo2csr(device::DeviceContext& ctx, const DeviceCoo& coo,
                    DeviceCsr& out);

/// Sort device COO entries by (row, col) in place (thrust::sort_by_key
/// equivalent; preparation for device_coo2csr).
void device_sort_coo(device::DeviceContext& ctx, DeviceCoo& coo);

/// CSC matrix living in device memory.
struct DeviceCsc {
  index_t rows = 0;
  index_t cols = 0;
  device::DeviceBuffer<index_t> col_ptr;
  device::DeviceBuffer<index_t> row_idx;
  device::DeviceBuffer<real> values;

  DeviceCsc() = default;
  DeviceCsc(device::DeviceContext& ctx, const Csc& host);
  [[nodiscard]] index_t nnz() const noexcept {
    return static_cast<index_t>(values.size());
  }
  [[nodiscard]] Csc to_host() const;
};

/// BSR matrix living in device memory.
struct DeviceBsr {
  index_t rows = 0;
  index_t cols = 0;
  index_t block_size = 1;
  index_t block_rows = 0;
  index_t block_cols = 0;
  device::DeviceBuffer<index_t> block_row_ptr;
  device::DeviceBuffer<index_t> block_col_idx;
  device::DeviceBuffer<real> values;

  DeviceBsr() = default;
  DeviceBsr(device::DeviceContext& ctx, const Bsr& host);
  [[nodiscard]] index_t block_count() const noexcept {
    return static_cast<index_t>(block_col_idx.size());
  }
  [[nodiscard]] Bsr to_host() const;
};

/// y = alpha * A @ x + beta * y for device CSC.  Column-parallel scatter
/// with per-worker partial outputs reduced at the end (the CPU-simulated
/// equivalent of cuSPARSE's atomics-based cscmv).
void device_cscmv(device::DeviceContext& ctx, const DeviceCsc& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

/// y = alpha * A @ x + beta * y for device BSR; one logical thread per
/// block row (cusparseDbsrmv).
void device_bsrmv(device::DeviceContext& ctx, const DeviceBsr& a, const real* x,
                  real* y, real alpha = 1.0, real beta = 0.0);

}  // namespace fastsc::sparse
