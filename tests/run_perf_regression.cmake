# Perf regression gate, run as a CTest via `cmake -P`:
#   1. re-run bench_spmv_balance, bench_service, and bench_scaling_devices
#      with the exact pinned flags the committed baselines in
#      bench/baselines/ were captured with,
#   2. judge each fresh metrics snapshot against its baseline with
#      tools/check_bench_regression.py under the per-metric tolerances in
#      tools/bench_tolerances.json — all suites must pass,
#   3. self-test the gate: re-judge the fresh spmv snapshot with
#      --degrade spmv.wave_max_nnz=2.0 and require that the checker FAILS
#      (a gate that cannot fail protects nothing).
#
# Expected -D definitions: SPMV_BENCH (bench_spmv_balance), SERVICE_BENCH
# (bench_service), SCALING_BENCH (bench_scaling_devices), PRECISION_BENCH
# (bench_ablation_precision), PYTHON (python3), CHECKER
# (check_bench_regression.py), TOLERANCES (bench_tolerances.json),
# BASELINES (bench/baselines dir), WORKDIR (scratch directory).

foreach(var SPMV_BENCH SERVICE_BENCH SCALING_BENCH PRECISION_BENCH PYTHON
            CHECKER TOLERANCES BASELINES WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_perf_regression.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(spmv_fresh "${WORKDIR}/fresh_spmv_balance.json")
set(service_fresh "${WORKDIR}/fresh_service.json")
set(scaling_fresh "${WORKDIR}/fresh_scaling_devices.json")
set(precision_fresh "${WORKDIR}/fresh_precision.json")

# Flags here MUST match the "pinned flags" comment in the tolerances file;
# the gated metrics are deterministic only for these exact inputs.
execute_process(
  COMMAND "${SPMV_BENCH}" --n=4000 --reps=5 --workers=8
          --metrics-out=${spmv_fresh}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_spmv_balance failed (rc=${rc})\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${SERVICE_BENCH}" --jobs=12 --scale=0.5 --service-workers=2
          --workers=8 --metrics-out=${service_fresh}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_service failed (rc=${rc})\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${SCALING_BENCH}" --n=8192 --k=16 --max-devices=4
          --metrics-out=${scaling_fresh}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "bench_scaling_devices failed (rc=${rc})\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${PRECISION_BENCH}" --n=6000 --devices=4 --workers=8
          --metrics-out=${precision_fresh}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "bench_ablation_precision failed (rc=${rc})\n${out}\n${err}")
endif()

foreach(suite_pair
        "spmv_balance|${spmv_fresh}|BENCH_spmv_balance.json"
        "service|${service_fresh}|BENCH_service.json"
        "scaling_devices|${scaling_fresh}|BENCH_scaling_devices.json"
        "precision|${precision_fresh}|BENCH_precision.json")
  string(REPLACE "|" ";" parts "${suite_pair}")
  list(GET parts 0 suite)
  list(GET parts 1 fresh)
  list(GET parts 2 baseline)
  execute_process(
    COMMAND "${PYTHON}" "${CHECKER}" --suite ${suite}
            --baseline "${BASELINES}/${baseline}" --fresh "${fresh}"
            --tolerances "${TOLERANCES}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  message(STATUS "${out}${err}")
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "suite '${suite}' regressed (rc=${rc})")
  endif()
endforeach()

# Gate self-test: a 2x-degraded balance gauge must fail the lower_better
# tolerance (rel_tol 0.25).
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" --suite spmv_balance
          --baseline "${BASELINES}/BENCH_spmv_balance.json"
          --fresh "${spmv_fresh}" --tolerances "${TOLERANCES}"
          --degrade spmv.wave_max_nnz=2.0
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
message(STATUS "${out}${err}")
if(rc EQUAL 0)
  message(FATAL_ERROR "gate self-test failed: a 2x-degraded "
          "spmv.wave_max_nnz passed the regression check")
endif()
message(STATUS "perf regression gate OK: both suites within tolerance and "
        "the degraded self-test fails as required")
