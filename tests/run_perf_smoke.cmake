# Performance smoke test, run as a CTest via `cmake -P`:
#   1. run bench_spmv_balance at tiny scale (power-law graph, 8 workers)
#      with --trace-out/--metrics-out/--report-out,
#   2. validate the trace with tools/check_trace.py, requiring the
#      spmv.wave_max_nnz balance counter series, and asserting from the
#      metrics snapshot that the merge-path split beats the row-chunked
#      split on modeled worst-wave work by at least 2x:
#      spmv.rowchunk_wave_max_nnz / spmv.wave_max_nnz >= 2.
#
# Expected -D definitions: BENCH (bench_spmv_balance executable), PYTHON
# (python3), CHECKER (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var BENCH PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_perf_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")
set(report_json "${WORKDIR}/report.json")

execute_process(
  COMMAND "${BENCH}"
          --n=4000 --reps=5 --workers=8
          --trace-out=${trace_json}
          --metrics-out=${metrics_json}
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench failed (rc=${bench_rc})\nstdout:\n${bench_out}\n"
          "stderr:\n${bench_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}" "${report_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}"
          --expect-counter spmv.wave_max_nnz
          --expect-gauge-ratio "spmv.rowchunk_wave_max_nnz/spmv.wave_max_nnz>=2"
          --report "${report_json}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()
