# Mixed-precision ladder smoke test, run as a CTest via `cmake -P`:
#   1. run bench_ablation_precision on the fp64 + fp32 rungs with the same
#      pinned flags the committed baseline was captured with
#      (--trace-out/--metrics-out/--report-out),
#   2. validate the trace and report with tools/check_trace.py and assert
#      the ladder's acceptance gauges from the metrics snapshot alone:
#        - the fp32 rung is >= 1.4x faster per matvec on the modeled
#          SpMV-dominated stage,
#        - eigenpair agreement with fp64 is <= 1e-6,
#        - ARI against the fp64 labels is exactly 1 on every dataset,
#        - sharded labels are byte-identical to single-device at every rung,
#        - the fp32 SpMV stage moves at most 0.55x the width-equivalent
#          bytes of the fp64 baseline.
#
# Expected -D definitions: BENCH (bench_ablation_precision executable),
# PYTHON (python3), CHECKER (tools/check_trace.py), WORKDIR (scratch
# directory).

foreach(var BENCH PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_precision_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")
set(report_json "${WORKDIR}/report.json")

execute_process(
  COMMAND "${BENCH}"
          --n=6000 --devices=4 --workers=8 --precision=fp32
          --trace-out=${trace_json}
          --metrics-out=${metrics_json}
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench failed (rc=${bench_rc})\nstdout:\n${bench_out}\n"
          "stderr:\n${bench_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}" "${report_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}"
          --expect-gauge "precision.fp32.spmv_speedup>=1.4"
          --expect-gauge "precision.fp32.max_eig_err<=1e-6"
          --expect-gauge "precision.fp32.min_ari>=1"
          --expect-gauge "precision.fp32.sharded_labels_match>=1"
          --expect-bytes-ratio
          "precision.fp32.spmv_stage_bytes/precision.fp64.spmv_stage_bytes<=0.55"
          --report "${report_json}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()
