# Multi-device scaling smoke test, run as a CTest via `cmake -P`:
#   1. run bench_scaling_devices on DBLP-like and power-law graphs at
#      n=32768 with the deterministic kernel cost model, writing
#      --trace-out/--metrics-out/--report-out,
#   2. validate the artifacts with tools/check_trace.py: per-device trace
#      track discipline (device i owns link tid 2i+1 / compute tid 2i+2),
#      the d2d.bytes counter series, the group-merged attribution section's
#      exact-sum invariants, and the modeled speedup gates — the 4-device
#      run must beat the single-device run by >= 1.8x on both datasets
#      (measured ~2.4x dblp / ~2.2x powerlaw at this scale, so the gate has
#      honest margin without being noise-sensitive).
#
# Expected -D definitions: BENCH (bench_scaling_devices executable), PYTHON
# (python3), CHECKER (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var BENCH PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_scaling_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")
set(report_json "${WORKDIR}/report.json")

execute_process(
  COMMAND "${BENCH}"
          --n=32768 --k=16 --max-devices=4
          --trace-out=${trace_json}
          --metrics-out=${metrics_json}
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench failed (rc=${bench_rc})\nstdout:\n${bench_out}\n"
          "stderr:\n${bench_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}" "${report_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}"
          --expect-counter d2d.bytes
          --expect-counter d2d.transfers
          --expect-gauge "scaling.speedup_2dev>=1.4"
          --expect-gauge "scaling.speedup_4dev>=1.8"
          --expect-gauge "scaling.powerlaw.speedup_4dev>=1.8"
          --report "${report_json}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()
