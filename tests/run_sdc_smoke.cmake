# SDC chaos-soak smoke, run as a CTest via `cmake -P`:
#   1. replay examples/service_trace.txt through `fastsc_serve --chaos`:
#      the trace runs once fault-free as a label oracle, then again under a
#      seeded bitflip plan hitting the CSR values, staged basis columns,
#      device buffers, and cache entries.  fastsc_serve itself returns
#      rc=1 unless every completed chaos job's labels match the oracle
#      (ARI == 1.0), so rc=0 *is* the label-oracle acceptance.
#   2. validate the artifacts with tools/check_trace.py:
#        - sdc.* counters monotone, with sdc.detected>=1 (the storm was
#          actually detected, not silently absorbed),
#        - checksum-overhead gauge sdc.overhead_ratio <= 1.10 (the ABFT +
#          CRC defense costs at most 10% of the clean pass's modeled flops),
#        - zero chaos label mismatches, again from artifacts alone.
#
# Expected -D definitions: SERVE (fastsc_serve), TRACE
# (examples/service_trace.txt), PYTHON (python3), CHECKER
# (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var SERVE TRACE PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_sdc_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")

# Same shape as service_smoke (--job-quota-mb=4 admits everything but the
# oversized dblp_big line; --ncv=16 keeps solves cheap); --chaos-seed is
# pinned so the fault storm — and therefore this gate — is deterministic,
# and --device-workers is pinned so the recovery re-solves are label-stable
# run to run (auto worker counts vary with the host's core count).
execute_process(
  COMMAND "${SERVE}"
          --trace=${TRACE} --job-quota-mb=4 --ncv=16
          --device-workers=4 --chaos --chaos-seed=1
          --trace-out=${trace_json} --metrics-out=${metrics_json}
  RESULT_VARIABLE serve_rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err)
message(STATUS "fastsc_serve --chaos output:\n${serve_out}\n${serve_err}")
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "fastsc_serve --chaos failed (rc=${serve_rc}): a "
          "completed job's labels diverged from the fault-free oracle\n"
          "stdout:\n${serve_out}\nstderr:\n${serve_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "fastsc_serve did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}"
          --expect-counter "sdc.detected>=1"
          --expect-counter service.jobs_completed
          --expect-gauge "sdc.chaos_label_mismatches<=0"
          --expect-gauge "sdc.overhead_ratio<=1.10"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()
message(STATUS "sdc smoke OK: every chaos job matched the oracle, "
        "detection fired, and the checksum overhead is within 10%")
