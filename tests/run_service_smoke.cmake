# Service smoke, run as a CTest via `cmake -P`:
#   1. replay examples/service_trace.txt through fastsc_serve with a small
#      per-job quota (so the trace's oversized dblp_big job is rejected) and
#      --trace-out/--metrics-out artifacts,
#   2. validate the trace with tools/check_trace.py:
#        - service.*/cache.* counters present and monotone,
#        - warm-start acceptance from artifacts alone:
#            service.cold_matvecs / service.warm_matvecs >= 2
#            service.warm_vs_cold_ari >= 1  (identical partitions)
#   3. run bench_service at tiny scale and require its BENCH_service.json
#      run report to carry the throughput table with a nonzero cache-hit
#      ratio and rejection rate.
#
# Expected -D definitions: SERVE (fastsc_serve), BENCH (bench_service),
# TRACE (examples/service_trace.txt), PYTHON (python3), CHECKER
# (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var SERVE BENCH TRACE PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_service_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")
set(report_json "${WORKDIR}/BENCH_service.json")

# --job-quota-mb=4: the fb1200 job estimates ~2 MiB of device bytes and the
# dblp job ~0.6 MiB, so both pass; the dblp_big line (~5.8 MiB) must be
# rejected with kOverloaded.  --ncv=16 keeps the Krylov basis lean so the
# cold solve pays several thick restarts — the baseline the warm-start
# ratio below is measured against.
set(prom_out "${WORKDIR}/metrics.prom")
set(serve_report "${WORKDIR}/serve_report.json")
set(job_artifacts "${WORKDIR}/jobs")
execute_process(
  COMMAND "${SERVE}"
          --trace=${TRACE} --workers=2 --job-quota-mb=4 --ncv=16
          --trace-out=${trace_json} --metrics-out=${metrics_json}
          --prom-out=${prom_out} --report-out=${serve_report}
          --job-artifacts-dir=${job_artifacts}
  RESULT_VARIABLE serve_rc
  OUTPUT_VARIABLE serve_out
  ERROR_VARIABLE serve_err)
message(STATUS "fastsc_serve output:\n${serve_out}")
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "fastsc_serve failed (rc=${serve_rc})\n"
          "stdout:\n${serve_out}\nstderr:\n${serve_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}" "${prom_out}"
        "${serve_report}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "fastsc_serve did not write ${artifact}")
  endif()
endforeach()

# Per-job artifacts: the trace's first solve (job 1) must have produced a
# trace + attribution pair, and the attribution must not be empty.
foreach(artifact "${job_artifacts}/job_1.trace.json"
        "${job_artifacts}/job_1.attribution.json")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "fastsc_serve did not write ${artifact}")
  endif()
endforeach()
file(READ "${job_artifacts}/job_1.attribution.json" job1_attr)
if(NOT job1_attr MATCHES "spmv\\.")
  message(FATAL_ERROR "job_1.attribution.json has no spmv.* sites")
endif()

# SLO layer: the Prometheus dump must expose the latency histograms and the
# derived percentile gauges in text exposition format.
file(READ "${prom_out}" prom)
foreach(needle
        "# TYPE slo_latency_ms_normal histogram"
        "slo_latency_ms_normal_bucket"
        "slo_queue_ms_sum"
        "slo_solve_ms_count"
        "# TYPE slo_latency_ms_normal_p99 gauge")
  if(NOT prom MATCHES "${needle}")
    message(FATAL_ERROR "prometheus dump missing '${needle}'")
  endif()
endforeach()

# The serve run report carries the process-wide attribution section.
execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" --report "${serve_report}"
  RESULT_VARIABLE attr_rc
  OUTPUT_VARIABLE attr_out
  ERROR_VARIABLE attr_err)
message(STATUS "${attr_out}${attr_err}")
if(NOT attr_rc EQUAL 0)
  message(FATAL_ERROR "serve report attribution check failed (rc=${attr_rc})")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}"
          --expect-counter service.jobs_submitted
          --expect-counter service.jobs_admitted
          --expect-counter service.jobs_completed
          --expect-counter service.jobs_rejected
          --expect-counter cache.hits
          --expect-counter cache.misses
          --expect-counter cache.inserts
          --expect-counter cache.warm_donors
          --expect-gauge-ratio "service.cold_matvecs/service.warm_matvecs>=2"
          --expect-gauge "service.warm_vs_cold_ari>=1"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()

# Throughput bench at tiny scale: 12 mixed ops, baseline-free, with the
# run report as the artifact under test.
execute_process(
  COMMAND "${BENCH}"
          --jobs=12 --scale=0.5 --service-workers=2
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
message(STATUS "bench_service output:\n${bench_out}")
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_service failed (rc=${bench_rc})\n"
          "stdout:\n${bench_out}\nstderr:\n${bench_err}")
endif()
if(NOT EXISTS "${report_json}")
  message(FATAL_ERROR "bench_service did not write ${report_json}")
endif()
file(READ "${report_json}" report)
# MATCHES is a regex test, so the "(ms)" parens must be escaped.
foreach(needle
        "Service throughput"
        "latency p50 \\(ms\\)"
        "latency p99 \\(ms\\)"
        "cache hit ratio"
        "rejection rate")
  if(NOT report MATCHES "${needle}")
    message(FATAL_ERROR "BENCH_service.json missing '${needle}'")
  endif()
endforeach()
# The mixed trace must have produced at least one cache hit and one
# admission rejection.  The table rows live in the report's csv field as
# "name,value\n" (the \n is JSON-escaped, i.e. a literal backslash-n), and
# TextTable::fmt renders an exact zero as plain "0".
if(report MATCHES "cache hit ratio,0\\\\n")
  message(FATAL_ERROR "bench_service saw no cache hits")
endif()
if(report MATCHES "rejection rate,0\\\\n")
  message(FATAL_ERROR "bench_service saw no admission rejections")
endif()
message(STATUS "service smoke OK: admission, cache, and warm-start "
        "acceptance all hold")
