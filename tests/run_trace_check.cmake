# End-to-end trace validation, run as a CTest via `cmake -P`:
#   1. run a tiny bench_table5_syn200 pipeline with --trace-out/--metrics-out
#      and a deterministic transient-fault plan on the h2d copy site (single
#      clause: execute_process splits list arguments on ';'),
#   2. validate the trace JSON with tools/check_trace.py, cross-checking the
#      recomputed transfer-x-kernel overlap against the published
#      device.overlapped_seconds gauge (1e-9 tolerance), requiring the
#      fault.transfer_retry counter series the retried faults must emit,
#      and validating the run report's attribution section (site-name
#      discipline, per-site sums vs device counters).
#
# Expected -D definitions: BENCH (bench executable), PYTHON (python3),
# CHECKER (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var BENCH PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_trace_check.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(metrics_json "${WORKDIR}/metrics.json")
set(report_json "${WORKDIR}/report.json")

execute_process(
  COMMAND "${BENCH}"
          --n=400 --blocks=4 --k=4 --baselines=false
          --faults=site=copy.h2d,nth=2,count=2
          --trace-out=${trace_json}
          --metrics-out=${metrics_json}
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench failed (rc=${bench_rc})\nstdout:\n${bench_out}\n"
          "stderr:\n${bench_err}")
endif()
foreach(artifact "${trace_json}" "${metrics_json}" "${report_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --metrics "${metrics_json}" --tolerance 1e-9
          --expect-counter fault.transfer_retry
          --report "${report_json}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()
