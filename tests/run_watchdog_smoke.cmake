# Watchdog smoke, run as a CTest via `cmake -P`:
#   1. run a tiny bench_table5_syn200 pipeline with a stream.hang fault (the
#      stream worker wedges before its next op) under a heartbeat watchdog,
#   2. require the run to finish with an exit code of 0 — the watchdog must
#      convert the hang into an anytime result, not a wedged process,
#   3. validate the trace with tools/check_trace.py and require the
#      watchdog.fired counter series,
#   4. require the run-report JSON to carry the anytime budget verdict.
#
# Expected -D definitions: BENCH (bench executable), PYTHON (python3),
# CHECKER (tools/check_trace.py), WORKDIR (scratch directory).

foreach(var BENCH PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_watchdog_smoke.cmake: missing -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_json "${WORKDIR}/trace.json")
set(report_json "${WORKDIR}/report.json")

# nth picks the 200th stream op so the hang lands mid-eigensolve, after the
# initial factorization has banked enough Ritz pairs for an anytime cut
# (CanAbandon requires j >= nev); the first ~50 ops are setup uploads where
# abandoning is impossible and the cancellation would rightly be fatal.
execute_process(
  COMMAND "${BENCH}"
          --n=400 --blocks=4 --k=4 --baselines=false
          --faults=site=stream.hang,nth=200
          --watchdog=heartbeat_ms=50,poll_ms=5
          --trace-out=${trace_json}
          --report-out=${report_json}
  RESULT_VARIABLE bench_rc
  OUTPUT_VARIABLE bench_out
  ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR
          "bench did not survive the injected hang (rc=${bench_rc})\n"
          "stdout:\n${bench_out}\nstderr:\n${bench_err}")
endif()
foreach(artifact "${trace_json}" "${report_json}")
  if(NOT EXISTS "${artifact}")
    message(FATAL_ERROR "bench did not write ${artifact}")
  endif()
endforeach()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${trace_json}"
          --expect-counter watchdog.fired
          --expect-counter budget.anytime_results
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_err)
message(STATUS "${check_out}${check_err}")
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "check_trace.py failed (rc=${check_rc})")
endif()

# The run report must record an anytime (partial-but-valid) result with the
# watchdog as the cause.
file(READ "${report_json}" report)
if(NOT report MATCHES "\"watchdog_fired\": *true")
  message(FATAL_ERROR "run report missing watchdog_fired=true")
endif()
if(NOT report MATCHES "\"anytime\": *true")
  message(FATAL_ERROR "run report missing anytime=true")
endif()
message(STATUS "watchdog smoke OK: hang converted to an anytime result")
