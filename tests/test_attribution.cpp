// Attribution registry, site scopes, and the conservation laws the report
// layer relies on: per-site sums must reproduce the DeviceCounters totals
// for a full spectral_cluster_graph run on every backend.
#include "obs/attribution.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/spectral.h"
#include "data/sbm.h"
#include "device/device.h"

namespace fastsc {
namespace {

// ---------------------------------------------------------------------------
// Roofline model and registry unit tests.
// ---------------------------------------------------------------------------

TEST(RooflineModel, AttainableIsMinOfCeilings) {
  obs::RooflineModel m;
  m.peak_flops = 100.0;
  m.bandwidth_bytes_per_sec = 10.0;
  EXPECT_DOUBLE_EQ(m.attainable_flops(2.0), 20.0);    // bandwidth-bound
  EXPECT_DOUBLE_EQ(m.attainable_flops(50.0), 100.0);  // compute-bound
  EXPECT_DOUBLE_EQ(m.attainable_flops(10.0), 100.0);  // the ridge point
}

TEST(AttributionRegistry, AccumulatesPerSite) {
  obs::AttributionRegistry reg;
  reg.record_kernel("spmv.balanced", 0.5, 100.0, 800.0, 400.0);
  reg.record_kernel("spmv.balanced", 0.25, 50.0, 80.0, 40.0);
  reg.record_transfer("copy.h2d", 1024, 0.125, /*h2d=*/true);
  reg.record_transfer("copy.h2d", 512, 0.0625, /*h2d=*/false);

  ASSERT_EQ(reg.site_count(), 2u);
  const auto rows = reg.report();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].site, "copy.h2d");  // report rows sort by site name
  EXPECT_EQ(rows[1].site, "spmv.balanced");

  const obs::SiteStats& spmv = rows[1].stats;
  EXPECT_EQ(spmv.kernel_launches, 2u);
  EXPECT_DOUBLE_EQ(spmv.kernel_seconds, 0.75);
  EXPECT_DOUBLE_EQ(spmv.flops, 150.0);
  EXPECT_DOUBLE_EQ(spmv.bytes_read, 880.0);
  EXPECT_DOUBLE_EQ(spmv.bytes_written, 440.0);
  EXPECT_EQ(spmv.transfers_h2d, 0u);

  const obs::SiteStats& copy = rows[0].stats;
  EXPECT_EQ(copy.transfers_h2d, 1u);
  EXPECT_EQ(copy.transfers_d2h, 1u);
  EXPECT_EQ(copy.bytes_h2d, 1024u);
  EXPECT_EQ(copy.bytes_d2h, 512u);
  EXPECT_DOUBLE_EQ(copy.transfer_seconds, 0.1875);
  EXPECT_EQ(copy.kernel_launches, 0u);

  const obs::SiteStats t = reg.totals();
  EXPECT_EQ(t.kernel_launches, 2u);
  EXPECT_EQ(t.bytes_h2d, 1024u);
  EXPECT_EQ(t.bytes_d2h, 512u);
  EXPECT_DOUBLE_EQ(t.kernel_seconds, 0.75);
  EXPECT_DOUBLE_EQ(t.transfer_seconds, 0.1875);
  EXPECT_DOUBLE_EQ(t.flops, 150.0);

  reg.clear();
  EXPECT_EQ(reg.site_count(), 0u);
}

TEST(AttributionRegistry, ReportUsesSharedDerivedFormulas) {
  obs::RooflineModel m;
  m.peak_flops = 1e6;
  m.bandwidth_bytes_per_sec = 1e3;
  obs::AttributionRegistry reg;
  reg.set_roofline(m);
  reg.record_kernel("gemm.tiny", 0.5, 400.0, 100.0, 100.0);

  const auto rows = reg.report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].arithmetic_intensity,
                   obs::arithmetic_intensity(rows[0].stats));
  EXPECT_DOUBLE_EQ(rows[0].roofline_utilization,
                   obs::roofline_utilization(rows[0].stats, m));
  // intensity = 400 / 200 = 2 flops/byte -> attainable = 2e3 flop/s;
  // achieved = 400 / 0.5 = 800 flop/s -> utilization 0.4.
  EXPECT_DOUBLE_EQ(rows[0].arithmetic_intensity, 2.0);
  EXPECT_DOUBLE_EQ(rows[0].roofline_utilization, 0.4);
}

TEST(AttributionRegistry, TransferOnlySiteUsesLinkUtilization) {
  obs::RooflineModel m;
  m.peak_flops = 1e12;
  m.bandwidth_bytes_per_sec = 1000.0;
  obs::AttributionRegistry reg;
  reg.set_roofline(m);
  // 500 bytes in 1 s over a 1000 B/s link: half the link.
  reg.record_transfer("copy.h2d", 500, 1.0, /*h2d=*/true);
  const auto rows = reg.report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].roofline_utilization, 0.5);
}

// ---------------------------------------------------------------------------
// Thread-local site scopes and per-job registry binding.
// ---------------------------------------------------------------------------

TEST(AttrSiteScope, InnermostWinsAndRestores) {
  EXPECT_EQ(obs::current_attr_site(), nullptr);
  {
    obs::AttrSiteScope outer("stage.similarity");
    EXPECT_STREQ(obs::current_attr_site(), "stage.similarity");
    {
      obs::AttrSiteScope inner("spmv.balanced");
      EXPECT_STREQ(obs::current_attr_site(), "spmv.balanced");
    }
    EXPECT_STREQ(obs::current_attr_site(), "stage.similarity");
  }
  EXPECT_EQ(obs::current_attr_site(), nullptr);
}

TEST(AttrSiteScope, TagsLaunchesWithoutExplicitSite) {
  device::DeviceContext ctx(1);
  {
    obs::AttrSiteScope scope("test.scoped");
    device::launch(ctx, 16, [](index_t) {});
  }
  const auto rows = ctx.attribution().report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].site, "test.scoped");
  EXPECT_EQ(rows[0].stats.kernel_launches, 1u);
  EXPECT_GT(rows[0].stats.flops, 0.0);
}

TEST(AttrSiteScope, ExplicitLaunchSiteWinsOverScope) {
  device::DeviceContext ctx(1);
  obs::AttrSiteScope scope("test.scoped");
  device::LaunchConfig cfg;
  cfg.site = "test.explicit";
  device::launch(ctx, 8, [](index_t) {}, cfg);
  const auto rows = ctx.attribution().report();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].site, "test.explicit");
}

TEST(AttrBindScope, MirrorsIntoBoundRegistry) {
  device::DeviceContext ctx(1);
  obs::AttributionRegistry job;
  {
    obs::AttrBindScope bind(&job);
    EXPECT_EQ(obs::bound_attribution(), &job);
    device::LaunchConfig cfg;
    cfg.site = "test.mirrored";
    device::launch(ctx, 8, [](index_t) {}, cfg);
    std::vector<double> host(32, 1.0);
    device::DeviceBuffer<double> dev(ctx, std::span<const double>(host));
  }
  EXPECT_EQ(obs::bound_attribution(), nullptr);

  // Both the context-owned and the bound per-job registry saw the work.
  const obs::SiteStats ctx_totals = ctx.attribution().totals();
  const obs::SiteStats job_totals = job.totals();
  EXPECT_EQ(job_totals.kernel_launches, 1u);
  EXPECT_EQ(job_totals.bytes_h2d, 32u * sizeof(double));
  EXPECT_EQ(ctx_totals.kernel_launches, job_totals.kernel_launches);
  EXPECT_EQ(ctx_totals.bytes_h2d, job_totals.bytes_h2d);
  EXPECT_DOUBLE_EQ(ctx_totals.kernel_seconds, job_totals.kernel_seconds);
  EXPECT_DOUBLE_EQ(ctx_totals.transfer_seconds, job_totals.transfer_seconds);

  // Work after the scope ends stays out of the job registry.
  device::launch(ctx, 8, [](index_t) {});
  EXPECT_EQ(job.totals().kernel_launches, 1u);
  EXPECT_EQ(ctx.attribution().totals().kernel_launches, 2u);
}

// ---------------------------------------------------------------------------
// Conservation properties over a full pipeline run: the per-site breakdown
// must sum back to the DeviceCounters totals, every launch must carry a
// modeled cost, and no work may land in the "unattributed" bucket.
// ---------------------------------------------------------------------------

class AttributionPipeline : public ::testing::TestWithParam<core::Backend> {};

TEST_P(AttributionPipeline, SiteSumsReproduceDeviceCounters) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(200, 4);
  p.p_in = 0.4;
  p.p_out = 0.02;
  p.seed = 3;
  const data::SbmGraph g = data::make_sbm(p);

  core::SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.backend = GetParam();
  cfg.seed = 5;
  device::DeviceContext ctx(2);
  const core::SpectralResult result =
      core::spectral_cluster_graph(g.w, cfg, &ctx);
  EXPECT_TRUE(result.eig_converged);

  const auto rows = ctx.attribution().report();
  const device::DeviceCounters& c = ctx.counters();
  if (GetParam() == core::Backend::kDevice) {
    // The device pipeline must produce an attributed breakdown.
    ASSERT_FALSE(rows.empty());
    ASSERT_GT(c.kernel_launches, 0u);
  } else if (c.kernel_launches == 0 && c.transfers_h2d == 0 &&
             c.transfers_d2h == 0) {
    // Host baselines never touch the device: no phantom attribution.
    EXPECT_TRUE(rows.empty());
    return;
  }

  std::uint64_t launches = 0, th2d = 0, td2h = 0, bh2d = 0, bd2h = 0;
  double kernel_seconds = 0, transfer_seconds = 0;
  for (const auto& r : rows) {
    EXPECT_NE(r.site, "unattributed");
    EXPECT_GE(r.stats.flops, 0.0) << r.site;
    EXPECT_GE(r.stats.bytes_read, 0.0) << r.site;
    EXPECT_GE(r.stats.bytes_written, 0.0) << r.site;
    EXPECT_GE(r.stats.kernel_seconds, 0.0) << r.site;
    EXPECT_GE(r.stats.transfer_seconds, 0.0) << r.site;
    // Every launch models a nonzero flop count (the default ladder
    // guarantees >= 1 flop even for n == 0 launches).
    if (r.stats.kernel_launches > 0) {
      EXPECT_GT(r.stats.flops, 0.0) << r.site;
    }
    if (r.stats.total_seconds() > 0) {
      EXPECT_GT(r.roofline_utilization, 0.0) << r.site;
      EXPECT_LE(r.roofline_utilization, 1.0) << r.site;
    }
    launches += r.stats.kernel_launches;
    th2d += r.stats.transfers_h2d;
    td2h += r.stats.transfers_d2h;
    bh2d += r.stats.bytes_h2d;
    bd2h += r.stats.bytes_d2h;
    kernel_seconds += r.stats.kernel_seconds;
    transfer_seconds += r.stats.transfer_seconds;
  }

  // Counts and bytes are exact integers: sums must match the device totals
  // exactly, not approximately.
  EXPECT_EQ(launches, c.kernel_launches);
  EXPECT_EQ(th2d, c.transfers_h2d);
  EXPECT_EQ(td2h, c.transfers_d2h);
  EXPECT_EQ(bh2d, c.bytes_h2d);
  EXPECT_EQ(bd2h, c.bytes_d2h);
  // Seconds are the same doubles the counters accumulated; only summation
  // order differs, so the tolerance is far below any modeled duration.
  EXPECT_NEAR(kernel_seconds, c.kernel_seconds, 1e-6);
  EXPECT_NEAR(transfer_seconds, c.modeled_transfer_seconds, 1e-6);

  // totals() must agree with summing the report rows.
  const obs::SiteStats t = ctx.attribution().totals();
  EXPECT_EQ(t.kernel_launches, launches);
  EXPECT_EQ(t.bytes_h2d, bh2d);
  EXPECT_EQ(t.bytes_d2h, bd2h);
  EXPECT_NEAR(t.kernel_seconds, kernel_seconds, 1e-12);
  EXPECT_NEAR(t.transfer_seconds, transfer_seconds, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Backends, AttributionPipeline,
                         ::testing::Values(core::Backend::kDevice,
                                           core::Backend::kMatlabLike,
                                           core::Backend::kPythonLike));

}  // namespace
}  // namespace fastsc
