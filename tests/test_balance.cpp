#include "sparse/balance.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "data/powerlaw.h"
#include "device/algorithms.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::sparse {
namespace {

Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng) {
  Coo coo(rows, cols);
  for (index_t e = 0; e < nnz; ++e) {
    coo.push(static_cast<index_t>(
                 rng.uniform_index(static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.uniform_index(static_cast<std::uint64_t>(cols))),
             rng.uniform() - 0.5);
  }
  sort_and_merge(coo);
  return coo;
}

/// Every partition must tile the range exactly: monotone boundaries, first
/// and last pinned to the range ends, and every span within the merge-path
/// work bound ceil(M / spans).
void check_partition(const MergePathPartition& part, const index_t* row_ptr,
                     index_t row_begin, index_t row_end, index_t spans) {
  ASSERT_GE(part.spans, 1);
  ASSERT_EQ(part.span_row.size(), static_cast<usize>(part.spans) + 1);
  ASSERT_EQ(part.span_ent.size(), static_cast<usize>(part.spans) + 1);
  EXPECT_EQ(part.span_row.front(), row_begin);
  EXPECT_EQ(part.span_row.back(), row_end);
  EXPECT_EQ(part.span_ent.front(), row_ptr[row_begin]);
  EXPECT_EQ(part.span_ent.back(), row_ptr[row_end]);

  const index_t rows = row_end - row_begin;
  const index_t nnz = row_ptr[row_end] - row_ptr[row_begin];
  const index_t m = rows + nnz;
  const index_t bound = (m + spans - 1) / spans;
  for (index_t s = 0; s < part.spans; ++s) {
    const auto us = static_cast<usize>(s);
    // Disjoint and sorted: boundaries never move backwards.
    EXPECT_LE(part.span_row[us], part.span_row[us + 1]);
    EXPECT_LE(part.span_ent[us], part.span_ent[us + 1]);
    // Each boundary is a valid merge-path coordinate:
    // row_ptr[r] <= e <= row_ptr[r + 1] whenever r < row_end.
    const index_t r = part.span_row[us];
    const index_t e = part.span_ent[us];
    EXPECT_GE(e, row_ptr[r]);
    if (r < row_end) EXPECT_LE(e, row_ptr[r + 1]);
    // Near-equal work: rows consumed + entries consumed <= ceil(M/spans).
    const index_t work = (part.span_row[us + 1] - part.span_row[us]) +
                         (part.span_ent[us + 1] - part.span_ent[us]);
    EXPECT_LE(work, bound) << "span " << s;
  }
}

TEST(MergePathPartition, CoversUniformMatrixExactly) {
  Rng rng(7);
  const Coo coo = random_coo(64, 64, 500, rng);
  const Csr csr = coo_to_csr(coo);
  for (index_t spans : {1, 2, 3, 7, 8, 64}) {
    const MergePathPartition part =
        merge_path_partition(csr.row_ptr.data(), 0, csr.rows, spans);
    check_partition(part, csr.row_ptr.data(), 0, csr.rows, spans);
    EXPECT_EQ(part.nnz(), csr.nnz());
  }
}

TEST(MergePathPartition, HandlesEmptyRows) {
  // row_ptr with leading, interior, and trailing empty rows.
  const std::vector<index_t> row_ptr = {0, 0, 0, 3, 3, 3, 7, 7};
  for (index_t spans : {1, 2, 3, 5}) {
    const MergePathPartition part =
        merge_path_partition(row_ptr.data(), 0, 7, spans);
    check_partition(part, row_ptr.data(), 0, 7, spans);
    EXPECT_EQ(part.nnz(), 7);
  }
}

TEST(MergePathPartition, CutsSingleHubRowAcrossSpans) {
  // One row owns all 1000 entries; a row split gives one worker everything,
  // the merge path slices the hub across every span.
  const std::vector<index_t> row_ptr = {0, 0, 1000, 1000, 1000};
  const index_t spans = 8;
  const MergePathPartition part =
      merge_path_partition(row_ptr.data(), 0, 4, spans);
  check_partition(part, row_ptr.data(), 0, 4, spans);
  EXPECT_EQ(part.nnz(), 1000);
  // Balanced: no span carries more than ceil((4 + 1000) / 8) entries...
  EXPECT_LE(part.max_span_nnz, (4 + 1000 + spans - 1) / spans);
  // ...while the row-chunked baseline gives one worker the whole hub.
  EXPECT_EQ(rowchunk_max_span_nnz(row_ptr.data(), 0, 4, spans), 1000);
}

TEST(MergePathPartition, EmptyRangeAndSubrange) {
  const std::vector<index_t> row_ptr = {0, 2, 5, 5, 9};
  const MergePathPartition empty =
      merge_path_partition(row_ptr.data(), 2, 2, 4);
  EXPECT_EQ(empty.nnz(), 0);
  const MergePathPartition sub = merge_path_partition(row_ptr.data(), 1, 3, 2);
  check_partition(sub, row_ptr.data(), 1, 3, 2);
  EXPECT_EQ(sub.nnz(), 3);
}

TEST(MergePathPartition, BalancedBeatsRowChunkOnPowerlaw) {
  const data::PowerlawGraph graph =
      data::make_powerlaw({.n = 400, .avg_degree = 10.0, .seed = 11});
  const Csr csr = coo_to_csr(graph.w);
  const index_t workers = 8;
  const MergePathPartition part =
      merge_path_partition(csr.row_ptr.data(), 0, csr.rows, workers);
  check_partition(part, csr.row_ptr.data(), 0, csr.rows, workers);
  const index_t chunked =
      rowchunk_max_span_nnz(csr.row_ptr.data(), 0, csr.rows, workers);
  // The hub rows concentrate in the first row chunk; merge path spreads
  // them evenly, so its worst wave must be strictly better.
  EXPECT_LT(part.max_span_nnz, chunked);
}

class BalancedSpmv : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(BalancedSpmv, MatchesPlainCsrmv) {
  Rng rng(101);
  const data::PowerlawGraph graph =
      data::make_powerlaw({.n = 150, .avg_degree = 9.0, .seed = 5});
  const Csr csr = coo_to_csr(graph.w);
  DeviceCsr dev(ctx_, csr);

  std::vector<real> x(static_cast<usize>(csr.cols));
  for (real& v : x) v = rng.uniform() - 0.5;
  std::vector<real> y0(static_cast<usize>(csr.rows));
  for (real& v : y0) v = rng.uniform();

  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  for (const auto& [alpha, beta] :
       {std::pair<real, real>{1, 0}, {2.5, 0.5}, {-1, 1}}) {
    device::DeviceBuffer<real> dy_plain(ctx_, std::span<const real>(y0));
    device::DeviceBuffer<real> dy_bal(ctx_, std::span<const real>(y0));
    device_csrmv(ctx_, dev, dx.data(), dy_plain.data(), alpha, beta);
    device_csrmv_balanced(ctx_, dev, dx.data(), dy_bal.data(), alpha, beta);
    const auto expect = dy_plain.to_host();
    const auto got = dy_bal.to_host();
    for (usize i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-12)
          << "alpha=" << alpha << " beta=" << beta << " i=" << i;
    }
  }
}

TEST_P(BalancedSpmv, RangeVariantMatchesPlainRange) {
  Rng rng(103);
  const Coo coo = random_coo(80, 80, 900, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);

  std::vector<real> x(80);
  for (real& v : x) v = rng.uniform() - 0.5;
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));

  for (const auto& [lo, hi] : {std::pair<index_t, index_t>{0, 80},
                               {10, 57},
                               {0, 1},
                               {79, 80},
                               {40, 40}}) {
    device::DeviceBuffer<real> dy_plain(ctx_, 80);
    device::DeviceBuffer<real> dy_bal(ctx_, 80);
    device::fill(ctx_, dy_plain.data(), static_cast<index_t>(80), 7.0);
    device::fill(ctx_, dy_bal.data(), static_cast<index_t>(80), 7.0);
    device_csrmv_range(ctx_, dev, dx.data(), dy_plain.data(), lo, hi);
    device_csrmv_range_balanced(ctx_, dev, dx.data(), dy_bal.data(), lo, hi);
    const auto expect = dy_plain.to_host();
    const auto got = dy_bal.to_host();
    for (usize i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-12)
          << "range [" << lo << ", " << hi << ") i=" << i;
    }
  }
}

TEST_P(BalancedSpmv, CsrmmMatchesIndependentCsrmvCalls) {
  Rng rng(107);
  const Coo coo = random_coo(70, 70, 600, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);
  const index_t n = csr.cols;
  const index_t nvec = 5;

  std::vector<real> x(static_cast<usize>(nvec) * static_cast<usize>(n));
  for (real& v : x) v = rng.uniform() - 0.5;
  std::vector<real> y0(static_cast<usize>(nvec) * static_cast<usize>(csr.rows));
  for (real& v : y0) v = rng.uniform();

  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  for (const auto& [alpha, beta] :
       {std::pair<real, real>{1, 0}, {2.0, 0.5}}) {
    device::DeviceBuffer<real> dy(ctx_, std::span<const real>(y0));
    device_csrmm(ctx_, dev, dx.data(), dy.data(), nvec, alpha, beta);
    const auto got = dy.to_host();
    // Reference: one csrmv per packed vector.  The batched kernel
    // accumulates each (vector, row) pair in the identical order, so the
    // match must be bitwise.
    for (index_t j = 0; j < nvec; ++j) {
      const usize off = static_cast<usize>(j) * static_cast<usize>(n);
      device::DeviceBuffer<real> dxj(
          ctx_, std::span<const real>(x.data() + off, static_cast<usize>(n)));
      device::DeviceBuffer<real> dyj(
          ctx_, std::span<const real>(y0.data() + off,
                                      static_cast<usize>(csr.rows)));
      device_csrmv(ctx_, dev, dxj.data(), dyj.data(), alpha, beta);
      const auto expect = dyj.to_host();
      for (usize i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[off + i], expect[i])
            << "vector " << j << " row " << i << " alpha=" << alpha;
      }
    }
  }
}

TEST_P(BalancedSpmv, PartitionIsCachedPerGeometry) {
  Rng rng(109);
  const Coo coo = random_coo(50, 50, 300, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);
  const auto p1 = dev.balance->get(dev.row_ptr.data(), 0, csr.rows, 4);
  const auto p2 = dev.balance->get(dev.row_ptr.data(), 0, csr.rows, 4);
  EXPECT_EQ(p1.get(), p2.get());  // same shared entry, built once
  const auto p3 = dev.balance->get(dev.row_ptr.data(), 0, csr.rows, 8);
  EXPECT_NE(p1.get(), p3.get());  // different span count -> new entry
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, BalancedSpmv, ::testing::Values(1, 4));

}  // namespace
}  // namespace fastsc::sparse
