#include <gtest/gtest.h>

#include "baseline/matlab_like.h"
#include "baseline/python_like.h"
#include "common/rng.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "sparse/convert.h"

namespace fastsc::baseline {
namespace {

struct Points {
  std::vector<real> x;
  index_t n = 20, d = 10;
};

Points make_points() {
  Points p;
  Rng rng(3);
  p.x.resize(static_cast<usize>(p.n * p.d));
  for (real& v : p.x) v = rng.uniform(-1, 1);
  return p;
}

graph::EdgeList all_pairs_sym(index_t n) {
  graph::EdgeList e;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) e.push(i, j);
  }
  return graph::symmetrized(e);
}

TEST(BaselineSimilarity, LoopAndVectorizedAgree) {
  const Points p = make_points();
  const graph::EdgeList edges = all_pairs_sym(p.n);
  graph::SimilarityParams params{graph::SimilarityMeasure::kCrossCorrelation};
  const sparse::Coo loop =
      similarity_loop(p.x.data(), p.n, p.d, edges, params);
  const sparse::Coo vec =
      similarity_vectorized(p.x.data(), p.n, p.d, edges, params);
  ASSERT_EQ(loop.nnz(), vec.nnz());
  for (usize e = 0; e < loop.values.size(); ++e) {
    EXPECT_NEAR(loop.values[e], vec.values[e], 1e-10);
  }
}

TEST(BaselineEig, MatlabAndPythonTiersAgreeNumerically) {
  data::SbmParams sp;
  sp.block_sizes = data::equal_blocks(150, 3);
  sp.p_in = 0.4;
  sp.p_out = 0.02;
  const data::SbmGraph g = data::make_sbm(sp);
  std::vector<real> isd;
  const sparse::Csr p = graph::sym_normalized_host(g.w, isd);

  const auto matlab = eigensolve_matlab(p, 3, lanczos::EigWhich::kLargestAlgebraic,
                                        1e-9, 0, 300);
  const auto python = eigensolve_python(p, 3, lanczos::EigWhich::kLargestAlgebraic,
                                        1e-9, 0, 300);
  ASSERT_TRUE(matlab.converged);
  ASSERT_TRUE(python.converged);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(matlab.eigenvalues[i], python.eigenvalues[i], 1e-8);
  }
  EXPECT_GT(matlab.spmv_seconds, 0.0);
}

TEST(BaselineEig, LeadingEigenvalueOfRowStochasticIsOne) {
  data::SbmParams sp;
  sp.block_sizes = data::equal_blocks(120, 2);
  sp.p_in = 0.3;
  sp.p_out = 0.05;
  const data::SbmGraph g = data::make_sbm(sp);
  std::vector<real> isd;
  const sparse::Csr p = graph::sym_normalized_host(g.w, isd);
  const auto eig = eigensolve_matlab(p, 2, lanczos::EigWhich::kLargestAlgebraic,
                                     1e-10, 0, 300);
  ASSERT_TRUE(eig.converged);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-8);
  EXPECT_LT(eig.eigenvalues[1], 1.0 + 1e-8);
}

TEST(BaselineKmeans, MatlabUsesRandomPythonUsesPlusPlus) {
  // Indirect but observable: on pathological data where random seeding often
  // collapses, ++ reaches a better or equal objective on average.
  Rng rng(9);
  const index_t n = 200, d = 2;
  std::vector<real> x(static_cast<usize>(n * d));
  // 4 tight corners.
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<usize>(i * d)] = (i % 4 < 2 ? 0.0 : 100.0) + rng.normal() * 0.1;
    x[static_cast<usize>(i * d + 1)] =
        (i % 2 == 0 ? 0.0 : 100.0) + rng.normal() * 0.1;
  }
  real matlab_obj = 0, python_obj = 0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    matlab_obj += kmeans_matlab(x.data(), n, d, 4, 100, s).objective;
    python_obj += kmeans_python(x.data(), n, d, 4, 100, s).objective;
  }
  EXPECT_LE(python_obj, matlab_obj * 1.05 + 1e-6);
}

TEST(BaselineKmeans, BothProduceValidLabels) {
  const Points p = make_points();
  for (const auto& r : {kmeans_matlab(p.x.data(), p.n, p.d, 3, 50),
                        kmeans_python(p.x.data(), p.n, p.d, 3, 50)}) {
    ASSERT_EQ(r.labels.size(), static_cast<usize>(p.n));
    for (index_t l : r.labels) {
      EXPECT_GE(l, 0);
      EXPECT_LT(l, 3);
    }
  }
}

}  // namespace
}  // namespace fastsc::baseline
