#include "core/bisection.h"

#include <gtest/gtest.h>

#include <set>

#include "data/sbm.h"
#include "metrics/cut.h"
#include "metrics/external.h"
#include "sparse/convert.h"

namespace fastsc::core {
namespace {

data::SbmGraph blocks(index_t n, index_t k, real p_out, std::uint64_t seed) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, k);
  p.p_in = 0.4;
  p.p_out = p_out;
  p.seed = seed;
  return data::make_sbm(p);
}

TEST(SpectralBisection, TwoWaySplitRecoversTwoBlocks) {
  const data::SbmGraph g = blocks(200, 2, 0.01, 3);
  BisectionConfig cfg;
  cfg.num_clusters = 2;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  EXPECT_EQ(r.splits, 1);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

TEST(SpectralBisection, PowerOfTwoClusterCounts) {
  const data::SbmGraph g = blocks(320, 4, 0.005, 7);
  BisectionConfig cfg;
  cfg.num_clusters = 4;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  EXPECT_EQ(r.splits, 3);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

TEST(SpectralBisection, NonPowerOfTwoCounts) {
  const data::SbmGraph g = blocks(300, 3, 0.005, 11);
  BisectionConfig cfg;
  cfg.num_clusters = 3;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  std::set<index_t> used(r.labels.begin(), r.labels.end());
  EXPECT_EQ(used.size(), 3u);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

TEST(SpectralBisection, MedianRuleForcesBalancedHalves) {
  // The balanced rule serves graph partitioning: sizes within 1 of n/2
  // after the first split even when the natural clusters are unbalanced.
  data::SbmParams p;
  p.block_sizes = {150, 50};
  p.p_in = 0.4;
  p.p_out = 0.01;
  const data::SbmGraph g = data::make_sbm(p);
  BisectionConfig cfg;
  cfg.num_clusters = 2;
  cfg.split = BisectionConfig::SplitRule::kMedian;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  index_t side0 = 0;
  for (index_t l : r.labels) side0 += (l == 0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(side0), 100.0, 1.0);
}

TEST(SpectralBisection, KEqualsOneIsIdentity) {
  const data::SbmGraph g = blocks(50, 2, 0.05, 13);
  BisectionConfig cfg;
  cfg.num_clusters = 1;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  EXPECT_EQ(r.splits, 0);
  for (index_t l : r.labels) EXPECT_EQ(l, 0);
}

TEST(SpectralBisection, DisconnectedGraphSplitsAlongComponents) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(100, 2);
  p.p_in = 0.5;
  p.p_out = 0.0;  // two components
  const data::SbmGraph g = data::make_sbm(p);
  BisectionConfig cfg;
  cfg.num_clusters = 2;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  // Component split happens without any eigensolve.
  EXPECT_EQ(r.eigensolves, 0);
  EXPECT_DOUBLE_EQ(
      metrics::adjusted_rand_index(r.labels, g.labels), 1.0);
}

TEST(SpectralBisection, SignAndMedianRulesBothWork) {
  const data::SbmGraph g = blocks(200, 2, 0.01, 17);
  for (const auto rule : {BisectionConfig::SplitRule::kSign,
                          BisectionConfig::SplitRule::kMedian}) {
    BisectionConfig cfg;
    cfg.num_clusters = 2;
    cfg.split = rule;
    const BisectionResult r = spectral_bisection(g.w, cfg);
    // Equal-sized blocks: both rules recover the planted split.
    EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.9)
        << "rule " << static_cast<int>(rule);
  }
}

TEST(SpectralBisection, LabelsAlwaysCoverExactlyK) {
  const data::SbmGraph g = blocks(120, 2, 0.05, 19);
  for (index_t k : {1, 2, 3, 5, 8}) {
    BisectionConfig cfg;
    cfg.num_clusters = k;
    const BisectionResult r = spectral_bisection(g.w, cfg);
    std::set<index_t> used(r.labels.begin(), r.labels.end());
    EXPECT_EQ(static_cast<index_t>(used.size()), k) << "k=" << k;
  }
}

TEST(SpectralBisection, ValidatesArguments) {
  const data::SbmGraph g = blocks(20, 2, 0.05, 23);
  BisectionConfig cfg;
  cfg.num_clusters = 0;
  EXPECT_THROW((void)spectral_bisection(g.w, cfg), std::invalid_argument);
  cfg.num_clusters = 21;
  EXPECT_THROW((void)spectral_bisection(g.w, cfg), std::invalid_argument);
  sparse::Coo rect(2, 3);
  cfg.num_clusters = 2;
  EXPECT_THROW((void)spectral_bisection(rect, cfg), std::invalid_argument);
}

TEST(SpectralBisection, CutQualityBeatsRandomPartition) {
  const data::SbmGraph g = blocks(240, 4, 0.02, 29);
  BisectionConfig cfg;
  cfg.num_clusters = 4;
  const BisectionResult r = spectral_bisection(g.w, cfg);
  const sparse::Csr w = sparse::coo_to_csr(g.w);
  const real ncut = metrics::normalized_cut(w, r.labels, 4);
  Rng rng(5);
  std::vector<index_t> random_labels(240);
  for (auto& l : random_labels) {
    l = static_cast<index_t>(rng.uniform_index(4));
  }
  EXPECT_LT(ncut, metrics::normalized_cut(w, random_labels, 4));
}

}  // namespace
}  // namespace fastsc::core
