// Pipeline-level deadline/cancellation tests: deterministic virtual-budget
// anytime results, un-hit budgets leaving runs untouched, stage budgets,
// external tokens, watchdog-driven anytime results, input validation gates,
// and a trip sweep over every discovered poll site asserting bounded work
// after cancellation and zero leaked device bytes.
#include "core/spectral.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "data/sbm.h"
#include "device/device.h"
#include "fault/fault.h"
#include "metrics/external.h"

namespace fastsc::core {
namespace {

data::SbmGraph easy_graph() {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(200, 4);
  p.p_in = 0.5;
  p.p_out = 0.02;
  p.seed = 3;
  return data::make_sbm(p);
}

SpectralConfig base_config() {
  SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.backend = Backend::kDevice;
  cfg.seed = 42;
  return cfg;
}

class BudgetAnytimeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (cancel::governor().armed()) cancel::governor().disarm();
    cancel::governor().clear_trip();
    cancel::governor().set_recording(false);
    cancel::governor().reset_for_test();
    fault::injector().disarm();
  }
};

// An armed-but-never-hit budget must not perturb the run: byte-identical
// labels vs. the unbudgeted run, no expiry recorded, no leaked device bytes.
TEST_F(BudgetAnytimeTest, UnhitBudgetLeavesLabelsByteIdentical) {
  const data::SbmGraph g = easy_graph();
  const SpectralConfig cfg = base_config();

  device::DeviceContext clean_ctx(1);
  const SpectralResult clean = spectral_cluster_graph(g.w, cfg, &clean_ctx);
  EXPECT_FALSE(clean.budget.enabled);

  SpectralConfig budgeted = cfg;
  budgeted.budget = cancel::RunBudget::parse("total=1e9;total.virtual=1e9");
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, budgeted, &ctx);
  EXPECT_EQ(r.labels, clean.labels);
  EXPECT_TRUE(r.budget.enabled);
  EXPECT_FALSE(r.budget.expired);
  EXPECT_FALSE(r.budget.anytime);
  EXPECT_GT(r.budget.total_virtual_spent_seconds, 0);
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
  // The governor disarmed at scope exit; later runs are unaffected.
  EXPECT_FALSE(cancel::governor().armed());
}

// The tentpole acceptance test.  The budget is charged against the device's
// deterministic virtual transfer timeline, so an expiry mid-eigensolve lands
// at the same poll on every run: the anytime result is exactly reproducible,
// and its partial-Ritz embedding still recovers the planted partition.
TEST_F(BudgetAnytimeTest, VirtualBudgetExpiryYieldsReproducibleAnytimeResult) {
  const data::SbmGraph g = easy_graph();
  const SpectralConfig cfg = base_config();

  // Reference run with an un-hit budget, to read the eigensolver's virtual
  // spend off the BudgetReport.
  SpectralConfig probe = base_config();
  probe.budget = cancel::RunBudget::parse("total.virtual=1e9");
  device::DeviceContext probe_ctx(1);
  const SpectralResult full = spectral_cluster_graph(g.w, probe, &probe_ctx);
  double eig_virtual = 0;
  for (const cancel::StageSpend& s : full.budget.stages) {
    if (s.stage == kStageEigensolver) eig_virtual = s.virtual_spent_seconds;
  }
  ASSERT_GT(eig_virtual, 0) << "eigensolver stage must move data";

  // Now allow only ~75% of that spend: the deadline hits mid-eigensolve.
  SpectralConfig budgeted = base_config();
  budgeted.budget.anytime = true;
  budgeted.budget.stages[kStageEigensolver].virtual_seconds =
      0.75 * eig_virtual;

  device::DeviceContext ctx_a(1);
  const SpectralResult a = spectral_cluster_graph(g.w, budgeted, &ctx_a);
  EXPECT_TRUE(a.budget.expired);
  EXPECT_TRUE(a.budget.anytime);
  EXPECT_EQ(a.budget.reason, "budget.eigensolver.virtual");
  EXPECT_EQ(a.budget.expired_stage, kStageEigensolver);
  EXPECT_FALSE(a.budget.cancel_site.empty());
  ASSERT_EQ(a.labels.size(), static_cast<usize>(g.w.rows));
  EXPECT_EQ(ctx_a.counters().live_bytes, 0u);

  // The partial embedding must still be good enough to cluster.
  EXPECT_GE(metrics::adjusted_rand_index(a.labels, full.labels), 0.8);

  // Deterministic virtual timeline => the anytime result reproduces exactly.
  device::DeviceContext ctx_b(1);
  const SpectralResult b = spectral_cluster_graph(g.w, budgeted, &ctx_b);
  EXPECT_EQ(b.labels, a.labels);
  EXPECT_TRUE(b.budget.anytime);
  EXPECT_EQ(b.budget.reason, a.budget.reason);
  EXPECT_EQ(b.budget.cancel_site, a.budget.cancel_site);
}

// A k-means stage deadline that fires at the first sweep poll: the stage
// catches the CancelledError, enters wrap-up, and reruns to completion, so
// the labels match the unbudgeted run exactly.
TEST_F(BudgetAnytimeTest, KmeansStageBudgetRerunsUnderWrapup) {
  const data::SbmGraph g = easy_graph();
  device::DeviceContext clean_ctx(1);
  const SpectralResult clean =
      spectral_cluster_graph(g.w, base_config(), &clean_ctx);

  SpectralConfig budgeted = base_config();
  budgeted.budget = cancel::RunBudget::parse("kmeans=1e-4");  // 100ns wall
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, budgeted, &ctx);
  EXPECT_TRUE(r.budget.expired);
  EXPECT_TRUE(r.budget.anytime);
  EXPECT_EQ(r.budget.expired_stage, kStageKmeans);
  EXPECT_EQ(r.labels, clean.labels);
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
}

// Sharded runs charge the budget against the *group's* virtual timeline
// (sum over devices).  A virtual deadline that lands mid-exchange must
// still yield a clean, reproducible anytime result.
TEST_F(BudgetAnytimeTest, ShardedVirtualBudgetTripsMidExchange) {
  const data::SbmGraph g = easy_graph();

  // Probe the sharded eigensolver's virtual spend with an un-hit budget.
  SpectralConfig probe = base_config();
  probe.num_devices = 4;
  probe.budget = cancel::RunBudget::parse("total.virtual=1e9");
  const SpectralResult full = spectral_cluster_graph(g.w, probe);
  ASSERT_GT(full.device_counters.bytes_d2d, 0u);
  double eig_virtual = 0;
  for (const cancel::StageSpend& s : full.budget.stages) {
    if (s.stage == kStageEigensolver) eig_virtual = s.virtual_spent_seconds;
  }
  ASSERT_GT(eig_virtual, 0) << "sharded eigensolver stage must move data";

  // Allow ~60% of that spend: the deadline fires at a mid-solve poll while
  // halo/allreduce traffic is in flight on the modeled links.
  SpectralConfig budgeted = base_config();
  budgeted.num_devices = 4;
  budgeted.budget.anytime = true;
  budgeted.budget.stages[kStageEigensolver].virtual_seconds =
      0.6 * eig_virtual;

  const SpectralResult a = spectral_cluster_graph(g.w, budgeted);
  EXPECT_TRUE(a.budget.expired);
  EXPECT_TRUE(a.budget.anytime);
  EXPECT_EQ(a.budget.expired_stage, kStageEigensolver);
  ASSERT_EQ(a.labels.size(), static_cast<usize>(g.w.rows));
  EXPECT_GT(a.device_counters.bytes_d2d, 0u);
  EXPECT_GE(metrics::adjusted_rand_index(a.labels, full.labels), 0.8);

  // The group timeline is deterministic: the trip reproduces exactly.
  const SpectralResult b = spectral_cluster_graph(g.w, budgeted);
  EXPECT_EQ(b.labels, a.labels);
  EXPECT_EQ(b.budget.reason, a.budget.reason);
  EXPECT_EQ(b.budget.cancel_site, a.budget.cancel_site);
}

// anytime=0 turns a budget expiry into a hard CancelledError.
TEST_F(BudgetAnytimeTest, AnytimeDisabledBudgetThrows) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.budget = cancel::RunBudget::parse("total.virtual=1e-9;anytime=0");
  device::DeviceContext ctx(1);
  EXPECT_THROW((void)spectral_cluster_graph(g.w, cfg, &ctx),
               cancel::CancelledError);
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
  EXPECT_FALSE(cancel::governor().armed());
}

// A pre-cancelled external token stops the run at its first poll site.
TEST_F(BudgetAnytimeTest, ExternalTokenCancelsRun) {
  const data::SbmGraph g = easy_graph();
  cancel::CancelSource src;
  src.request_cancel();
  SpectralConfig cfg = base_config();
  cfg.cancel_token = src.token();
  device::DeviceContext ctx(1);
  try {
    (void)spectral_cluster_graph(g.w, cfg, &ctx);
    FAIL() << "expected CancelledError";
  } catch (const cancel::CancelledError& e) {
    EXPECT_FALSE(e.site().empty()) << e.what();
  }
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
}

// Satellite (c): arm a cancellation trip at every poll site the budgeted
// device pipeline actually visits (nth=1, mirroring the fault-site sweep).
// Each trip must surface as CancelledError, leak zero device bytes, and do
// bounded work after the cancellation fired.
TEST_F(BudgetAnytimeTest, TripSweepAtEveryPollSiteCancelsCleanly) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.budget = cancel::RunBudget::parse("total=1e9");  // arm the governor

  cancel::governor().set_recording(true);
  {
    device::DeviceContext ctx(1);
    (void)spectral_cluster_graph(g.w, cfg, &ctx);
  }
  const std::vector<std::string> sites = cancel::governor().sites_seen();
  cancel::governor().set_recording(false);
  cancel::governor().reset_for_test();
  // The device graph pipeline must expose at least the eigensolver wave and
  // the k-means sweep sites.  (par.chunk only appears once hblas loops cross
  // their fork/join threshold; test_cancel covers it directly.)
  EXPECT_GE(sites.size(), 4u) << "poll coverage shrank";
  auto has = [&](const char* s) {
    return std::find(sites.begin(), sites.end(), s) != sites.end();
  };
  ASSERT_TRUE(has("lanczos.matvec"));
  ASSERT_TRUE(has("kmeans.sweep"));

  for (const std::string& site : sites) {
    SCOPED_TRACE("trip at " + site);
    cancel::governor().set_trip(site, 1);
    device::DeviceContext ctx(1);
    bool cancelled = false;
    try {
      (void)spectral_cluster_graph(g.w, cfg, &ctx);
    } catch (const cancel::CancelledError&) {
      cancelled = true;
    }
    EXPECT_TRUE(cancelled) << "trip at " << site << " did not cancel";
    EXPECT_EQ(ctx.counters().live_bytes, 0u)
        << "device bytes leaked unwinding from " << site;
    // Bounded work after the fire: a few polls per worker/queued stream op,
    // not another stage's worth.
    EXPECT_LE(cancel::governor().polls_after_fire(), 256u)
        << "unbounded work after cancellation at " << site;
    cancel::governor().clear_trip();
    cancel::governor().reset_for_test();
  }
}

// Satellite (c)+tentpole: the stall watchdog converts a stalled eigensolver
// (every convergence check vetoed by the lanczos.convergence fault) into a
// deterministic anytime result instead of burning the full restart budget.
TEST_F(BudgetAnytimeTest, StallWatchdogYieldsAnytimeResult) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.max_restarts = 100;
  cfg.faults =
      fault::FaultPlan::parse("site=lanczos.convergence,nth=1,count=0");
  cfg.watchdog.stall_restarts = 3;
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, cfg, &ctx);
  EXPECT_TRUE(r.budget.watchdog_fired);
  EXPECT_TRUE(r.budget.anytime);
  EXPECT_NE(r.budget.reason.find("watchdog.stall"), std::string::npos);
  // Well under the restart budget: the watchdog cut the stall short.
  EXPECT_LT(r.eig_stats.restart_count, 100);
  ASSERT_EQ(r.labels.size(), static_cast<usize>(g.w.rows));
  // The stalled solver had converged numerically (easy graph), so the
  // partial embedding still separates the planted blocks.
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.8);
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
}

// Satellite (b): NaN-poisoning at the public entry points.
TEST_F(BudgetAnytimeTest, GraphInputValidationCatchesPoisonedValues) {
  const data::SbmGraph g = easy_graph();
  sparse::Coo poisoned = g.w;
  poisoned.values[poisoned.values.size() / 2] =
      std::numeric_limits<real>::quiet_NaN();
  SpectralConfig cfg = base_config();
  device::DeviceContext ctx(1);
  try {
    (void)spectral_cluster_graph(poisoned, cfg, &ctx);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("NaN or Inf"), std::string::npos)
        << e.what();
  }

  // The gate is opt-out for trusted inputs: with validation off, the NaN
  // sails past the entry point and whatever downstream stage chokes first
  // reports its own error, not the finiteness check.
  cfg.validate_inputs = false;
  try {
    (void)spectral_cluster_graph(poisoned, cfg, &ctx);
  } catch (const std::exception& e) {
    EXPECT_EQ(std::string(e.what()).find("NaN or Inf"), std::string::npos)
        << e.what();
  }
}

TEST_F(BudgetAnytimeTest, GraphInputValidationCatchesBadIndices) {
  const data::SbmGraph g = easy_graph();
  sparse::Coo bad = g.w;
  bad.col_idx[0] = bad.cols + 7;  // out of range
  SpectralConfig cfg = base_config();
  device::DeviceContext ctx(1);
  EXPECT_THROW((void)spectral_cluster_graph(bad, cfg, &ctx),
               std::invalid_argument);
}

TEST_F(BudgetAnytimeTest, PointsInputValidationCatchesPoisonedCoordinates) {
  // A tiny two-cluster point set with one poisoned coordinate.
  const index_t n = 8, d = 2;
  std::vector<real> x(static_cast<usize>(n * d));
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<usize>(i * d)] = i < n / 2 ? 0.0 : 10.0;
    x[static_cast<usize>(i * d + 1)] = static_cast<real>(i % 4);
  }
  graph::EdgeList edges;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) edges.push(i, j);
  }
  SpectralConfig cfg;
  cfg.num_clusters = 2;
  cfg.backend = Backend::kDevice;
  device::DeviceContext ctx(1);
  x[3] = std::numeric_limits<real>::infinity();
  EXPECT_THROW(
      (void)spectral_cluster_points(x.data(), n, d, edges, cfg, &ctx),
      std::invalid_argument);

  graph::EdgeList bad_edges = edges;
  x[3] = 0.5;
  bad_edges.push(0, n + 3);  // endpoint out of range
  EXPECT_THROW(
      (void)spectral_cluster_points(x.data(), n, d, bad_edges, cfg, &ctx),
      std::invalid_argument);
}

}  // namespace
}  // namespace fastsc::core
