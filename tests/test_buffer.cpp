#include "common/buffer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>

namespace fastsc {
namespace {

TEST(AlignedBuffer, DefaultConstructedIsEmpty) {
  AlignedBuffer<double> buf;
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
}

TEST(AlignedBuffer, ZeroInitializesByDefault) {
  AlignedBuffer<double> buf(128);
  for (usize i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 0.0);
}

TEST(AlignedBuffer, AlignmentIs64Bytes) {
  for (usize n : {1u, 3u, 17u, 1000u}) {
    AlignedBuffer<double> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kBufferAlignment,
              0u);
  }
}

TEST(AlignedBuffer, SizeBytesMatches) {
  AlignedBuffer<double> buf(10);
  EXPECT_EQ(buf.size_bytes(), 80u);
}

TEST(AlignedBuffer, CopyIsDeep) {
  AlignedBuffer<int> a(4);
  std::iota(a.begin(), a.end(), 1);
  AlignedBuffer<int> b(a);
  ASSERT_EQ(b.size(), 4u);
  b[0] = 99;
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[1], 2);
}

TEST(AlignedBuffer, CopyAssignReplacesContents) {
  AlignedBuffer<int> a(2);
  a[0] = 7;
  AlignedBuffer<int> b(5);
  b = a;
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 7);
}

TEST(AlignedBuffer, SelfAssignmentIsSafe) {
  AlignedBuffer<int> a(3);
  a[2] = 5;
  AlignedBuffer<int>& alias = a;
  a = alias;
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 5);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(3);
  a[1] = 42;
  const int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[1], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): spec'd empty
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<int> a(3);
  a[0] = 1;
  AlignedBuffer<int> b(100);
  b = std::move(a);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b[0], 1);
}

TEST(AlignedBuffer, FillSetsEveryElement) {
  AlignedBuffer<double> buf(33, AlignedBuffer<double>::uninitialized);
  buf.fill(2.5);
  for (double v : buf) EXPECT_EQ(v, 2.5);
}

TEST(AlignedBuffer, SpanCoversWholeBuffer) {
  AlignedBuffer<double> buf(5);
  auto s = buf.span();
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.data(), buf.data());
}

TEST(AlignedBuffer, ZeroSizedAllocationsWork) {
  AlignedBuffer<double> buf(0);
  EXPECT_TRUE(buf.empty());
  AlignedBuffer<double> copy(buf);
  EXPECT_TRUE(copy.empty());
}

}  // namespace
}  // namespace fastsc
