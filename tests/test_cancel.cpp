// Unit tests for the deadline/cancellation subsystem (src/common/cancel.h):
// spec grammars, token plumbing, governor causes, the three poll flavours,
// trip/recording test instrumentation, and the RAII scopes.
#include "common/cancel.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/par.h"
#include "core/spectral.h"

namespace fastsc::cancel {
namespace {

class CancelTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (governor().armed()) governor().disarm();
    governor().clear_trip();
    governor().set_recording(false);
    governor().reset_for_test();
  }
};

// --- spec grammars ----------------------------------------------------------

TEST_F(CancelTest, RunBudgetParsesBareNumberAsTotalWall) {
  const RunBudget b = RunBudget::parse("250");
  EXPECT_DOUBLE_EQ(b.total.wall_ms, 250);
  EXPECT_DOUBLE_EQ(b.total.virtual_seconds, 0);
  EXPECT_TRUE(b.anytime);
  EXPECT_TRUE(b.enabled());
}

TEST_F(CancelTest, RunBudgetParsesClauses) {
  const RunBudget b = RunBudget::parse(
      "total=1000;total.virtual=0.5;eigensolver=200;"
      "kmeans.virtual=0.01;anytime=0");
  EXPECT_DOUBLE_EQ(b.total.wall_ms, 1000);
  EXPECT_DOUBLE_EQ(b.total.virtual_seconds, 0.5);
  ASSERT_TRUE(b.stages.contains(core::kStageEigensolver));
  EXPECT_DOUBLE_EQ(b.stages.at(core::kStageEigensolver).wall_ms, 200);
  ASSERT_TRUE(b.stages.contains(core::kStageKmeans));
  EXPECT_DOUBLE_EQ(b.stages.at(core::kStageKmeans).virtual_seconds, 0.01);
  EXPECT_FALSE(b.anytime);
}

TEST_F(CancelTest, RunBudgetToStringRoundTrips) {
  const RunBudget b = RunBudget::parse(
      "total=128;similarity=32;eigensolver.virtual=0.25;anytime=0");
  const RunBudget back = RunBudget::parse(b.to_string());
  EXPECT_DOUBLE_EQ(back.total.wall_ms, b.total.wall_ms);
  EXPECT_EQ(back.anytime, b.anytime);
  ASSERT_TRUE(back.stages.contains(core::kStageSimilarity));
  EXPECT_DOUBLE_EQ(back.stages.at(core::kStageSimilarity).wall_ms, 32);
  ASSERT_TRUE(back.stages.contains(core::kStageEigensolver));
  EXPECT_DOUBLE_EQ(
      back.stages.at(core::kStageEigensolver).virtual_seconds, 0.25);
}

TEST_F(CancelTest, RunBudgetRejectsBadSpecs) {
  EXPECT_THROW((void)RunBudget::parse("bogus_stage=5"), std::invalid_argument);
  EXPECT_THROW((void)RunBudget::parse("total=abc"), std::invalid_argument);
  EXPECT_THROW((void)RunBudget::parse("total=-3"), std::invalid_argument);
  EXPECT_THROW((void)RunBudget::parse("nonsense"), std::invalid_argument);
}

TEST_F(CancelTest, EmptyBudgetIsDisabled) {
  EXPECT_FALSE(RunBudget{}.enabled());
  EXPECT_FALSE(RunBudget::parse("").enabled());
}

TEST_F(CancelTest, WatchdogConfigParsesAndRoundTrips) {
  const WatchdogConfig w = WatchdogConfig::parse(
      "stall_restarts=5,stall_rtol=0.01,heartbeat_ms=100,"
      "transfer_overrun=8;poll_ms=2");
  EXPECT_EQ(w.stall_restarts, 5);
  EXPECT_DOUBLE_EQ(w.stall_rtol, 0.01);
  EXPECT_DOUBLE_EQ(w.heartbeat_timeout_ms, 100);
  EXPECT_DOUBLE_EQ(w.transfer_overrun_factor, 8);
  EXPECT_DOUBLE_EQ(w.poll_interval_ms, 2);
  EXPECT_TRUE(w.enabled());
  const WatchdogConfig back = WatchdogConfig::parse(w.to_string());
  EXPECT_EQ(back.stall_restarts, w.stall_restarts);
  EXPECT_DOUBLE_EQ(back.heartbeat_timeout_ms, w.heartbeat_timeout_ms);
  EXPECT_DOUBLE_EQ(back.transfer_overrun_factor, w.transfer_overrun_factor);
}

TEST_F(CancelTest, WatchdogConfigRejectsBadSpecs) {
  EXPECT_THROW((void)WatchdogConfig::parse("no_such_key=1"),
               std::invalid_argument);
  EXPECT_THROW((void)WatchdogConfig::parse("poll_ms=0"),
               std::invalid_argument);
  EXPECT_FALSE(WatchdogConfig{}.enabled());
}

// --- token ------------------------------------------------------------------

TEST_F(CancelTest, DefaultTokenNeverReportsCancellation) {
  CancelToken t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
}

TEST_F(CancelTest, SourcePropagatesToAllTokenCopies) {
  CancelSource src;
  CancelToken a = src.token();
  CancelToken b = a;  // copies share state
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(a.cancelled());
  src.request_cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_TRUE(src.cancelled());
}

// --- CancelledError ---------------------------------------------------------

TEST_F(CancelTest, CancelledErrorSiteAnnotationIsFirstWins) {
  CancelledError e("run cancelled: test");
  EXPECT_TRUE(e.site().empty());
  e.annotate_site("cg.iteration");
  e.annotate_site("stream.queue");  // ignored: first annotation wins
  EXPECT_EQ(e.site(), "cg.iteration");
  EXPECT_NE(std::string(e.what()).find("[site: cg.iteration]"),
            std::string::npos);
}

// --- governor: disarmed fast path -------------------------------------------

TEST_F(CancelTest, DisarmedPollSitesAreNoOps) {
  EXPECT_FALSE(governor().armed());
  EXPECT_NO_THROW(poll("x"));
  EXPECT_FALSE(pending("x"));
  EXPECT_FALSE(expired("x"));
  EXPECT_FALSE(interrupted("x"));
  EXPECT_NO_THROW(note_progress(1.0));
  EXPECT_NO_THROW(heartbeat());
}

// --- governor: external token (hard cancellation) ---------------------------

TEST_F(CancelTest, ExternalTokenCancelsAtNextPoll) {
  CancelSource src;
  governor().arm(RunBudget{}, WatchdogConfig{}, src.token(), nullptr);
  EXPECT_NO_THROW(poll("warmup"));
  src.request_cancel();
  // Hard cause: all flavours report it, expired() throws instead of
  // returning a soft deadline.
  EXPECT_TRUE(pending("site.a"));
  EXPECT_TRUE(interrupted("site.a"));
  EXPECT_THROW((void)expired("site.a"), CancelledError);
  try {
    poll("site.b");
    FAIL() << "poll should throw after external cancellation";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.site(), "site.b");
  }
  const BudgetReport r = governor().report();
  EXPECT_TRUE(r.enabled);
  EXPECT_FALSE(r.expired);
  EXPECT_FALSE(r.anytime);
  EXPECT_EQ(r.reason, "external");
  // First poll that observed the cancellation is the recorded site.
  EXPECT_EQ(r.cancel_site, "site.a");
}

TEST_F(CancelTest, RequestCancelFiresManually) {
  governor().arm(RunBudget{}, WatchdogConfig{}, CancelToken{}, nullptr);
  EXPECT_FALSE(governor().cancel_requested());
  governor().request_cancel("user hit ^C");
  EXPECT_TRUE(governor().cancel_requested());
  EXPECT_THROW(poll("any"), CancelledError);
  EXPECT_EQ(governor().report().reason, "user hit ^C");
}

// --- governor: virtual budgets (deterministic expiry) ------------------------

TEST_F(CancelTest, VirtualBudgetExpiresSoftlyWhenAnytime) {
  double vclock = 0;
  RunBudget b = RunBudget::parse("total.virtual=1.0;anytime=1");
  governor().arm(b, WatchdogConfig{}, CancelToken{}, [&] { return vclock; });
  governor().begin_stage(core::kStageEigensolver);
  EXPECT_FALSE(expired("lanczos.matvec"));
  vclock = 2.0;  // past the limit on the deterministic virtual timeline
  // Soft expiry: expired() is true, the parallel-chunk check stays false so
  // in-flight primitives complete, pending() tells workers to stop.
  EXPECT_TRUE(expired("lanczos.matvec"));
  EXPECT_FALSE(interrupted("par.chunk"));
  EXPECT_TRUE(pending("stream.queue"));
  EXPECT_TRUE(governor().anytime_allowed());
  const BudgetReport r = governor().report();
  EXPECT_TRUE(r.expired);
  EXPECT_EQ(r.reason, "budget.total.virtual");
  EXPECT_EQ(r.expired_stage, core::kStageEigensolver);
}

TEST_F(CancelTest, VirtualBudgetThrowsWhenAnytimeDisabled) {
  double vclock = 0;
  RunBudget b = RunBudget::parse("total.virtual=1.0;anytime=0");
  governor().arm(b, WatchdogConfig{}, CancelToken{}, [&] { return vclock; });
  vclock = 5.0;
  EXPECT_TRUE(interrupted("par.chunk"));  // hard: tear down parallel work too
  EXPECT_THROW((void)expired("kmeans.sweep"), CancelledError);
  EXPECT_FALSE(governor().anytime_allowed());
}

TEST_F(CancelTest, PerStageVirtualBudgetOnlyChargesItsStage) {
  double vclock = 0;
  RunBudget b = RunBudget::parse("eigensolver.virtual=1.0");
  governor().arm(b, WatchdogConfig{}, CancelToken{}, [&] { return vclock; });
  governor().begin_stage(core::kStageSimilarity);
  vclock = 3.0;  // similarity may burn virtual time freely
  EXPECT_FALSE(expired("similarity.chunk"));
  governor().end_stage();
  governor().begin_stage(core::kStageEigensolver);
  EXPECT_FALSE(expired("lanczos.matvec"));  // stage spend restarts at 0
  vclock = 3.5;
  EXPECT_FALSE(expired("lanczos.matvec"));  // 0.5 spent, limit 1.0
  vclock = 4.5;
  EXPECT_TRUE(expired("lanczos.matvec"));
  const BudgetReport r = governor().report();
  EXPECT_EQ(r.reason, "budget.eigensolver.virtual");
  EXPECT_EQ(r.expired_stage, core::kStageEigensolver);
}

TEST_F(CancelTest, WrapupSilencesAllPollSites) {
  double vclock = 0;
  governor().arm(RunBudget::parse("total.virtual=1.0"), WatchdogConfig{},
                 CancelToken{}, [&] { return vclock; });
  vclock = 2.0;
  EXPECT_TRUE(expired("lanczos.matvec"));
  governor().begin_wrapup("test wrapup");
  EXPECT_TRUE(governor().wrapup_active());
  // Wrap-up must be able to run the rest of the pipeline unimpeded.
  EXPECT_NO_THROW(poll("kmeans.sweep"));
  EXPECT_FALSE(pending("stream.queue"));
  EXPECT_FALSE(expired("kmeans.sweep"));
  EXPECT_FALSE(interrupted("par.chunk"));
  EXPECT_TRUE(governor().report().anytime);
}

// --- governor: stage accounting ---------------------------------------------

TEST_F(CancelTest, ReportAccumulatesStageSpend) {
  double vclock = 0;
  RunBudget b = RunBudget::parse("kmeans=500");
  governor().arm(b, WatchdogConfig{}, CancelToken{}, [&] { return vclock; });
  governor().begin_stage(core::kStageSimilarity);
  vclock = 0.25;
  governor().end_stage();
  governor().begin_stage(core::kStageKmeans);
  const BudgetReport r = governor().report();
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_EQ(r.stages[0].stage, core::kStageSimilarity);
  EXPECT_DOUBLE_EQ(r.stages[0].virtual_spent_seconds, 0.25);
  EXPECT_EQ(r.stages[1].stage, core::kStageKmeans);
  EXPECT_DOUBLE_EQ(r.stages[1].wall_ms_limit, 500);
}

// --- governor: watchdog heuristics ------------------------------------------

TEST_F(CancelTest, StallWatchdogFiresAfterFlatRestarts) {
  WatchdogConfig w;
  w.stall_restarts = 3;
  w.stall_rtol = 1e-3;
  governor().arm(RunBudget{}, w, CancelToken{}, nullptr);
  note_progress(1.0);     // baseline
  note_progress(0.5);     // improving: resets the stall count
  note_progress(0.4999);  // < 0.1% better: flat x1
  note_progress(0.4999);  // flat x2
  EXPECT_FALSE(governor().cancel_requested());
  note_progress(0.4999);  // flat x3 -> fire
  EXPECT_TRUE(governor().cancel_requested());
  const BudgetReport r = governor().report();
  EXPECT_TRUE(r.watchdog_fired);
  EXPECT_NE(r.reason.find("watchdog.stall"), std::string::npos);
  // Watchdog + anytime budget default: partial results are allowed.
  EXPECT_TRUE(governor().anytime_allowed());
}

TEST_F(CancelTest, TransferOverrunWatchdogFires) {
  WatchdogConfig w;
  w.transfer_overrun_factor = 4;
  governor().arm(RunBudget{}, w, CancelToken{}, nullptr);
  note_transfer("copy.h2d", /*measured=*/1e-3, /*modeled=*/1e-3);
  EXPECT_FALSE(governor().cancel_requested());
  note_transfer("copy.h2d", /*measured=*/5e-3, /*modeled=*/1e-3);
  EXPECT_TRUE(governor().cancel_requested());
  EXPECT_NE(governor().report().reason.find("watchdog.transfer_overrun"),
            std::string::npos);
}

TEST_F(CancelTest, HeartbeatWatchdogFiresOnStaleBusyStreams) {
  WatchdogConfig w;
  w.heartbeat_timeout_ms = 30;
  w.poll_interval_ms = 5;
  governor().arm(RunBudget{}, w, CancelToken{}, nullptr);
  stream_busy(true);  // a stream op "starts" and never heartbeats again
  for (int i = 0; i < 200 && !governor().cancel_requested(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stream_busy(false);
  EXPECT_TRUE(governor().cancel_requested());
  EXPECT_EQ(governor().report().reason, "watchdog.heartbeat");
}

// --- test instrumentation: recording + trips --------------------------------

TEST_F(CancelTest, RecordingDiscoversPollSites) {
  governor().set_recording(true);
  poll("a.one");
  (void)pending("b.two");
  (void)expired("c.three");
  (void)interrupted("d.four");
  governor().set_recording(false);
  const std::vector<std::string> sites = governor().sites_seen();
  EXPECT_EQ(sites,
            (std::vector<std::string>{"a.one", "b.two", "c.three", "d.four"}));
}

TEST_F(CancelTest, TripFiresAtExactNthVisit) {
  governor().set_trip("cg.iteration", 3);
  EXPECT_NO_THROW(poll("cg.iteration"));
  EXPECT_NO_THROW(poll("cg.iteration"));
  EXPECT_NO_THROW(poll("other.site"));
  EXPECT_THROW(poll("cg.iteration"), CancelledError);
  // A trip is a hard cancellation: later polls keep throwing and the
  // after-fire counter measures work done past the cancellation point.
  EXPECT_TRUE(interrupted("par.chunk"));
  EXPECT_THROW(poll("cg.iteration"), CancelledError);
  EXPECT_GE(governor().polls_after_fire(), 2u);
  governor().clear_trip();
  governor().reset_for_test();
  EXPECT_EQ(governor().polls_after_fire(), 0u);
  EXPECT_NO_THROW(poll("cg.iteration"));
}

// --- parallel primitives: all-or-throw chunk cancellation --------------------

TEST_F(CancelTest, ParallelForThrowsOnHardCancellationAtChunkBoundary) {
  // Span several cancel strides so workers actually hit the chunk check.
  const index_t n = 4 * 4096 * static_cast<index_t>(
                                   default_thread_pool().worker_count());
  std::vector<int> out(static_cast<usize>(n), 0);
  governor().set_trip("par.chunk", 1);
  EXPECT_THROW(
      parallel_for(index_t{0}, n, [&](index_t i) { out[static_cast<usize>(i)] = 1; }),
      CancelledError);
  governor().clear_trip();
  governor().reset_for_test();
}

TEST_F(CancelTest, ParallelForCompletesThroughSoftExpiry) {
  // A soft (anytime) budget expiry must NOT tear a parallel primitive:
  // workers keep going and the deadline surfaces at the caller's next
  // algorithm boundary instead.
  double vclock = 0;
  governor().arm(RunBudget::parse("total.virtual=1.0"), WatchdogConfig{},
                 CancelToken{}, [&] { return vclock; });
  vclock = 2.0;  // expired before the loop even starts
  const index_t n = 4 * 4096 * static_cast<index_t>(
                                   default_thread_pool().worker_count());
  std::vector<int> out(static_cast<usize>(n), 0);
  EXPECT_NO_THROW(parallel_for(
      index_t{0}, n, [&](index_t i) { out[static_cast<usize>(i)] = 1; }));
  for (index_t i = 0; i < n; i += 4096) {
    ASSERT_EQ(out[static_cast<usize>(i)], 1) << "torn output at " << i;
  }
  EXPECT_TRUE(expired("after.loop"));  // deadline still visible to the caller
}

TEST_F(CancelTest, ParallelReduceNeverLeaksTruncatedPartials) {
  const index_t n = 4 * 4096 * static_cast<index_t>(
                                   default_thread_pool().worker_count());
  // Clean run for the expected value.
  const auto sum = [&](index_t lo, index_t hi) {
    return parallel_reduce(
        lo, hi, index_t{0}, [](index_t i) { return i % 7; },
        [](index_t a, index_t b) { return a + b; });
  };
  const index_t expect = sum(0, n);
  governor().set_trip("par.chunk", 2);
  // Either the reduce completes with the exact value (trip landed after the
  // last chunk) or it throws — a truncated partial sum must never escape.
  try {
    const index_t got = sum(0, n);
    EXPECT_EQ(got, expect);
  } catch (const CancelledError&) {
  }
  governor().clear_trip();
  governor().reset_for_test();
}

// --- RAII scopes ------------------------------------------------------------

TEST_F(CancelTest, RunScopeArmsAndDisarms) {
  {
    RunScope scope(RunBudget::parse("50000"), WatchdogConfig{}, CancelToken{},
                   nullptr);
    EXPECT_TRUE(scope.armed_here());
    EXPECT_TRUE(governor().armed());
  }
  EXPECT_FALSE(governor().armed());
}

TEST_F(CancelTest, NestedRunScopeIsNoOp) {
  RunScope outer(RunBudget::parse("50000"), WatchdogConfig{}, CancelToken{},
                 nullptr);
  EXPECT_TRUE(outer.armed_here());
  {
    RunScope inner(RunBudget::parse("1"), WatchdogConfig{}, CancelToken{},
                   nullptr);
    EXPECT_FALSE(inner.armed_here());
    EXPECT_TRUE(governor().armed());
  }
  // Inner scope exit must not disarm the outer run's budget.
  EXPECT_TRUE(governor().armed());
  EXPECT_DOUBLE_EQ(governor().report().total_wall_ms_limit, 50000);
}

TEST_F(CancelTest, DoubleArmThrows) {
  governor().arm(RunBudget{}, WatchdogConfig{}, CancelToken{}, nullptr);
  EXPECT_THROW(
      governor().arm(RunBudget{}, WatchdogConfig{}, CancelToken{}, nullptr),
      std::logic_error);
}

TEST_F(CancelTest, ResetForTestRequiresDisarmed) {
  governor().arm(RunBudget{}, WatchdogConfig{}, CancelToken{}, nullptr);
  EXPECT_THROW(governor().reset_for_test(), std::logic_error);
}

TEST_F(CancelTest, StageScopeIsNoOpWhenIdle) {
  EXPECT_NO_THROW({ StageScope s(core::kStageKmeans); });
  EXPECT_TRUE(governor().report().stages.empty());
}

}  // namespace
}  // namespace fastsc::cancel
