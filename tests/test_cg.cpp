#include "solvers/cg.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "data/sbm.h"
#include "graph/laplacian.h"
#include "sparse/spmv.h"

namespace fastsc::solvers {
namespace {

/// SPD test matrix: diagonally dominant random symmetric.
struct SpdSystem {
  std::vector<real> a;  // n x n dense
  index_t n;

  explicit SpdSystem(index_t n_, std::uint64_t seed) : n(n_) {
    Rng rng(seed);
    a.assign(static_cast<usize>(n) * static_cast<usize>(n), 0.0);
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < i; ++j) {
        const real v = rng.uniform(-1, 1);
        a[static_cast<usize>(i * n + j)] = v;
        a[static_cast<usize>(j * n + i)] = v;
      }
    }
    for (index_t i = 0; i < n; ++i) {
      real off = 0;
      for (index_t j = 0; j < n; ++j) {
        if (j != i) off += std::fabs(a[static_cast<usize>(i * n + j)]);
      }
      a[static_cast<usize>(i * n + i)] = off + 1.0;  // strict dominance
    }
  }

  void matvec(const real* x, real* y) const {
    for (index_t i = 0; i < n; ++i) {
      real acc = 0;
      for (index_t j = 0; j < n; ++j) {
        acc += a[static_cast<usize>(i * n + j)] * x[j];
      }
      y[i] = acc;
    }
  }
};

class CgSizes : public ::testing::TestWithParam<int> {};

TEST_P(CgSizes, SolvesSpdSystem) {
  const index_t n = GetParam();
  SpdSystem sys(n, static_cast<std::uint64_t>(n));
  Rng rng(9);
  std::vector<real> x_true(static_cast<usize>(n));
  for (real& v : x_true) v = rng.uniform(-1, 1);
  std::vector<real> b(static_cast<usize>(n));
  sys.matvec(x_true.data(), b.data());

  std::vector<real> x(static_cast<usize>(n), 0.0);
  const CgResult r = conjugate_gradient(
      [&](const real* in, real* out) { sys.matvec(in, out); }, n, b.data(),
      x.data());
  ASSERT_TRUE(r.converged);
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<usize>(i)], x_true[static_cast<usize>(i)], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CgSizes, ::testing::Values(1, 2, 10, 50, 200));

TEST(Cg, ZeroRhsGivesZeroSolution) {
  SpdSystem sys(10, 1);
  std::vector<real> b(10, 0.0), x(10, 5.0);
  const CgResult r = conjugate_gradient(
      [&](const real* in, real* out) { sys.matvec(in, out); }, 10, b.data(),
      x.data());
  EXPECT_TRUE(r.converged);
  for (real v : x) EXPECT_EQ(v, 0.0);
}

TEST(Cg, WarmStartReducesIterations) {
  SpdSystem sys(80, 3);
  Rng rng(5);
  std::vector<real> b(80);
  for (real& v : b) v = rng.uniform(-1, 1);
  std::vector<real> x_cold(80, 0.0);
  const CgResult cold = conjugate_gradient(
      [&](const real* in, real* out) { sys.matvec(in, out); }, 80, b.data(),
      x_cold.data());
  // Warm start from the solution: should converge immediately.
  std::vector<real> x_warm = x_cold;
  const CgResult warm = conjugate_gradient(
      [&](const real* in, real* out) { sys.matvec(in, out); }, 80, b.data(),
      x_warm.data());
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, RespectsIterationCap) {
  SpdSystem sys(100, 7);
  Rng rng(11);
  std::vector<real> b(100);
  for (real& v : b) v = rng.uniform(-1, 1);
  std::vector<real> x(100, 0.0);
  CgConfig cfg;
  cfg.max_iters = 2;
  cfg.tol = 1e-15;
  const CgResult r = conjugate_gradient(
      [&](const real* in, real* out) { sys.matvec(in, out); }, 100, b.data(),
      x.data(), cfg);
  EXPECT_LE(r.iterations, 2);
  EXPECT_FALSE(r.converged);
}

TEST(Cg, IndefiniteOperatorThrows) {
  // A = -I is negative definite: p'Ap < 0 on the first step.
  std::vector<real> b{1.0, 2.0};
  std::vector<real> x(2, 0.0);
  EXPECT_THROW(conjugate_gradient(
                   [](const real* in, real* out) {
                     out[0] = -in[0];
                     out[1] = -in[1];
                   },
                   2, b.data(), x.data()),
               std::invalid_argument);
}

TEST(CgJacobi, PreconditioningHelpsIllConditioned) {
  // Strongly scaled diagonal + small coupling: Jacobi fixes the scaling.
  const index_t n = 120;
  std::vector<real> diag(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    diag[static_cast<usize>(i)] = std::pow(10.0, (i % 7));
  }
  auto matvec = [&](const real* in, real* out) {
    for (index_t i = 0; i < n; ++i) {
      out[i] = diag[static_cast<usize>(i)] * in[i];
      if (i > 0) out[i] += 0.1 * in[i - 1];
      if (i + 1 < n) out[i] += 0.1 * in[i + 1];
    }
  };
  Rng rng(13);
  std::vector<real> b(static_cast<usize>(n));
  for (real& v : b) v = rng.uniform(-1, 1);
  std::vector<real> inv_diag(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    inv_diag[static_cast<usize>(i)] = 1.0 / diag[static_cast<usize>(i)];
  }
  std::vector<real> x_plain(static_cast<usize>(n), 0.0);
  std::vector<real> x_prec(static_cast<usize>(n), 0.0);
  CgConfig cfg;
  cfg.max_iters = 5000;
  const CgResult plain =
      conjugate_gradient(matvec, n, b.data(), x_plain.data(), cfg);
  const CgResult prec = conjugate_gradient_jacobi(
      matvec, n, b.data(), inv_diag.data(), x_prec.data(), cfg);
  ASSERT_TRUE(prec.converged);
  EXPECT_LT(prec.iterations, plain.iterations);
}

TEST(Cg, SolvesShiftedLaplacian) {
  // (L + delta I) x = b for a graph Laplacian — the shift-invert inner
  // system shape.
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(100, 4);
  p.p_in = 0.4;
  p.p_out = 0.05;
  const data::SbmGraph g = data::make_sbm(p);
  const sparse::Csr l = graph::unnormalized_laplacian(g.w);
  const real delta = 0.1;
  auto matvec = [&](const real* in, real* out) {
    sparse::csr_mv(l, in, out);
    for (index_t i = 0; i < l.rows; ++i) out[i] += delta * in[i];
  };
  Rng rng(17);
  std::vector<real> b(static_cast<usize>(l.rows));
  for (real& v : b) v = rng.uniform(-1, 1);
  std::vector<real> x(static_cast<usize>(l.rows), 0.0);
  const CgResult r = conjugate_gradient(matvec, l.rows, b.data(), x.data());
  ASSERT_TRUE(r.converged);
  // Verify the residual directly.
  std::vector<real> ax(static_cast<usize>(l.rows));
  matvec(x.data(), ax.data());
  for (index_t i = 0; i < l.rows; ++i) {
    EXPECT_NEAR(ax[static_cast<usize>(i)], b[static_cast<usize>(i)], 1e-6);
  }
}

TEST(CgBlock, MatchesSingleRhsSolvesExactly) {
  const index_t n = 50;
  const index_t nrhs = 4;
  SpdSystem sys(n, 23);
  Rng rng(29);
  std::vector<real> b(static_cast<usize>(nrhs) * static_cast<usize>(n));
  for (real& v : b) v = rng.uniform(-1, 1);

  // Reference: each system solved independently by the scalar CG.
  auto matvec = [&](const real* x, real* y) { sys.matvec(x, y); };
  std::vector<real> x_ref(b.size(), 0.0);
  std::vector<CgResult> ref(static_cast<usize>(nrhs));
  for (index_t i = 0; i < nrhs; ++i) {
    const usize off = static_cast<usize>(i) * static_cast<usize>(n);
    ref[static_cast<usize>(i)] =
        conjugate_gradient(matvec, n, b.data() + off, x_ref.data() + off);
  }

  index_t applies = 0;
  auto block_matvec = [&](const real* x, real* y, index_t nvec) {
    ++applies;
    for (index_t v = 0; v < nvec; ++v) sys.matvec(x + v * n, y + v * n);
  };
  std::vector<real> x_blk(b.size(), 0.0);
  const CgBlockResult blk = conjugate_gradient_block(block_matvec, n, nrhs,
                                                     b.data(), x_blk.data());

  // Per-RHS recurrences are identical scalars, so iterates match bitwise.
  ASSERT_TRUE(blk.all_converged);
  ASSERT_EQ(blk.rhs.size(), static_cast<usize>(nrhs));
  for (index_t i = 0; i < nrhs; ++i) {
    EXPECT_TRUE(blk.rhs[static_cast<usize>(i)].converged);
    EXPECT_EQ(blk.rhs[static_cast<usize>(i)].iterations,
              ref[static_cast<usize>(i)].iterations)
        << "rhs " << i;
  }
  EXPECT_EQ(x_blk, x_ref);
  // The whole point: far fewer operator launches than sum of per-RHS
  // iteration counts (one batched apply per joint iteration).
  EXPECT_EQ(blk.block_applies,
            static_cast<index_t>(blk.iterations) + 1);  // +1 initial residual
}

TEST(CgBlock, HandlesZeroRhsAndZeroVector) {
  const index_t n = 20;
  SpdSystem sys(n, 31);
  auto block_matvec = [&](const real* x, real* y, index_t nvec) {
    for (index_t v = 0; v < nvec; ++v) sys.matvec(x + v * n, y + v * n);
  };
  // nrhs = 0: trivially converged, no work.
  const CgBlockResult empty =
      conjugate_gradient_block(block_matvec, n, 0, nullptr, nullptr);
  EXPECT_TRUE(empty.all_converged);
  EXPECT_EQ(empty.iterations, 0);

  // One zero RHS mixed with a real one: x for the zero system must be 0.
  Rng rng(37);
  std::vector<real> b(2 * static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    b[static_cast<usize>(n) + static_cast<usize>(i)] = rng.uniform(-1, 1);
  }
  std::vector<real> x(b.size(), 5.0);  // nonzero guess to prove the clear
  const CgBlockResult r =
      conjugate_gradient_block(block_matvec, n, 2, b.data(), x.data());
  ASSERT_TRUE(r.all_converged);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(x[static_cast<usize>(i)], 0.0);
  EXPECT_EQ(r.rhs[0].iterations, 0);
  EXPECT_GT(r.rhs[1].iterations, 0);
}

}  // namespace
}  // namespace fastsc::solvers
