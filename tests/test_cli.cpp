#include "common/cli.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace fastsc {
namespace {

bool parse(CliParser& cli, std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return cli.parse(static_cast<int>(args.size()), args.data());
}

TEST(CliParser, DefaultsWhenNoFlags) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {}));
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 1.5), 1.5);
  EXPECT_EQ(cli.get_string("name", "abc"), "abc");
  EXPECT_FALSE(cli.get_bool("flag", false));
}

TEST(CliParser, EqualsForm) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n=7", "--eps=0.25", "--name=xyz"}));
  EXPECT_EQ(cli.get_int("n", 0), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.25);
  EXPECT_EQ(cli.get_string("name", ""), "xyz");
}

TEST(CliParser, SpaceForm) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n", "9", "--name", "hello"}));
  EXPECT_EQ(cli.get_int("n", 0), 9);
  EXPECT_EQ(cli.get_string("name", ""), "hello");
}

TEST(CliParser, BareFlagIsTrue) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--verbose"}));
  EXPECT_TRUE(cli.get_bool("verbose", false));
}

TEST(CliParser, BooleanSpellings) {
  for (const char* t : {"true", "1", "yes"}) {
    CliParser cli("test");
    ASSERT_TRUE(parse(cli, {"--f", t}));
    EXPECT_TRUE(cli.get_bool("f", false)) << t;
  }
  for (const char* f : {"false", "0", "no"}) {
    CliParser cli("test");
    ASSERT_TRUE(parse(cli, {"--f", f}));
    EXPECT_FALSE(cli.get_bool("f", true)) << f;
  }
}

TEST(CliParser, HelpReturnsFalse) {
  CliParser cli("test");
  EXPECT_FALSE(parse(cli, {"--help"}));
  CliParser cli2("test");
  EXPECT_FALSE(parse(cli2, {"-h"}));
}

TEST(CliParser, NegativeNumbersAsValues) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n=-5", "--eps=-0.5"}));
  EXPECT_EQ(cli.get_int("n", 0), -5);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), -0.5);
}

TEST(CliParser, MalformedIntegerThrows) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n=abc"}));
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
}

TEST(CliParser, MalformedBooleanThrows) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--f=maybe"}));
  EXPECT_THROW((void)cli.get_bool("f", false), std::invalid_argument);
}

TEST(CliParser, NonFlagArgumentThrows) {
  CliParser cli("test");
  EXPECT_THROW(parse(cli, {"positional"}), std::invalid_argument);
}

TEST(CliParser, ProvidedDetectsExplicitFlags) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n=1"}));
  EXPECT_TRUE(cli.provided("n"));
  EXPECT_FALSE(cli.provided("m"));
}

TEST(CliParser, CheckUnknownThrowsOnTypo) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--nodes=5"}));
  (void)cli.get_int("n", 1);  // registers "n", not "nodes"
  EXPECT_THROW(cli.check_unknown(), std::invalid_argument);
}

TEST(CliParser, CheckUnknownPassesWhenAllRegistered) {
  CliParser cli("test");
  ASSERT_TRUE(parse(cli, {"--n=5"}));
  (void)cli.get_int("n", 1);
  EXPECT_NO_THROW(cli.check_unknown());
}

}  // namespace
}  // namespace fastsc
