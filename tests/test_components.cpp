#include "graph/components.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/sbm.h"
#include "sparse/convert.h"

namespace fastsc::graph {
namespace {

sparse::Coo two_triangles_and_isolated() {
  // Component A: {0,1,2} triangle; component B: {3,4} edge; {5} isolated.
  sparse::Coo w(6, 6);
  auto add = [&](index_t a, index_t b) {
    w.push(a, b, 1.0);
    w.push(b, a, 1.0);
  };
  add(0, 1);
  add(1, 2);
  add(0, 2);
  add(3, 4);
  return w;
}

TEST(ConnectedComponents, LabelsComponentsAndSizes) {
  const ComponentInfo info = connected_components(two_triangles_and_isolated());
  EXPECT_EQ(info.count, 3);
  EXPECT_EQ(info.sizes[static_cast<usize>(
                info.component_of[0])],
            3);
  EXPECT_EQ(info.component_of[0], info.component_of[1]);
  EXPECT_EQ(info.component_of[0], info.component_of[2]);
  EXPECT_EQ(info.component_of[3], info.component_of[4]);
  EXPECT_NE(info.component_of[0], info.component_of[3]);
  EXPECT_NE(info.component_of[5], info.component_of[0]);
  EXPECT_NE(info.component_of[5], info.component_of[3]);
}

TEST(ConnectedComponents, LargestPicksTriangle) {
  const ComponentInfo info = connected_components(two_triangles_and_isolated());
  EXPECT_EQ(info.sizes[static_cast<usize>(info.largest())], 3);
}

TEST(ConnectedComponents, CsrAndCooAgree) {
  const sparse::Coo coo = two_triangles_and_isolated();
  const ComponentInfo a = connected_components(coo);
  const ComponentInfo b = connected_components(sparse::coo_to_csr(coo));
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.component_of, b.component_of);
}

TEST(ConnectedComponents, FullyConnectedIsOneComponent) {
  data::SbmParams p;
  p.block_sizes = {30};
  p.p_in = 1.0;
  const data::SbmGraph g = data::make_sbm(p);
  const ComponentInfo info = connected_components(g.w);
  EXPECT_EQ(info.count, 1);
  EXPECT_EQ(info.sizes[0], 30);
}

TEST(ConnectedComponents, DisconnectedBlocksAreComponents) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(60, 4);
  p.p_in = 1.0;
  p.p_out = 0.0;  // no cross edges -> 4 components
  const data::SbmGraph g = data::make_sbm(p);
  const ComponentInfo info = connected_components(g.w);
  EXPECT_EQ(info.count, 4);
  for (index_t s : info.sizes) EXPECT_EQ(s, 15);
}

TEST(ConnectedComponents, EmptyGraphIsAllSingletons) {
  sparse::Coo w(5, 5);
  const ComponentInfo info = connected_components(w);
  EXPECT_EQ(info.count, 5);
}

TEST(ConnectedComponents, ZeroWeightEdgesDoNotConnect) {
  sparse::Coo w(3, 3);
  w.push(0, 1, 0.0);
  w.push(1, 0, 0.0);
  const ComponentInfo info = connected_components(w);
  EXPECT_EQ(info.count, 3);
}

TEST(LargestComponent, ExtractsInducedSubgraph) {
  std::vector<index_t> old_of_new;
  const sparse::Coo sub =
      largest_component(two_triangles_and_isolated(), old_of_new);
  EXPECT_EQ(sub.rows, 3);
  EXPECT_EQ(old_of_new, (std::vector<index_t>{0, 1, 2}));
  EXPECT_EQ(sub.nnz(), 6);  // triangle, both directions
}

TEST(LargestComponent, WholeGraphWhenConnected) {
  sparse::Coo w(3, 3);
  w.push(0, 1, 1);
  w.push(1, 0, 1);
  w.push(1, 2, 1);
  w.push(2, 1, 1);
  std::vector<index_t> old_of_new;
  const sparse::Coo sub = largest_component(w, old_of_new);
  EXPECT_EQ(sub.rows, 3);
  EXPECT_EQ(sub.nnz(), 4);
}

TEST(ConnectedComponents, RejectsNonSquare) {
  sparse::Coo w(2, 3);
  EXPECT_THROW((void)connected_components(w), std::invalid_argument);
}

}  // namespace
}  // namespace fastsc::graph
