#include "blas/dblas.h"

#include <gtest/gtest.h>

#include <vector>

#include "blas/hblas.h"
#include "common/rng.h"
#include "device/algorithms.h"

namespace fastsc::dblas {
namespace {

using device::DeviceBuffer;
using device::DeviceContext;

class DblasTest : public ::testing::TestWithParam<int> {
 protected:
  DeviceContext ctx_{static_cast<usize>(GetParam())};
  Rng rng_{99};

  DeviceBuffer<real> upload(const std::vector<real>& host) {
    return DeviceBuffer<real>(ctx_, std::span<const real>(host));
  }

  std::vector<real> random_vec(usize n) {
    std::vector<real> v(n);
    for (real& x : v) x = rng_.uniform() - 0.5;
    return v;
  }
};

TEST_P(DblasTest, DotMatchesHost) {
  const auto x = random_vec(3001);
  const auto y = random_vec(3001);
  auto dx = upload(x);
  auto dy = upload(y);
  EXPECT_NEAR(dot(ctx_, 3001, dx.data(), dy.data()),
              hblas::dot(3001, x.data(), y.data()), 1e-9);
}

TEST_P(DblasTest, Nrm2MatchesHost) {
  const auto x = random_vec(513);
  auto dx = upload(x);
  EXPECT_NEAR(nrm2(ctx_, 513, dx.data()), hblas::nrm2(513, x.data()), 1e-10);
}

TEST_P(DblasTest, AxpyMatchesHost) {
  const auto x = random_vec(777);
  auto y = random_vec(777);
  auto dx = upload(x);
  auto dy = upload(y);
  axpy(ctx_, 777, 2.5, dx.data(), dy.data());
  hblas::axpy(777, 2.5, x.data(), y.data());
  const auto h = dy.to_host();
  for (usize i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], y[i], 1e-12);
}

TEST_P(DblasTest, ScalAndCopy) {
  const auto x = random_vec(100);
  auto dx = upload(x);
  DeviceBuffer<real> dy(ctx_, 100);
  copy(ctx_, 100, dx.data(), dy.data());
  scal(ctx_, 100, -1.0, dy.data());
  const auto h = dy.to_host();
  for (usize i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(h[i], -x[i]);
}

TEST_P(DblasTest, GemvMatchesHost) {
  const index_t m = 37, n = 53;
  const auto a = random_vec(static_cast<usize>(m * n));
  const auto x = random_vec(static_cast<usize>(n));
  auto y = random_vec(static_cast<usize>(m));
  auto da = upload(a);
  auto dx = upload(x);
  auto dy = upload(y);
  gemv(ctx_, m, n, 1.5, da.data(), n, dx.data(), 0.5, dy.data());
  hblas::gemv(m, n, 1.5, a.data(), n, x.data(), 0.5, y.data());
  const auto h = dy.to_host();
  for (usize i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], y[i], 1e-10);
}

TEST_P(DblasTest, GemmMatchesHost) {
  const index_t m = 45, n = 33, k = 27;
  const auto a = random_vec(static_cast<usize>(m * k));
  const auto b = random_vec(static_cast<usize>(k * n));
  auto c = random_vec(static_cast<usize>(m * n));
  auto da = upload(a);
  auto db = upload(b);
  auto dc = upload(c);
  gemm(ctx_, m, n, k, 2.0, da.data(), k, db.data(), n, -1.0, dc.data(), n);
  hblas::gemm(m, n, k, 2.0, a.data(), k, b.data(), n, -1.0, c.data(), n);
  const auto h = dc.to_host();
  for (usize i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], c[i], 1e-10);
}

TEST_P(DblasTest, GemmNtMatchesHost) {
  const index_t m = 50, n = 20, k = 8;
  const auto a = random_vec(static_cast<usize>(m * k));
  const auto b = random_vec(static_cast<usize>(n * k));
  auto c = random_vec(static_cast<usize>(m * n));
  auto da = upload(a);
  auto db = upload(b);
  auto dc = upload(c);
  gemm_nt(ctx_, m, n, k, -2.0, da.data(), k, db.data(), k, 1.0, dc.data(), n);
  hblas::gemm_nt(m, n, k, -2.0, a.data(), k, b.data(), k, 1.0, c.data(), n);
  const auto h = dc.to_host();
  for (usize i = 0; i < h.size(); ++i) EXPECT_NEAR(h[i], c[i], 1e-10);
}

TEST_P(DblasTest, RowSquaredNormsMatchesManual) {
  const index_t m = 13, n = 7;
  const auto a = random_vec(static_cast<usize>(m * n));
  auto da = upload(a);
  DeviceBuffer<real> out(ctx_, static_cast<usize>(m));
  row_squared_norms(ctx_, m, n, da.data(), n, out.data());
  const auto h = out.to_host();
  for (index_t i = 0; i < m; ++i) {
    real expect = 0;
    for (index_t j = 0; j < n; ++j) {
      expect += a[static_cast<usize>(i * n + j)] *
                a[static_cast<usize>(i * n + j)];
    }
    EXPECT_NEAR(h[static_cast<usize>(i)], expect, 1e-12);
  }
}

TEST_P(DblasTest, KernelsAreMetered) {
  const auto before = ctx_.counters().kernel_launches;
  const auto x = random_vec(10);
  auto dx = upload(x);
  scal(ctx_, 10, 2.0, dx.data());
  EXPECT_GT(ctx_.counters().kernel_launches, before);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DblasTest, ::testing::Values(1, 3, 8));

}  // namespace
}  // namespace fastsc::dblas
