// Graceful-degradation tests for the device pipeline: per-site fault sweep
// (every injectable allocation/transfer site, nth=1, must leave the
// clustering unchanged), total-outage host fallback, policy gating, the
// kFailed partial-results path, golden determinism of repeated runs, and
// the degradation section of the run report JSON.
#include "core/spectral.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/report.h"
#include "data/sbm.h"
#include "device/device.h"
#include "fault/fault.h"
#include "lanczos/rci.h"
#include "metrics/external.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::core {
namespace {

/// A well-separated 4-block SBM (Syn200 shape): every backend and every
/// degradation rung recovers the same planted partition, which is what lets
/// the sweep assert ARI == 1 against the fault-free labels.
data::SbmGraph easy_graph() {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(200, 4);
  p.p_in = 0.5;
  p.p_out = 0.02;
  p.seed = 3;
  return data::make_sbm(p);
}

SpectralConfig base_config() {
  SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.backend = Backend::kDevice;
  cfg.seed = 42;
  return cfg;
}

class DegradationTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::injector().disarm();
    fault::injector().set_recording(false);
  }
};

TEST_F(DegradationTest, FaultFreeRunRecoversPlantedPartition) {
  const data::SbmGraph g = easy_graph();
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, base_config(), &ctx);
  EXPECT_TRUE(r.eig_converged);
  EXPECT_FALSE(r.degradation.degraded);
  EXPECT_EQ(r.device_counters.transfer_retries, 0u);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

// The tentpole acceptance test: discover every fault site the device
// pipeline consults (recording mode), then re-run once per site with a
// single injected fault at its first occurrence.  Transfer faults must be
// absorbed by the retry; the allocation fault must walk the ladder.  In
// every case the clustering must match the fault-free run exactly.
TEST_F(DegradationTest, SingleFaultAtEverySiteLeavesClusteringUnchanged) {
  const data::SbmGraph g = easy_graph();
  const SpectralConfig cfg = base_config();

  device::DeviceContext clean_ctx(1);
  const SpectralResult clean = spectral_cluster_graph(g.w, cfg, &clean_ctx);
  ASSERT_GT(metrics::adjusted_rand_index(clean.labels, g.labels), 0.95);

  fault::injector().set_recording(true);
  {
    device::DeviceContext ctx(1);
    (void)spectral_cluster_graph(g.w, cfg, &ctx);
  }
  const auto sites = fault::injector().sites_seen();
  fault::injector().set_recording(false);

  std::vector<std::string> device_sites;
  for (const auto& [site, stats] : sites) {
    if (stats.occurrences == 0) continue;
    // stream.hang is a watchdog scenario, not a transient fault: with no
    // watchdog armed it deliberately wedges until its failsafe cap and then
    // degrades.  The cancel suite (watchdog_smoke, test_budget_anytime)
    // owns that path.
    if (site == "stream.hang") continue;
    if (site.starts_with("device.") || site.starts_with("copy.") ||
        site.starts_with("stream.")) {
      device_sites.push_back(site);
    }
  }
  // The async graph pipeline must expose at least the allocation site and
  // one transfer site in each direction.
  ASSERT_TRUE(sites.contains("device.alloc"));
  ASSERT_GE(device_sites.size(), 3u);

  for (const std::string& site : device_sites) {
    SpectralConfig faulty = cfg;
    faulty.faults = fault::FaultPlan::parse("site=" + site + ",nth=1");
    device::DeviceContext ctx(1);
    const SpectralResult r = spectral_cluster_graph(g.w, faulty, &ctx);
    EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(r.labels, clean.labels),
                     1.0)
        << "clustering changed under a single fault at site " << site;
    if (site != "device.alloc") {
      // One transient transfer fault: absorbed by the retry, bit-identical
      // labels, and no ladder rung taken.
      EXPECT_EQ(r.labels, clean.labels) << "site " << site;
      EXPECT_EQ(r.device_counters.transfer_retries, 1u) << "site " << site;
      EXPECT_FALSE(r.degradation.degraded) << "site " << site;
    } else {
      EXPECT_TRUE(r.degradation.degraded);
    }
  }
}

TEST_F(DegradationTest, TotalAllocationOutageFallsBackToHost) {
  const data::SbmGraph g = easy_graph();
  device::DeviceContext clean_ctx(1);
  const SpectralResult clean =
      spectral_cluster_graph(g.w, base_config(), &clean_ctx);

  SpectralConfig cfg = base_config();
  cfg.faults = fault::FaultPlan::parse("site=device.alloc,nth=1,count=0");
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, cfg, &ctx);

  EXPECT_TRUE(r.degradation.degraded);
  bool host_eig = false;
  bool host_kmeans = false;
  for (const DegradationEvent& e : r.degradation.events) {
    if (e.action == "host-eigensolver") host_eig = true;
    if (e.action == "host-kmeans") host_kmeans = true;
    EXPECT_FALSE(e.reason.empty());
  }
  EXPECT_TRUE(host_eig);
  EXPECT_TRUE(host_kmeans);
  EXPECT_TRUE(r.eig_converged);
  EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(r.labels, clean.labels), 1.0);
}

TEST_F(DegradationTest, DisabledPolicyRethrows) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.degradation.enabled = false;
  cfg.faults = fault::FaultPlan::parse("site=device.alloc,nth=1,count=0");
  device::DeviceContext ctx(1);
  EXPECT_THROW((void)spectral_cluster_graph(g.w, cfg, &ctx),
               device::DeviceOutOfMemory);
}

TEST_F(DegradationTest, ExhaustedLadderRethrows) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.degradation.allow_sync_fallback = false;
  cfg.degradation.allow_host_fallback = false;
  cfg.faults = fault::FaultPlan::parse("site=device.alloc,nth=1,count=0");
  device::DeviceContext ctx(1);
  EXPECT_THROW((void)spectral_cluster_graph(g.w, cfg, &ctx),
               device::DeviceOutOfMemory);
}

// ---------------------------------------------------------------------------
// kFailed partial results (satellite): an exhausted restart budget is not an
// error — the solver hands back its best partial eigenpairs with residuals,
// and the pipeline still clusters with them.
// ---------------------------------------------------------------------------

TEST_F(DegradationTest, FailedSolveReturnsPartialEigenpairsWithResiduals) {
  Rng rng(5);
  const index_t n = 60;
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.push(i, i, rng.uniform(0, 2));
    const auto j = static_cast<index_t>(rng.uniform_index(n));
    if (j != i) {
      const real v = rng.uniform(-1, 1);
      coo.push(i, j, v);
      coo.push(j, i, v);
    }
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr a = sparse::coo_to_csr(coo);

  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 4;
  cfg.ncv = 9;
  cfg.tol = 1e-16;  // unreachable: force restart-budget exhaustion
  cfg.max_restarts = 1;
  const auto eig = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(a, x, y); });
  EXPECT_FALSE(eig.converged);
  ASSERT_EQ(eig.eigenvalues.size(), 4u);  // best estimates up to nev
  ASSERT_EQ(eig.residuals.size(), eig.eigenvalues.size());
  ASSERT_EQ(eig.eigenvectors.size(), 4u * static_cast<usize>(n));
  for (const real r : eig.residuals) {
    EXPECT_TRUE(std::isfinite(r));
    EXPECT_GE(r, 0);
  }
  EXPECT_EQ(eig.stats.restart_count, 1);
}

TEST_F(DegradationTest, FailedSolveStillRunsKmeansDownstream) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  // Every convergence check is vetoed, so the solver exhausts its (small)
  // restart budget and reports failure; the pipeline must keep going.
  cfg.max_restarts = 3;
  cfg.faults =
      fault::FaultPlan::parse("site=lanczos.convergence,nth=1,count=0");
  device::DeviceContext ctx(1);
  const SpectralResult r = spectral_cluster_graph(g.w, cfg, &ctx);
  EXPECT_FALSE(r.eig_converged);
  EXPECT_EQ(r.eig_stats.restart_count, 3);
  EXPECT_EQ(r.labels.size(), static_cast<usize>(g.w.rows));
  EXPECT_EQ(r.eigenvalues.size(), 4u);
  EXPECT_EQ(r.embedding.size(), static_cast<usize>(g.w.rows) * 4u);
  EXPECT_GT(r.kmeans_iterations, 0);
  // The stalled solver had actually converged numerically (easy graph), so
  // its partial embedding still separates the planted blocks.
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

// ---------------------------------------------------------------------------
// Golden determinism (satellite).
// ---------------------------------------------------------------------------

TEST_F(DegradationTest, RepeatedRunsAreByteIdentical) {
  const data::SbmGraph g = easy_graph();
  for (const bool async : {false, true}) {
    SpectralConfig cfg = base_config();
    cfg.async_pipeline = async;
    device::DeviceContext ctx_a(1);
    device::DeviceContext ctx_b(1);
    const SpectralResult a = spectral_cluster_graph(g.w, cfg, &ctx_a);
    const SpectralResult b = spectral_cluster_graph(g.w, cfg, &ctx_b);
    EXPECT_EQ(a.labels, b.labels);
    EXPECT_EQ(a.eigenvalues, b.eigenvalues);
    EXPECT_EQ(a.embedding, b.embedding);
    EXPECT_EQ(a.eig_stats.matvec_count, b.eig_stats.matvec_count);
    EXPECT_EQ(a.eig_stats.restart_count, b.eig_stats.restart_count);
    EXPECT_EQ(a.kmeans_iterations, b.kmeans_iterations);
    EXPECT_EQ(a.device_counters.bytes_h2d, b.device_counters.bytes_h2d);
    EXPECT_EQ(a.device_counters.bytes_d2h, b.device_counters.bytes_d2h);
    EXPECT_EQ(a.device_counters.transfers_h2d,
              b.device_counters.transfers_h2d);
  }
}

TEST_F(DegradationTest, FaultInjectedRunsAreReproducible) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  // Mixed plan: a probability rule on the h2d transfer sites plus a
  // one-shot allocation fault — the same plan seed must reproduce the same
  // retries, the same ladder decisions, and the same labels.
  cfg.faults = fault::FaultPlan::parse(
      "site=device.alloc,nth=2;site=copy.h2d,p=0.05,count=0;seed=17");
  device::DeviceContext ctx_a(1);
  device::DeviceContext ctx_b(1);
  const SpectralResult a = spectral_cluster_graph(g.w, cfg, &ctx_a);
  const SpectralResult b = spectral_cluster_graph(g.w, cfg, &ctx_b);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.device_counters.transfer_retries,
            b.device_counters.transfer_retries);
  ASSERT_EQ(a.degradation.events.size(), b.degradation.events.size());
  for (usize i = 0; i < a.degradation.events.size(); ++i) {
    EXPECT_EQ(a.degradation.events[i].stage, b.degradation.events[i].stage);
    EXPECT_EQ(a.degradation.events[i].action, b.degradation.events[i].action);
  }
}

// ---------------------------------------------------------------------------
// Run report: the degradation section is part of the JSON schema.
// ---------------------------------------------------------------------------

TEST_F(DegradationTest, RunReportCarriesDegradationSection) {
  const data::SbmGraph g = easy_graph();
  SpectralConfig cfg = base_config();
  cfg.faults = fault::FaultPlan::parse(
      "site=device.alloc,nth=1,count=0;site=copy.h2d,nth=1");
  device::DeviceContext ctx(1);
  SpectralResult r = spectral_cluster_graph(g.w, cfg, &ctx);
  ASSERT_TRUE(r.degradation.degraded);

  BackendRuns runs;
  runs.dataset = "syn200";
  runs.nodes = g.w.rows;
  runs.edges = g.w.nnz();
  runs.clusters = 4;
  runs.runs.emplace_back(Backend::kDevice, std::move(r));
  RunReport report;
  report.bench = "test";
  report.datasets.push_back(std::move(runs));

  std::ostringstream os;
  write_run_report_json(report, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"degradation\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
  EXPECT_NE(json.find("host-eigensolver"), std::string::npos);
  EXPECT_NE(json.find("\"transfer_retries\""), std::string::npos);
  EXPECT_NE(json.find("\"events\""), std::string::npos);
}

}  // namespace
}  // namespace fastsc::core
