#include "lanczos/dense_eig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fastsc::lanczos {
namespace {

std::vector<real> random_symmetric(index_t n, Rng& rng) {
  std::vector<real> a(static_cast<usize>(n) * static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      const real v = rng.uniform(-1, 1);
      a[static_cast<usize>(i * n + j)] = v;
      a[static_cast<usize>(j * n + i)] = v;
    }
  }
  return a;
}

TEST(DenseEig, RejectsAsymmetricInput) {
  std::vector<real> a{1, 2, 3, 4};  // 2x2, a[0][1] != a[1][0]
  EXPECT_THROW((void)dense_sym_eig(a.data(), 2), std::invalid_argument);
}

TEST(DenseEig, DiagonalMatrix) {
  std::vector<real> a{3, 0, 0, 0, 1, 0, 0, 0, 2};
  const auto r = dense_sym_eig(a.data(), 3);
  EXPECT_NEAR(r.eigenvalues[0], 1, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 2, 1e-12);
  EXPECT_NEAR(r.eigenvalues[2], 3, 1e-12);
}

TEST(DenseEig, TwoByTwoAnalytic) {
  // [[a, b], [b, c]] eigenvalues: (a+c)/2 +- sqrt(((a-c)/2)^2 + b^2)
  std::vector<real> a{2, 1, 1, 2};
  const auto r = dense_sym_eig(a.data(), 2);
  EXPECT_NEAR(r.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(r.eigenvalues[1], 3.0, 1e-12);
}

TEST(DenseEig, HandlesTinySizes) {
  const auto r0 = dense_sym_eig(nullptr, 0);
  EXPECT_TRUE(r0.eigenvalues.empty());
  std::vector<real> a1{7.5};
  const auto r1 = dense_sym_eig(a1.data(), 1);
  ASSERT_EQ(r1.eigenvalues.size(), 1u);
  EXPECT_DOUBLE_EQ(r1.eigenvalues[0], 7.5);
  EXPECT_DOUBLE_EQ(r1.eigenvectors[0], 1.0);
}

class DenseEigRandom : public ::testing::TestWithParam<int> {};

TEST_P(DenseEigRandom, ResidualsAndOrthonormality) {
  const index_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7 + 1);
  const auto a = random_symmetric(n, rng);
  const auto r = dense_sym_eig(a.data(), n);

  ASSERT_EQ(r.eigenvalues.size(), static_cast<usize>(n));
  EXPECT_TRUE(std::is_sorted(r.eigenvalues.begin(), r.eigenvalues.end()));

  // A z_k = lambda_k z_k.
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = 0; i < n; ++i) {
      real av = 0;
      for (index_t j = 0; j < n; ++j) {
        av += a[static_cast<usize>(i * n + j)] *
              r.eigenvectors[static_cast<usize>(j * n + k)];
      }
      EXPECT_NEAR(av,
                  r.eigenvalues[static_cast<usize>(k)] *
                      r.eigenvectors[static_cast<usize>(i * n + k)],
                  1e-9);
    }
  }
  // Z^T Z = I.
  for (index_t k = 0; k < n; ++k) {
    for (index_t l = k; l < n; ++l) {
      real dotp = 0;
      for (index_t i = 0; i < n; ++i) {
        dotp += r.eigenvectors[static_cast<usize>(i * n + k)] *
                r.eigenvectors[static_cast<usize>(i * n + l)];
      }
      EXPECT_NEAR(dotp, k == l ? 1.0 : 0.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DenseEigRandom,
                         ::testing::Values(2, 3, 4, 7, 12, 25, 50));

TEST(DenseEig, TraceAndFrobeniusPreserved) {
  Rng rng(123);
  const index_t n = 20;
  const auto a = random_symmetric(n, rng);
  const auto r = dense_sym_eig(a.data(), n);
  real trace = 0, frob2 = 0;
  for (index_t i = 0; i < n; ++i) {
    trace += a[static_cast<usize>(i * n + i)];
    for (index_t j = 0; j < n; ++j) {
      frob2 += a[static_cast<usize>(i * n + j)] *
               a[static_cast<usize>(i * n + j)];
    }
  }
  real lam_sum = 0, lam2_sum = 0;
  for (real lam : r.eigenvalues) {
    lam_sum += lam;
    lam2_sum += lam * lam;
  }
  EXPECT_NEAR(lam_sum, trace, 1e-9);
  EXPECT_NEAR(lam2_sum, frob2, 1e-8);
}

TEST(DenseEig, RankOneMatrix) {
  // a = u u^T has one nonzero eigenvalue ||u||^2.
  const index_t n = 6;
  Rng rng(9);
  std::vector<real> u(static_cast<usize>(n));
  real norm2 = 0;
  for (real& v : u) {
    v = rng.uniform(-1, 1);
    norm2 += v * v;
  }
  std::vector<real> a(static_cast<usize>(n) * static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      a[static_cast<usize>(i * n + j)] =
          u[static_cast<usize>(i)] * u[static_cast<usize>(j)];
    }
  }
  const auto r = dense_sym_eig(a.data(), n);
  EXPECT_NEAR(r.eigenvalues.back(), norm2, 1e-10);
  for (usize k = 0; k + 1 < static_cast<usize>(n); ++k) {
    EXPECT_NEAR(r.eigenvalues[k], 0.0, 1e-10);
  }
}

}  // namespace
}  // namespace fastsc::lanczos
