#include "device/device.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace fastsc::device {
namespace {

TEST(TransferModel, MonotoneInBytes) {
  TransferModel m;
  EXPECT_LT(m.seconds_for(1000), m.seconds_for(1000000));
}

TEST(TransferModel, LatencyFloorApplies) {
  TransferModel m;
  EXPECT_GE(m.seconds_for(0), m.latency_seconds);
}

TEST(TransferModel, BandwidthMath) {
  TransferModel m;
  m.bandwidth_bytes_per_sec = 1e9;
  m.efficiency = 1.0;
  m.latency_seconds = 0;
  EXPECT_DOUBLE_EQ(m.seconds_for(1000000000), 1.0);
}

TEST(DeviceBuffer, RoundTripPreservesData) {
  DeviceContext ctx(2);
  std::vector<double> host(1000);
  std::iota(host.begin(), host.end(), 0.0);
  DeviceBuffer<double> dev(ctx, std::span<const double>(host));
  std::vector<double> back(1000);
  dev.copy_to_host(std::span<double>(back));
  EXPECT_EQ(host, back);
}

TEST(DeviceBuffer, TransfersAreMetered) {
  DeviceContext ctx(1);
  std::vector<double> host(100, 1.0);
  DeviceBuffer<double> dev(ctx, std::span<const double>(host));
  dev.copy_to_host(std::span<double>(host));
  const auto& c = ctx.counters();
  EXPECT_EQ(c.bytes_h2d, 800u);
  EXPECT_EQ(c.bytes_d2h, 800u);
  EXPECT_EQ(c.transfers_h2d, 1u);
  EXPECT_EQ(c.transfers_d2h, 1u);
  EXPECT_GT(c.modeled_transfer_seconds, 0.0);
}

TEST(DeviceBuffer, ModeledTimeMatchesModel) {
  DeviceContext ctx(1);
  std::vector<double> host(1000, 0.0);
  DeviceBuffer<double> dev(ctx, std::span<const double>(host));
  EXPECT_DOUBLE_EQ(ctx.counters().modeled_transfer_seconds,
                   ctx.transfer_model().seconds_for(8000));
}

TEST(DeviceBuffer, AllocationAccounting) {
  DeviceContext ctx(1);
  {
    DeviceBuffer<double> a(ctx, 100);
    EXPECT_EQ(ctx.counters().live_bytes, 800u);
    {
      DeviceBuffer<double> b(ctx, 50);
      EXPECT_EQ(ctx.counters().live_bytes, 1200u);
      EXPECT_EQ(ctx.counters().peak_bytes, 1200u);
    }
    EXPECT_EQ(ctx.counters().live_bytes, 800u);
  }
  EXPECT_EQ(ctx.counters().live_bytes, 0u);
  EXPECT_EQ(ctx.counters().peak_bytes, 1200u);
  EXPECT_EQ(ctx.counters().total_allocations, 2u);
}

TEST(DeviceBuffer, MoveDoesNotDoubleFree) {
  DeviceContext ctx(1);
  DeviceBuffer<int> a(ctx, 10);
  DeviceBuffer<int> b(std::move(a));
  EXPECT_EQ(b.size(), 10u);
  EXPECT_EQ(ctx.counters().live_bytes, 40u);
  DeviceBuffer<int> c(ctx, 5);
  c = std::move(b);
  EXPECT_EQ(ctx.counters().live_bytes, 40u);
}

TEST(DeviceBuffer, SizeMismatchThrows) {
  DeviceContext ctx(1);
  DeviceBuffer<double> dev(ctx, 10);
  std::vector<double> wrong(5);
  EXPECT_THROW(dev.copy_from_host(std::span<const double>(wrong)),
               std::invalid_argument);
  EXPECT_THROW(dev.copy_to_host(std::span<double>(wrong)),
               std::invalid_argument);
}

TEST(Launch, CoversAllThreadIds) {
  DeviceContext ctx(4);
  const index_t n = 12345;
  std::vector<std::atomic<int>> hits(static_cast<usize>(n));
  launch(ctx, n, [&](index_t i) { hits[static_cast<usize>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Launch, MetersKernelTimeAndCount) {
  DeviceContext ctx(1);
  launch(ctx, 10, [](index_t) {});
  launch(ctx, 10, [](index_t) {});
  EXPECT_EQ(ctx.counters().kernel_launches, 2u);
  EXPECT_GE(ctx.counters().kernel_seconds, 0.0);
}

TEST(Launch, ZeroThreadsIsANoop) {
  DeviceContext ctx(2);
  bool ran = false;
  launch(ctx, 0, [&](index_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(ctx.counters().kernel_launches, 1u);
}

TEST(LaunchConfig, GridCoversThreads) {
  LaunchConfig cfg;
  cfg.block = 256;
  EXPECT_EQ(cfg.grid_for(1), 1);
  EXPECT_EQ(cfg.grid_for(256), 1);
  EXPECT_EQ(cfg.grid_for(257), 2);
}

TEST(DeviceContext, DescriptionMentionsWorkersAndLink) {
  DeviceContext ctx(3);
  const std::string d = ctx.description();
  EXPECT_NE(d.find("3 worker"), std::string::npos);
  EXPECT_NE(d.find("PCIe"), std::string::npos);
}

TEST(DeviceContext, CountersResetClearsEverything) {
  DeviceContext ctx(1);
  std::vector<double> host(10, 0.0);
  DeviceBuffer<double> dev(ctx, std::span<const double>(host));
  ctx.counters().reset();
  EXPECT_EQ(ctx.counters().bytes_h2d, 0u);
  EXPECT_EQ(ctx.counters().modeled_transfer_seconds, 0.0);
}

TEST(DeviceMemoryLimit, ThrowsWhenBudgetExceeded) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  DeviceBuffer<double> a(ctx, 100);  // 800 bytes, fits
  EXPECT_THROW(DeviceBuffer<double>(ctx, 100), DeviceOutOfMemory);
  // Releasing frees budget.
  a = DeviceBuffer<double>();
  EXPECT_NO_THROW(DeviceBuffer<double>(ctx, 100));
}

TEST(DeviceMemoryLimit, ZeroMeansUnlimited) {
  DeviceContext ctx(1);
  EXPECT_EQ(ctx.memory_limit(), 0u);
  EXPECT_NO_THROW(DeviceBuffer<double>(ctx, 1 << 16));
}

TEST(DeviceMemoryLimit, ExactFitIsAllowed) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(800);
  EXPECT_NO_THROW(DeviceBuffer<double>(ctx, 100));
}

TEST(DefaultDevice, IsSingleton) {
  EXPECT_EQ(&default_device(), &default_device());
}

}  // namespace
}  // namespace fastsc::device
