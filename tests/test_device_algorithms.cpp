#include "device/algorithms.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace fastsc::device {
namespace {

class DeviceAlgorithms : public ::testing::TestWithParam<int> {
 protected:
  DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(DeviceAlgorithms, FillAndSequence) {
  DeviceBuffer<double> buf(ctx_, 100);
  fill(ctx_, buf.data(), 100, 3.5);
  for (double v : buf.to_host()) EXPECT_EQ(v, 3.5);
  DeviceBuffer<index_t> seq(ctx_, 100);
  sequence(ctx_, seq.data(), 100, index_t{5});
  const auto h = seq.to_host();
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(h[static_cast<usize>(i)], i + 5);
}

TEST_P(DeviceAlgorithms, UnaryTransform) {
  std::vector<double> host(257);
  std::iota(host.begin(), host.end(), 0.0);
  DeviceBuffer<double> in(ctx_, std::span<const double>(host));
  DeviceBuffer<double> out(ctx_, host.size());
  transform(ctx_, in.data(), out.data(), static_cast<index_t>(host.size()),
            [](double v) { return 2 * v + 1; });
  const auto h = out.to_host();
  for (usize i = 0; i < h.size(); ++i) EXPECT_EQ(h[i], 2.0 * host[i] + 1);
}

TEST_P(DeviceAlgorithms, BinaryTransform) {
  std::vector<double> a(100, 2.0), b(100, 3.0);
  DeviceBuffer<double> da(ctx_, std::span<const double>(a));
  DeviceBuffer<double> db(ctx_, std::span<const double>(b));
  DeviceBuffer<double> out(ctx_, 100);
  transform(ctx_, da.data(), db.data(), out.data(), 100,
            [](double x, double y) { return x * y; });
  for (double v : out.to_host()) EXPECT_EQ(v, 6.0);
}

TEST_P(DeviceAlgorithms, Gather) {
  std::vector<double> src{10, 20, 30, 40};
  std::vector<index_t> map{3, 0, 2, 1};
  DeviceBuffer<double> dsrc(ctx_, std::span<const double>(src));
  DeviceBuffer<index_t> dmap(ctx_, std::span<const index_t>(map));
  DeviceBuffer<double> out(ctx_, 4);
  gather(ctx_, dmap.data(), dsrc.data(), out.data(), 4);
  EXPECT_EQ(out.to_host(), (std::vector<double>{40, 10, 30, 20}));
}

TEST_P(DeviceAlgorithms, ReduceSumMatchesSerial) {
  Rng rng(5);
  std::vector<double> host(4097);
  double expect = 0;
  for (double& v : host) {
    v = rng.uniform() - 0.5;
    expect += v;
  }
  DeviceBuffer<double> dev(ctx_, std::span<const double>(host));
  EXPECT_NEAR(reduce_sum(ctx_, dev.data(), static_cast<index_t>(host.size())),
              expect, 1e-9);
}

TEST_P(DeviceAlgorithms, ReduceEmptyReturnsInit) {
  EXPECT_EQ(reduce(ctx_, static_cast<const double*>(nullptr), 0, 7.0,
                   [](double a, double b) { return a + b; }),
            7.0);
}

TEST_P(DeviceAlgorithms, MinElementIndexFindsFirstMinimum) {
  std::vector<double> host{5, 3, 1, 4, 1, 9};
  DeviceBuffer<double> dev(ctx_, std::span<const double>(host));
  EXPECT_EQ(min_element_index(ctx_, dev.data(), 6), 2);
  EXPECT_EQ(min_element_index(ctx_, dev.data(), 0), -1);
}

TEST_P(DeviceAlgorithms, ExclusiveScanMatchesSerial) {
  Rng rng(7);
  const index_t n = 1000;
  std::vector<double> host(static_cast<usize>(n));
  for (double& v : host) v = std::floor(rng.uniform() * 10);
  DeviceBuffer<double> in(ctx_, std::span<const double>(host));
  DeviceBuffer<double> out(ctx_, static_cast<usize>(n));
  const double total = exclusive_scan(ctx_, in.data(), out.data(), n);
  const auto h = out.to_host();
  double acc = 0;
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(h[static_cast<usize>(i)], acc);
    acc += host[static_cast<usize>(i)];
  }
  EXPECT_DOUBLE_EQ(total, acc);
}

TEST_P(DeviceAlgorithms, InclusiveScanMatchesSerial) {
  std::vector<double> host{1, 2, 3, 4};
  DeviceBuffer<double> in(ctx_, std::span<const double>(host));
  DeviceBuffer<double> out(ctx_, 4);
  const double total = inclusive_scan(ctx_, in.data(), out.data(), 4);
  EXPECT_EQ(out.to_host(), (std::vector<double>{1, 3, 6, 10}));
  EXPECT_DOUBLE_EQ(total, 10.0);
}

TEST_P(DeviceAlgorithms, SortByKeyMatchesStdStableSort) {
  Rng rng(11);
  const index_t n = 5000;
  std::vector<index_t> keys(static_cast<usize>(n));
  std::vector<index_t> vals(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    keys[static_cast<usize>(i)] =
        static_cast<index_t>(rng.uniform_index(100));
    vals[static_cast<usize>(i)] = i;
  }
  std::vector<std::pair<index_t, index_t>> expect(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    expect[static_cast<usize>(i)] = {keys[static_cast<usize>(i)], i};
  }
  std::stable_sort(expect.begin(), expect.end(),
                   [](auto& a, auto& b) { return a.first < b.first; });

  DeviceBuffer<index_t> dk(ctx_, std::span<const index_t>(keys));
  DeviceBuffer<index_t> dv(ctx_, std::span<const index_t>(vals));
  sort_by_key(ctx_, dk.data(), dv.data(), n);
  const auto hk = dk.to_host();
  const auto hv = dv.to_host();
  for (index_t i = 0; i < n; ++i) {
    EXPECT_EQ(hk[static_cast<usize>(i)], expect[static_cast<usize>(i)].first);
    EXPECT_EQ(hv[static_cast<usize>(i)], expect[static_cast<usize>(i)].second);
  }
}

TEST_P(DeviceAlgorithms, SortByKeyHandlesTinyInputs) {
  DeviceBuffer<index_t> k(ctx_, 1);
  DeviceBuffer<index_t> v(ctx_, 1);
  fill(ctx_, k.data(), 1, index_t{5});
  fill(ctx_, v.data(), 1, index_t{9});
  sort_by_key(ctx_, k.data(), v.data(), 1);
  EXPECT_EQ(k.to_host()[0], 5);
  sort_by_key(ctx_, k.data(), v.data(), 0);  // no-op
}

TEST_P(DeviceAlgorithms, ReduceByKeySegments) {
  std::vector<index_t> keys{0, 0, 2, 2, 2, 5};
  std::vector<double> vals{1, 2, 3, 4, 5, 6};
  DeviceBuffer<index_t> dk(ctx_, std::span<const index_t>(keys));
  DeviceBuffer<double> dv(ctx_, std::span<const double>(vals));
  DeviceBuffer<index_t> ok(ctx_, 6);
  DeviceBuffer<double> ov(ctx_, 6);
  const index_t segs = reduce_by_key(ctx_, dk.data(), dv.data(), 6, ok.data(),
                                     ov.data());
  ASSERT_EQ(segs, 3);
  const auto hk = ok.to_host();
  const auto hv = ov.to_host();
  EXPECT_EQ(hk[0], 0);
  EXPECT_DOUBLE_EQ(hv[0], 3);
  EXPECT_EQ(hk[1], 2);
  EXPECT_DOUBLE_EQ(hv[1], 12);
  EXPECT_EQ(hk[2], 5);
  EXPECT_DOUBLE_EQ(hv[2], 6);
}

TEST_P(DeviceAlgorithms, CountIf) {
  std::vector<index_t> host(1000);
  for (index_t i = 0; i < 1000; ++i) host[static_cast<usize>(i)] = i % 3;
  DeviceBuffer<index_t> dev(ctx_, std::span<const index_t>(host));
  EXPECT_EQ(count_if(ctx_, dev.data(), 1000,
                     [](index_t v) { return v == 0; }),
            334);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeviceAlgorithms,
                         ::testing::Values(1, 2, 4, 7));

}  // namespace
}  // namespace fastsc::device
