// DeviceGroup and row-sharding property tests: partition cover/disjointness,
// the merge-path nnz balance bound, exact halo index sets, peer-copy
// semantics, and the counters/attribution conservation rollup.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "data/powerlaw.h"
#include "device/device_group.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "sparse/convert.h"
#include "sparse/shard.h"

namespace fastsc {
namespace {

using device::DeviceCounters;
using device::DeviceGroup;
using device::DeviceGroupConfig;
using sparse::Csr;
using sparse::RowPartition;
using sparse::make_row_partition;

DeviceGroup make_group(usize n) {
  DeviceGroupConfig gc;
  gc.num_devices = n;
  return DeviceGroup(gc);
}

/// A CSR with the given per-row nnz pattern (columns cycle over the width).
Csr csr_from_row_nnz(const std::vector<index_t>& row_nnz, index_t cols) {
  Csr a(static_cast<index_t>(row_nnz.size()), cols);
  for (usize r = 0; r < row_nnz.size(); ++r) {
    a.row_ptr[r + 1] = a.row_ptr[r] + row_nnz[r];
    for (index_t j = 0; j < row_nnz[r]; ++j) {
      a.col_idx.push_back((static_cast<index_t>(r) + j) % cols);
      a.values.push_back(1.0 + static_cast<real>(j));
    }
  }
  return a;
}

void check_partition_invariants(const RowPartition& part, index_t rows,
                                index_t parts) {
  ASSERT_EQ(part.cuts.size(), static_cast<usize>(parts) + 1);
  EXPECT_EQ(part.cuts.front(), 0);
  EXPECT_EQ(part.cuts.back(), rows);
  for (index_t p = 0; p < parts; ++p) {
    EXPECT_LE(part.begin(p), part.end(p));  // disjoint, ordered
  }
  // Cover: the concatenation of [begin, end) ranges is exactly [0, rows).
  index_t covered = 0;
  for (index_t p = 0; p < parts; ++p) {
    EXPECT_EQ(part.begin(p), covered);
    covered += part.size(p);
  }
  EXPECT_EQ(covered, rows);
  // owner() agrees with the ranges.
  for (index_t r = 0; r < rows; ++r) {
    const index_t p = part.owner(r);
    EXPECT_GE(r, part.begin(p));
    EXPECT_LT(r, part.end(p));
  }
}

/// The whole-row merge-path bound (shard.h): with align == 1 every part
/// holds at most the even merge-path share plus one boundary row.
void check_nnz_bound(const Csr& a, index_t parts) {
  const RowPartition part = make_row_partition(a.row_ptr.data(), a.rows, parts);
  check_partition_invariants(part, a.rows, parts);
  index_t max_row = 0;
  for (index_t r = 0; r < a.rows; ++r) max_row = std::max(max_row, a.row_nnz(r));
  const index_t share =
      (a.rows + a.nnz() + parts - 1) / parts;  // ceil((rows + nnz) / parts)
  index_t max_part = 0;
  for (index_t p = 0; p < parts; ++p) {
    const index_t nnz_p = a.row_ptr[static_cast<usize>(part.end(p))] -
                          a.row_ptr[static_cast<usize>(part.begin(p))];
    max_part = std::max(max_part, nnz_p);
    EXPECT_LE(nnz_p, share + max_row) << "part " << p << " of " << parts;
  }
  EXPECT_EQ(part.max_part_nnz, max_part);
  EXPECT_EQ(part.max_row_nnz, max_row);
}

TEST(RowPartition, CoversAndDisjointAcrossShapes) {
  for (const index_t rows : {1, 2, 7, 64, 1000}) {
    for (const index_t parts : {1, 2, 3, 8}) {
      std::vector<index_t> nnz(static_cast<usize>(rows));
      for (usize r = 0; r < nnz.size(); ++r) {
        nnz[r] = static_cast<index_t>(r % 5);
      }
      const Csr a = csr_from_row_nnz(nnz, std::max<index_t>(rows, 5));
      const RowPartition part =
          make_row_partition(a.row_ptr.data(), rows, parts);
      check_partition_invariants(part, rows, parts);
    }
  }
}

TEST(RowPartition, MorePartsThanRows) {
  const Csr a = csr_from_row_nnz({3, 1, 2}, 4);
  const RowPartition part = make_row_partition(a.row_ptr.data(), a.rows, 8);
  check_partition_invariants(part, a.rows, 8);
}

TEST(RowPartition, NnzBoundUniform) {
  std::vector<index_t> nnz(500, 4);
  const Csr a = csr_from_row_nnz(nnz, 500);
  for (const index_t parts : {2, 3, 4, 7, 8}) check_nnz_bound(a, parts);
}

TEST(RowPartition, NnzBoundHubRow) {
  // One hub row carrying half the entries: the bound must still hold, and
  // the hub row must be owned whole by exactly one part.
  std::vector<index_t> nnz(200, 2);
  nnz[57] = 400;
  const Csr a = csr_from_row_nnz(nnz, 600);
  for (const index_t parts : {2, 4, 8}) check_nnz_bound(a, parts);
}

TEST(RowPartition, NnzBoundEmptyRows) {
  // Alternating empty rows plus a fully-empty tail.
  std::vector<index_t> nnz(300, 0);
  for (usize r = 0; r < 150; r += 2) nnz[r] = 5;
  const Csr a = csr_from_row_nnz(nnz, 300);
  for (const index_t parts : {2, 4, 8}) check_nnz_bound(a, parts);
}

TEST(RowPartition, NnzBoundPowerlaw) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 800, .avg_degree = 10.0, .seed = 3});
  const Csr a = sparse::coo_to_csr(g.w);
  for (const index_t parts : {2, 4, 8}) check_nnz_bound(a, parts);
}

TEST(RowPartition, AlignedCutsRoundToBlocks) {
  std::vector<index_t> nnz(1000, 3);
  const Csr a = csr_from_row_nnz(nnz, 1000);
  const RowPartition part =
      make_row_partition(a.row_ptr.data(), a.rows, 4, 256);
  check_partition_invariants(part, a.rows, 4);
  for (index_t p = 1; p < 4; ++p) {
    EXPECT_TRUE(part.cuts[static_cast<usize>(p)] % 256 == 0 ||
                part.cuts[static_cast<usize>(p)] == a.rows);
  }
}

TEST(ShardCsr, HaloIsExactlyTheOutOfRangeColumns) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 600, .avg_degree = 8.0, .seed = 11});
  const Csr a = sparse::coo_to_csr(g.w);
  DeviceGroup group = make_group(4);
  const sparse::ShardedCsr sp = sparse::shard_csr(group, a);
  ASSERT_EQ(sp.shards.size(), 4u);
  for (const sparse::DeviceCsrShard& sh : sp.shards) {
    // Expected halo: the distinct columns referenced by local rows that lie
    // outside the shard's own row range.
    std::set<index_t> expected;
    for (index_t r = sh.row_begin; r < sh.row_end; ++r) {
      for (index_t e = a.row_ptr[static_cast<usize>(r)];
           e < a.row_ptr[static_cast<usize>(r) + 1]; ++e) {
        const index_t c = a.col_idx[static_cast<usize>(e)];
        if (c < sh.row_begin || c >= sh.row_end) expected.insert(c);
      }
    }
    const std::vector<index_t> want(expected.begin(), expected.end());
    EXPECT_EQ(sh.halo, want) << "device " << sh.device;

    // Peer segments: sorted, covering, and each column inside its peer's
    // row range (the own-range segment is empty by construction).
    ASSERT_EQ(sh.halo_peer_begin.size(), sp.shards.size() + 1);
    EXPECT_EQ(sh.halo_peer_begin.front(), 0u);
    EXPECT_EQ(sh.halo_peer_begin.back(), sh.halo.size());
    for (usize e = 0; e < sp.shards.size(); ++e) {
      if (static_cast<index_t>(e) == sh.device) {
        EXPECT_EQ(sh.halo_peer_begin[e], sh.halo_peer_begin[e + 1]);
        continue;
      }
      for (usize i = sh.halo_peer_begin[e]; i < sh.halo_peer_begin[e + 1];
           ++i) {
        EXPECT_GE(sh.halo[i], sp.part.begin(static_cast<index_t>(e)));
        EXPECT_LT(sh.halo[i], sp.part.end(static_cast<index_t>(e)));
      }
    }

    // Interior/frontier rows partition the local rows, classified by
    // whether every referenced column lies in the own range.
    EXPECT_EQ(sh.interior_rows.size() + sh.frontier_rows.size(),
              static_cast<usize>(sh.rows()));
    for (const index_t r : sh.interior_rows) {
      for (index_t e = a.row_ptr[static_cast<usize>(r)];
           e < a.row_ptr[static_cast<usize>(r) + 1]; ++e) {
        const index_t c = a.col_idx[static_cast<usize>(e)];
        EXPECT_TRUE(c >= sh.row_begin && c < sh.row_end);
      }
    }
    for (const index_t r : sh.frontier_rows) {
      bool outside = false;
      for (index_t e = a.row_ptr[static_cast<usize>(r)];
           e < a.row_ptr[static_cast<usize>(r) + 1]; ++e) {
        const index_t c = a.col_idx[static_cast<usize>(e)];
        if (c < sh.row_begin || c >= sh.row_end) outside = true;
      }
      EXPECT_TRUE(outside) << "frontier row " << r << " has no halo column";
    }
  }
}

TEST(DeviceGroup, CopyPeerMovesDataAndMetersDestination) {
  DeviceGroup group = make_group(2);
  std::vector<real> host{1.5, -2.0, 3.25, 0.0, 7.0};
  device::DeviceBuffer<real> src(group.device(0),
                                 std::span<const real>(host));
  device::DeviceBuffer<real> dst(group.device(1), host.size());

  const DeviceCounters before = group.device(1).counters_snapshot();
  group.copy_peer(0, 1, src.data(), dst.data(), host.size(), "d2d.halo");
  const DeviceCounters after = group.device(1).counters_snapshot();

  EXPECT_EQ(dst.to_host(), host);
  EXPECT_EQ(after.transfers_d2d - before.transfers_d2d, 1u);
  EXPECT_EQ(after.bytes_d2d - before.bytes_d2d, host.size() * sizeof(real));
  EXPECT_GT(after.modeled_d2d_seconds, before.modeled_d2d_seconds);
  // The D2D leg occupies the destination's link engine: the slice is part
  // of modeled_transfer_seconds, not a separate pool.
  EXPECT_NEAR(after.modeled_transfer_seconds - before.modeled_transfer_seconds,
              after.modeled_d2d_seconds - before.modeled_d2d_seconds, 1e-12);
  // The source context saw no transfer at all.
  EXPECT_EQ(group.device(0).counters_snapshot().transfers_d2d, 0u);
}

TEST(DeviceGroup, CopyPeerAbsorbsInjectedTransientFault) {
  fault::FaultPlan plan = fault::FaultPlan::parse("site=d2d.halo,nth=1");
  fault::ArmScope armed(plan);
  DeviceGroup group = make_group(2);
  std::vector<real> host{4.0, 5.0, 6.0};
  device::DeviceBuffer<real> src(group.device(0),
                                 std::span<const real>(host));
  device::DeviceBuffer<real> dst(group.device(1), host.size());
  group.copy_peer(0, 1, src.data(), dst.data(), host.size(), "d2d.halo");
  EXPECT_EQ(dst.to_host(), host);
  const DeviceCounters c = group.device(1).counters_snapshot();
  EXPECT_EQ(c.transfer_retries, 1u);
  EXPECT_EQ(c.transfers_d2d, 1u);  // the fault fired before any metering
}

TEST(DeviceGroup, ModelPeerTransferChargesWithoutData) {
  DeviceGroup group = make_group(3);
  const double before = group.device(2).counters_snapshot().modeled_d2d_seconds;
  group.model_peer_transfer(0, 2, 1 << 20, "d2d.allreduce");
  const DeviceCounters c = group.device(2).counters_snapshot();
  EXPECT_EQ(c.bytes_d2d, usize{1} << 20);
  EXPECT_EQ(c.transfers_d2d, 1u);
  EXPECT_GT(c.modeled_d2d_seconds, before);
}

TEST(DeviceGroup, D2dObservabilityCountersAccumulate) {
  const std::int64_t t0 = obs::metrics().counter("d2d.transfers").value();
  const std::int64_t b0 = obs::metrics().counter("d2d.bytes").value();
  DeviceGroup group = make_group(2);
  group.model_peer_transfer(0, 1, 100, "d2d.allreduce");
  group.model_peer_transfer(1, 0, 50, "d2d.allreduce");
  EXPECT_EQ(obs::metrics().counter("d2d.transfers").value(), t0 + 2);
  EXPECT_EQ(obs::metrics().counter("d2d.bytes").value(), b0 + 150);
}

TEST(DeviceGroup, RollupReconcilesWithPerDeviceCounters) {
  DeviceGroup group = make_group(3);
  // Exercise every traffic class: H2D/D2H on each device, real peer copies,
  // modeled peer transfers, and a kernel launch per device.
  std::vector<real> host(1024, 1.0);
  std::vector<device::DeviceBuffer<real>> bufs;
  for (usize d = 0; d < group.size(); ++d) {
    bufs.emplace_back(group.device(d), std::span<const real>(host));
    real* p = bufs.back().data();
    device::launch(
        group.device(d), static_cast<index_t>(host.size()),
        [p](index_t i) { p[i] *= 2; }, device::tagged("test.scale"));
    (void)bufs.back().to_host();
  }
  group.copy_peer(0, 1, bufs[0].data(), bufs[1].data(), host.size(),
                  "d2d.halo");
  group.copy_peer(1, 2, bufs[1].data(), bufs[2].data(), host.size(),
                  "d2d.halo");
  group.model_peer_transfer(2, 0, 4096, "d2d.allreduce");

  DeviceCounters manual;
  for (usize d = 0; d < group.size(); ++d) {
    device::accumulate_counters(manual, group.device(d).counters_snapshot());
  }
  const DeviceCounters rollup = group.rollup_counters();
  EXPECT_EQ(rollup.bytes_h2d, manual.bytes_h2d);
  EXPECT_EQ(rollup.bytes_d2h, manual.bytes_d2h);
  EXPECT_EQ(rollup.bytes_d2d, manual.bytes_d2d);
  EXPECT_EQ(rollup.transfers_h2d, manual.transfers_h2d);
  EXPECT_EQ(rollup.transfers_d2h, manual.transfers_d2h);
  EXPECT_EQ(rollup.transfers_d2d, manual.transfers_d2d);
  EXPECT_DOUBLE_EQ(rollup.modeled_transfer_seconds,
                   manual.modeled_transfer_seconds);
  EXPECT_DOUBLE_EQ(rollup.modeled_d2d_seconds, manual.modeled_d2d_seconds);
  EXPECT_DOUBLE_EQ(rollup.kernel_seconds, manual.kernel_seconds);
  EXPECT_EQ(rollup.kernel_launches, manual.kernel_launches);
  EXPECT_EQ(rollup.total_allocations, manual.total_allocations);
  EXPECT_EQ(rollup.bytes_d2d, 2 * host.size() * sizeof(real) + 4096);

  // Attribution rollup reconciles with the counters: per-site sums account
  // for the same transfers and bytes the counters recorded.
  const obs::SiteStats attr = group.rollup_attribution();
  EXPECT_EQ(attr.transfers_d2d, rollup.transfers_d2d);
  EXPECT_EQ(attr.bytes_d2d, rollup.bytes_d2d);
  EXPECT_EQ(attr.transfers_h2d, rollup.transfers_h2d);
  EXPECT_EQ(attr.transfers_d2h, rollup.transfers_d2h);
  EXPECT_EQ(attr.kernel_launches, rollup.kernel_launches);

  // counters_delta subtracts the traffic fields, including the d2d ones.
  const DeviceCounters zero = device::counters_delta(rollup, rollup);
  EXPECT_EQ(zero.bytes_d2d, 0u);
  EXPECT_EQ(zero.transfers_d2d, 0u);
  EXPECT_DOUBLE_EQ(zero.modeled_d2d_seconds, 0.0);
  EXPECT_DOUBLE_EQ(zero.modeled_transfer_seconds, 0.0);
}

TEST(DeviceGroup, PerDeviceTraceTracksAreDistinct) {
  DeviceGroup group = make_group(3);
  EXPECT_EQ(group.device(0).link_tid(), obs::kLinkTid);
  EXPECT_EQ(group.device(0).compute_tid(), obs::kComputeTid);
  std::set<std::uint32_t> tids;
  for (usize d = 0; d < group.size(); ++d) {
    tids.insert(group.device(d).link_tid());
    tids.insert(group.device(d).compute_tid());
    EXPECT_EQ(group.device(d).compute_tid(), group.device(d).link_tid() + 1);
  }
  EXPECT_EQ(tids.size(), 2 * group.size());
}

}  // namespace
}  // namespace fastsc
