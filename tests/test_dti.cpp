#include "data/dti.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/similarity.h"

namespace fastsc::data {
namespace {

DtiParams small_params() {
  DtiParams p;
  p.nx = 8;
  p.ny = 8;
  p.nz = 8;
  p.profile_dim = 30;
  p.num_parcels = 6;
  p.noise = 0.1;
  p.epsilon = 1.0;
  p.seed = 5;
  return p;
}

TEST(DtiGenerator, ShapesAreConsistent) {
  const DtiVolume vol = make_dti_like(small_params());
  EXPECT_EQ(vol.n, 512);
  EXPECT_EQ(vol.d, 30);
  EXPECT_EQ(vol.positions.size(), static_cast<usize>(vol.n) * 3);
  EXPECT_EQ(vol.profiles.size(),
            static_cast<usize>(vol.n) * static_cast<usize>(vol.d));
  EXPECT_EQ(vol.labels.size(), static_cast<usize>(vol.n));
}

TEST(DtiGenerator, LabelsCoverParcels) {
  const DtiVolume vol = make_dti_like(small_params());
  std::set<index_t> used(vol.labels.begin(), vol.labels.end());
  EXPECT_GE(used.size(), 4u);  // Voronoi may starve a couple of parcels
  for (index_t l : vol.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 6);
  }
}

TEST(DtiGenerator, EdgesRespectEpsilon) {
  const DtiVolume vol = make_dti_like(small_params());
  for (index_t e = 0; e < vol.edges.size(); ++e) {
    const index_t i = vol.edges.u[static_cast<usize>(e)];
    const index_t j = vol.edges.v[static_cast<usize>(e)];
    real d2 = 0;
    for (int a = 0; a < 3; ++a) {
      const real delta = vol.positions[static_cast<usize>(i * 3 + a)] -
                         vol.positions[static_cast<usize>(j * 3 + a)];
      d2 += delta * delta;
    }
    EXPECT_LE(d2, 1.0 + 1e-12);
    EXPECT_LT(i, j);  // unordered pairs, each once
  }
}

TEST(DtiGenerator, LatticeEdgeCountIsExact) {
  // eps=1 on a unit lattice connects axis neighbors only:
  // 3 * (n-1) * n^2 edges for an n^3 cube.
  const DtiVolume vol = make_dti_like(small_params());
  EXPECT_EQ(vol.edges.size(), 3 * 7 * 8 * 8);
}

TEST(DtiGenerator, SameParcelProfilesCorrelateHigher) {
  DtiParams p = small_params();
  p.noise = 0.15;
  const DtiVolume vol = make_dti_like(p);
  graph::SimilarityParams sp{graph::SimilarityMeasure::kCrossCorrelation};
  real same_sum = 0, cross_sum = 0;
  index_t same_n = 0, cross_n = 0;
  for (index_t i = 0; i < vol.n; i += 7) {
    for (index_t j = i + 1; j < vol.n; j += 13) {
      const real s = graph::similarity_direct(
          vol.profiles.data() + i * vol.d, vol.profiles.data() + j * vol.d,
          vol.d, sp);
      if (vol.labels[static_cast<usize>(i)] ==
          vol.labels[static_cast<usize>(j)]) {
        same_sum += s;
        ++same_n;
      } else {
        cross_sum += s;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_sum / same_n, cross_sum / cross_n + 0.3);
}

TEST(DtiGenerator, DeterministicForSeed) {
  const DtiVolume a = make_dti_like(small_params());
  const DtiVolume b = make_dti_like(small_params());
  EXPECT_EQ(a.profiles, b.profiles);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(DtiGenerator, RejectsBadParams) {
  DtiParams p = small_params();
  p.num_parcels = 0;
  EXPECT_THROW((void)make_dti_like(p), std::invalid_argument);
  p = small_params();
  p.nx = 0;
  EXPECT_THROW((void)make_dti_like(p), std::invalid_argument);
  p = small_params();
  p.num_parcels = 10000;  // more parcels than voxels
  EXPECT_THROW((void)make_dti_like(p), std::invalid_argument);
}

}  // namespace
}  // namespace fastsc::data
