// Tests for the dependency-graph pipeline executor: DAG ordering within and
// across streams, eager emission (transfer work proceeds while compute
// runs), graph validation, error propagation through run(), reuse across
// waves via reset(), and overlap attribution for the column-blocked SpMV
// pattern the spectral pipeline uses.
#include "device/executor.h"

#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "sparse/spmv.h"

namespace fastsc::device {
namespace {

TransferModel unit_model() {
  TransferModel m;
  m.bandwidth_bytes_per_sec = 1e6;
  m.efficiency = 1.0;
  m.latency_seconds = 0;
  return m;
}

/// Thread-safe completion log shared by executor nodes.
struct OrderLog {
  std::mutex mu;
  std::vector<std::string> done;

  void mark(std::string label) {
    std::lock_guard lock(mu);
    done.push_back(std::move(label));
  }
  [[nodiscard]] usize index_of(const std::string& label) {
    std::lock_guard lock(mu);
    for (usize i = 0; i < done.size(); ++i) {
      if (done[i] == label) return i;
    }
    return done.size();
  }
};

TEST(Executor, DiamondDependenciesRespectEdges) {
  DeviceContext ctx(1);
  PipelineExecutor exec(ctx, 2);
  OrderLog log;
  const auto a = exec.add(0, "a", [&] { log.mark("a"); });
  const auto b = exec.add(0, "b", [&] { log.mark("b"); }, {a});
  const auto c = exec.add(1, "c", [&] { log.mark("c"); }, {a});
  exec.add(1, "d", [&] { log.mark("d"); }, {b, c});
  exec.run();
  ASSERT_EQ(log.done.size(), 4u);
  EXPECT_LT(log.index_of("a"), log.index_of("b"));
  EXPECT_LT(log.index_of("a"), log.index_of("c"));
  EXPECT_LT(log.index_of("b"), log.index_of("d"));
  EXPECT_LT(log.index_of("c"), log.index_of("d"));
}

TEST(Executor, CrossStreamDependencyOrdersWork) {
  DeviceContext ctx(1);
  PipelineExecutor exec(ctx, 3);
  OrderLog log;
  const auto producer = exec.add(0, "produce", [&] { log.mark("produce"); });
  exec.add(1, "consume1", [&] { log.mark("consume1"); }, {producer});
  exec.add(2, "consume2", [&] { log.mark("consume2"); }, {producer});
  exec.run();
  EXPECT_LT(log.index_of("produce"), log.index_of("consume1"));
  EXPECT_LT(log.index_of("produce"), log.index_of("consume2"));
}

TEST(Executor, DependencyMustNameEarlierNode) {
  DeviceContext ctx(1);
  PipelineExecutor exec(ctx, 2);
  const auto a = exec.add(0, "a", [] {});
  // A node cannot depend on itself or on a node not yet added (the graph is
  // acyclic by construction).
  EXPECT_THROW(exec.add(0, "bad", [] {}, {a + 1}), std::invalid_argument);
  EXPECT_THROW(exec.add(7, "bad-stream", [] {}), std::invalid_argument);
}

TEST(Executor, DoneEventIsWaitableFromHost) {
  DeviceContext ctx(1);
  PipelineExecutor exec(ctx, 2);
  std::vector<int> values;
  const auto node = exec.add(0, "fill", [&] { values.push_back(42); });
  exec.done(node).wait();
  EXPECT_EQ(values, std::vector<int>{42});
  exec.run();
}

TEST(Executor, ResetStartsANewWaveOnTheSameStreams) {
  DeviceContext ctx(1);
  PipelineExecutor exec(ctx, 2);
  OrderLog log;
  exec.add(0, "wave1", [&] { log.mark("wave1"); });
  exec.run();
  EXPECT_EQ(exec.node_count(), 1u);
  exec.reset();
  EXPECT_EQ(exec.node_count(), 0u);
  const auto a = exec.add(0, "wave2-a", [&] { log.mark("wave2-a"); });
  exec.add(1, "wave2-b", [&] { log.mark("wave2-b"); }, {a});
  exec.run();
  EXPECT_LT(log.index_of("wave1"), log.index_of("wave2-a"));
  EXPECT_LT(log.index_of("wave2-a"), log.index_of("wave2-b"));
}

TEST(Executor, RunRethrowsNodeError) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  PipelineExecutor exec(ctx, 2);
  exec.add(0, "oom", [&ctx] { DeviceBuffer<double> big(ctx, 1024); });
  EXPECT_THROW(exec.run(), DeviceOutOfMemory);
  // The executor (and its streams) stay usable for the next wave.
  exec.reset();
  bool ran = false;
  exec.add(0, "after", [&ran] { ran = true; });
  exec.run();
  EXPECT_TRUE(ran);
}

TEST(Executor, TransferComputePairProducesOverlap) {
  DeviceContext ctx(1, unit_model());
  PipelineExecutor exec(ctx, 2);
  DeviceBuffer<unsigned char> buf_a(ctx, 500000);
  DeviceBuffer<unsigned char> buf_b(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  using Exec = PipelineExecutor;
  // Double buffering: stage tile B H2D [0, 0.5] on the transfer stream while
  // a kernel on tile A occupies the compute engine over [0, 1].
  exec.add(Exec::kTransferStream, "h2d-b", [&] {
    copy_h2d(ctx, buf_b.data(), host.data(), host.size());
  });
  exec.add(Exec::kComputeStream, "kernel-a", [&] {
    launch(
        ctx, 1, [p = buf_a.data()](index_t) { p[0] = 1; },
        LaunchConfig{.modeled_seconds = 1.0});
  });
  exec.run();
  const DeviceCounters c = ctx.counters_snapshot();
  EXPECT_DOUBLE_EQ(c.overlapped_seconds, 0.5);
  EXPECT_DOUBLE_EQ(c.overlapped_h2d_seconds, 0.5);
}

TEST(Executor, DeviceSideColumnSplitMovesNoMatrixDataOverLink) {
  DeviceContext ctx(1);
  sparse::Csr a;
  a.rows = a.cols = 9;
  a.row_ptr = {0};
  for (index_t r = 0; r < 9; ++r) {
    for (index_t c = r % 3; c < 9; c += 3) {
      a.col_idx.push_back(c);
      a.values.push_back(static_cast<real>(r * 10 + c + 1));
    }
    a.row_ptr.push_back(static_cast<index_t>(a.col_idx.size()));
  }
  sparse::DeviceCsr dev_a(ctx, a);

  const DeviceCounters before = ctx.counters_snapshot();
  const sparse::DeviceCsrColBlocks dev_split =
      sparse::split_device_csr_col_blocks(ctx, dev_a, 4);
  const DeviceCounters after = ctx.counters_snapshot();
  // The repartition runs on the device: only one nnz count per block comes
  // back to size the allocations, and nothing is uploaded.
  EXPECT_EQ(after.bytes_h2d - before.bytes_h2d, 0u);
  EXPECT_EQ(after.bytes_d2h - before.bytes_d2h, 4 * sizeof(index_t));
  EXPECT_GT(after.kernel_launches, before.kernel_launches);

  // Block-by-block identical to the host-side split.
  std::vector<index_t> col_start;
  const std::vector<sparse::Csr> host_split =
      sparse::split_csr_col_blocks(a, 4, col_start);
  ASSERT_EQ(dev_split.block_count(), host_split.size());
  EXPECT_EQ(dev_split.col_start, col_start);
  EXPECT_EQ(dev_split.nnz(), dev_a.nnz());
  for (usize b = 0; b < host_split.size(); ++b) {
    const sparse::Csr got = dev_split.blocks[b].to_host();
    EXPECT_EQ(got.row_ptr, host_split[b].row_ptr) << "block " << b;
    EXPECT_EQ(got.col_idx, host_split[b].col_idx) << "block " << b;
    EXPECT_EQ(got.values, host_split[b].values) << "block " << b;
  }
}

TEST(Executor, ColumnBlockedSpmvMatchesMonolithicCsrmv) {
  DeviceContext ctx(1);
  // Small deterministic CSR: a 7x7 band matrix.
  sparse::Csr a;
  a.rows = a.cols = 7;
  a.row_ptr = {0};
  for (index_t r = 0; r < 7; ++r) {
    for (index_t c = r > 0 ? r - 1 : 0; c < std::min<index_t>(r + 2, 7); ++c) {
      a.col_idx.push_back(c);
      a.values.push_back(static_cast<real>(r + 2 * c + 1));
    }
    a.row_ptr.push_back(static_cast<index_t>(a.col_idx.size()));
  }
  std::vector<real> x(7);
  for (index_t i = 0; i < 7; ++i) x[static_cast<usize>(i)] = 0.5 * (i + 1);

  sparse::DeviceCsr dev_a(ctx, a);
  DeviceBuffer<real> dev_x(ctx, std::span<const real>(x));
  DeviceBuffer<real> dev_y(ctx, 7);
  sparse::device_csrmv(ctx, dev_a, dev_x.data(), dev_y.data());
  const std::vector<real> expected = dev_y.to_host();

  // The pipelined formulation: column blocks accumulated through the
  // executor with cross-stream H2D dependencies, final block row-tiled.
  sparse::DeviceCsrColBlocks blocks(ctx, a, 3);
  ASSERT_EQ(blocks.block_count(), 3u);
  ASSERT_EQ(blocks.nnz(), dev_a.nnz());
  DeviceBuffer<real> dev_x2(ctx, 7);
  DeviceBuffer<real> dev_y2(ctx, 7);
  std::vector<real> host_y(7, -1.0);
  PipelineExecutor exec(ctx, 2);
  using Exec = PipelineExecutor;
  std::vector<Exec::NodeId> h2d(blocks.block_count());
  for (usize b = 0; b < blocks.block_count(); ++b) {
    const index_t c0 = blocks.col_start[b];
    const index_t c1 = blocks.col_start[b + 1];
    h2d[b] = exec.add(Exec::kTransferStream, "h2d", [&, c0, c1] {
      copy_h2d(ctx, dev_x2.data() + c0, x.data() + c0,
               static_cast<usize>(c1 - c0));
    });
  }
  for (usize b = 0; b + 1 < blocks.block_count(); ++b) {
    exec.add(
        Exec::kComputeStream, "csrmv",
        [&, b] {
          sparse::device_csrmv_range(ctx, blocks.blocks[b], dev_x2.data(),
                                     dev_y2.data(), 0, 7, 1.0,
                                     b == 0 ? 0.0 : 1.0);
        },
        {h2d[b]});
  }
  const usize last = blocks.block_count() - 1;
  for (index_t t = 0; t < 2; ++t) {
    const index_t r0 = t == 0 ? 0 : 4;
    const index_t r1 = t == 0 ? 4 : 7;
    const auto compute = exec.add(
        Exec::kComputeStream, "csrmv-tail",
        [&, r0, r1] {
          sparse::device_csrmv_range(ctx, blocks.blocks[last], dev_x2.data(),
                                     dev_y2.data(), r0, r1, 1.0, 1.0);
        },
        {h2d[last]});
    exec.add(Exec::kTransferStream, "d2h",
             [&, r0, r1] {
               copy_d2h(ctx, host_y.data() + r0, dev_y2.data() + r0,
                        static_cast<usize>(r1 - r0));
             },
             {compute});
  }
  exec.run();
  for (usize i = 0; i < 7; ++i) {
    EXPECT_NEAR(host_y[i], expected[i], 1e-12);
  }
}

}  // namespace
}  // namespace fastsc::device
