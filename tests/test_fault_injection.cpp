// Tests for the deterministic fault-injection harness: plan parsing and
// round-tripping, nth/count windows and probability rules under a fixed
// seed, prefix matching, recording-mode site discovery, ArmScope nesting,
// and the device-runtime integration (injected OOM carries its site, the
// bounded transfer retry absorbs transient faults and meters each transfer
// exactly once).
#include "fault/fault.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "core/spectral.h"
#include "data/sbm.h"
#include "device/device.h"
#include "device/stream.h"
#include "metrics/external.h"

namespace fastsc::fault {
namespace {

/// Every test leaves the process-wide injector disarmed.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    injector().disarm();
    injector().set_recording(false);
  }
};

// ---------------------------------------------------------------------------
// FaultPlan parsing.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, ParseSingleClause) {
  const FaultPlan p = FaultPlan::parse("site=device.h2d,nth=3");
  ASSERT_EQ(p.rules.size(), 1u);
  EXPECT_EQ(p.rules[0].site, "device.h2d");
  EXPECT_EQ(p.rules[0].nth, 3u);
  EXPECT_EQ(p.rules[0].count, 1u);
  EXPECT_EQ(p.seed, 42u);
}

TEST_F(FaultTest, ParseMultiClauseWithSeed) {
  const FaultPlan p = FaultPlan::parse(
      "site=device.h2d,nth=2,count=4;site=lanczos.convergence,p=0.5,count=10;"
      "seed=7");
  ASSERT_EQ(p.rules.size(), 2u);
  EXPECT_EQ(p.rules[0].nth, 2u);
  EXPECT_EQ(p.rules[0].count, 4u);
  EXPECT_EQ(p.rules[1].nth, 0u);  // p= selects probability mode
  EXPECT_DOUBLE_EQ(p.rules[1].probability, 0.5);
  EXPECT_EQ(p.seed, 7u);
}

TEST_F(FaultTest, ParseToStringRoundTrips) {
  const FaultPlan p = FaultPlan::parse(
      "site=device.*,nth=1,count=0;site=copy.d2h,p=0.25;seed=9");
  const FaultPlan q = FaultPlan::parse(p.to_string());
  ASSERT_EQ(q.rules.size(), p.rules.size());
  EXPECT_EQ(q.seed, p.seed);
  for (usize i = 0; i < p.rules.size(); ++i) {
    EXPECT_EQ(q.rules[i].site, p.rules[i].site);
    EXPECT_EQ(q.rules[i].nth, p.rules[i].nth);
    EXPECT_EQ(q.rules[i].count, p.rules[i].count);
    EXPECT_DOUBLE_EQ(q.rules[i].probability, p.rules[i].probability);
  }
}

TEST_F(FaultTest, ParseEmptyAndSeedOnly) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  const FaultPlan p = FaultPlan::parse("seed=123");
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.seed, 123u);
}

TEST_F(FaultTest, ParseMalformedThrows) {
  EXPECT_THROW((void)FaultPlan::parse("device.h2d"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site="), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site=x,nth=abc"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site=x,p=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site=x,nth=2,p=0.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site=x,nth=0"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("nth=2"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("site=x,bogus=1"),
               std::invalid_argument);
}

TEST_F(FaultTest, PrefixMatching) {
  FaultRule r;
  r.site = "device.*";
  EXPECT_TRUE(r.matches_site("device.alloc"));
  EXPECT_TRUE(r.matches_site("device.h2d"));
  EXPECT_FALSE(r.matches_site("stream.h2d"));
  r.site = "device.h2d";
  EXPECT_TRUE(r.matches_site("device.h2d"));
  EXPECT_FALSE(r.matches_site("device.h2d2"));
}

// ---------------------------------------------------------------------------
// Injector semantics.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DisabledPathIsInactive) {
  EXPECT_FALSE(active());
  EXPECT_FALSE(triggered("device.h2d"));
  // Nothing is recorded while inactive.
  EXPECT_TRUE(injector().sites_seen().empty() ||
              injector().sites_seen().find("device.h2d") ==
                  injector().sites_seen().end());
}

TEST_F(FaultTest, NthWindowFiresExactly) {
  injector().arm(FaultPlan::parse("site=x,nth=2,count=2"));
  EXPECT_TRUE(active());
  std::vector<bool> fired;
  for (int i = 0; i < 5; ++i) fired.push_back(triggered("x"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, true, false, false}));
  EXPECT_EQ(injector().injected_total(), 2u);
  const auto sites = injector().sites_seen();
  ASSERT_TRUE(sites.contains("x"));
  EXPECT_EQ(sites.at("x").occurrences, 5u);
  EXPECT_EQ(sites.at("x").triggers, 2u);
}

TEST_F(FaultTest, UnboundedCountFiresFromNthOnwards) {
  injector().arm(FaultPlan::parse("site=x,nth=3,count=0"));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(triggered("x"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, true, true, true}));
}

TEST_F(FaultTest, SitesAreCountedIndependently) {
  injector().arm(FaultPlan::parse("site=x,nth=2"));
  EXPECT_FALSE(triggered("y"));  // occurrences of y do not advance x
  EXPECT_FALSE(triggered("x"));
  EXPECT_FALSE(triggered("y"));
  EXPECT_TRUE(triggered("x"));
}

TEST_F(FaultTest, RearmResetsCounters) {
  const FaultPlan plan = FaultPlan::parse("site=x,nth=1");
  injector().arm(plan);
  EXPECT_TRUE(triggered("x"));
  EXPECT_FALSE(triggered("x"));  // count=1 exhausted
  injector().arm(plan);          // same plan, fresh counters
  EXPECT_TRUE(triggered("x"));
  EXPECT_EQ(injector().injected_total(), 1u);
}

TEST_F(FaultTest, ProbabilityIsDeterministicUnderSeed) {
  const FaultPlan plan = FaultPlan::parse("site=x,p=0.3,count=0;seed=11");
  auto run = [&] {
    injector().arm(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(triggered("x"));
    return fired;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);  // same plan + seed => same fault sequence
  int count = 0;
  for (bool f : a) count += f ? 1 : 0;
  EXPECT_GT(count, 20);   // ~60 expected; loose deterministic bounds
  EXPECT_LT(count, 120);

  // A different seed gives a different (but internally repeatable) sequence.
  FaultPlan other = plan;
  other.seed = 12;
  injector().arm(other);
  std::vector<bool> c;
  for (int i = 0; i < 200; ++i) c.push_back(triggered("x"));
  EXPECT_NE(a, c);
}

TEST_F(FaultTest, PrefixRuleHitsEverySiteUnderneath) {
  injector().arm(FaultPlan::parse("site=device.*,nth=1,count=0"));
  EXPECT_TRUE(triggered("device.alloc"));
  EXPECT_TRUE(triggered("device.h2d"));
  EXPECT_FALSE(triggered("copy.h2d"));
}

TEST_F(FaultTest, RecordingModeCountsWithoutFiring) {
  injector().set_recording(true);
  EXPECT_TRUE(active());
  EXPECT_FALSE(triggered("a"));
  EXPECT_FALSE(triggered("a"));
  EXPECT_FALSE(triggered("b"));
  const auto sites = injector().sites_seen();
  ASSERT_TRUE(sites.contains("a"));
  ASSERT_TRUE(sites.contains("b"));
  EXPECT_EQ(sites.at("a").occurrences, 2u);
  EXPECT_EQ(sites.at("a").triggers, 0u);
  EXPECT_EQ(sites.at("b").occurrences, 1u);
}

TEST_F(FaultTest, ArmScopeRestoresPreviousPlan) {
  injector().arm(FaultPlan::parse("site=outer,nth=1"));
  {
    ArmScope scope(FaultPlan::parse("site=inner,nth=1"));
    EXPECT_TRUE(triggered("inner"));
    EXPECT_FALSE(triggered("outer"));
  }
  // The outer plan is re-armed with fresh counters.
  EXPECT_TRUE(injector().armed());
  EXPECT_TRUE(triggered("outer"));
  injector().disarm();
  {
    ArmScope scope(FaultPlan::parse("site=inner,nth=1"));
    EXPECT_TRUE(injector().armed());
  }
  EXPECT_FALSE(injector().armed());  // nothing was armed before
  EXPECT_FALSE(active());
}

// ---------------------------------------------------------------------------
// Device-runtime integration.
// ---------------------------------------------------------------------------

TEST_F(FaultTest, InjectedAllocFailureCarriesSite) {
  ArmScope scope(FaultPlan::parse("site=device.alloc,nth=1"));
  device::DeviceContext ctx(1);
  try {
    device::DeviceBuffer<double> buf(ctx, 64);
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const device::DeviceOutOfMemory& e) {
    EXPECT_EQ(e.site(), "device.alloc");
    EXPECT_NE(std::string(e.what()).find("[site: device.alloc]"),
              std::string::npos);
  }
  // The rule is exhausted (count=1): the next allocation succeeds.
  device::DeviceBuffer<double> ok(ctx, 64);
  EXPECT_EQ(ok.size(), 64u);
}

TEST_F(FaultTest, TransferRetryAbsorbsTransientFaults) {
  ArmScope scope(FaultPlan::parse("site=device.h2d,nth=1,count=2"));
  device::DeviceContext ctx(1);
  device::DeviceBuffer<double> buf(ctx, 32);
  std::vector<double> host(32, 7.0);
  // Attempts 1 and 2 fail; attempt 3 succeeds inside the retry budget.
  buf.copy_from_host(std::span<const double>(host));
  const device::DeviceCounters c = ctx.counters_snapshot();
  EXPECT_EQ(c.transfer_retries, 2u);
  // The successful attempt meters exactly once (fault check precedes the
  // memcpy and the metering).
  EXPECT_EQ(c.transfers_h2d, 1u);
  EXPECT_EQ(c.bytes_h2d, 32u * sizeof(double));
  EXPECT_EQ(buf.to_host(), host);
}

TEST_F(FaultTest, TransferRetryExhaustionRethrowsWithSite) {
  // count=0: every d2h occurrence faults, so the retry budget (3) runs out.
  ArmScope scope(FaultPlan::parse("site=device.d2h,nth=1,count=0"));
  device::DeviceContext ctx(1);
  device::DeviceBuffer<double> buf(ctx, 8);
  std::vector<double> host(8);
  try {
    buf.copy_to_host(std::span<double>(host));
    FAIL() << "expected DeviceTransferError";
  } catch (const device::DeviceTransferError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.site(), "device.d2h");
  }
  const device::DeviceCounters c = ctx.counters_snapshot();
  EXPECT_EQ(c.transfer_retries,
            static_cast<usize>(ctx.transfer_retry().max_retries));
  EXPECT_EQ(c.transfers_d2h, 0u);  // no attempt ever metered
}

TEST_F(FaultTest, RetryPolicyIsConfigurable) {
  ArmScope scope(FaultPlan::parse("site=device.h2d,nth=1,count=0"));
  device::DeviceContext ctx(1);
  ctx.set_transfer_retry(device::TransferRetryPolicy{0, 1e-6});
  device::DeviceBuffer<double> buf(ctx, 4);
  std::vector<double> host(4, 1.0);
  // Zero retries: the first transient fault escalates immediately.
  EXPECT_THROW(buf.copy_from_host(std::span<const double>(host)),
               device::DeviceTransferError);
  EXPECT_EQ(ctx.counters_snapshot().transfer_retries, 0u);
}

TEST_F(FaultTest, RetryBackoffChargesVirtualClock) {
  ArmScope scope(FaultPlan::parse("site=device.h2d,nth=1,count=2"));
  device::DeviceContext ctx(1);
  ctx.set_transfer_retry(device::TransferRetryPolicy{3, 0.5});
  device::DeviceBuffer<double> buf(ctx, 4);
  std::vector<double> host(4, 1.0);
  buf.copy_from_host(std::span<const double>(host));
  // Two absorbed faults at backoff 0.5 then 1.0 virtual seconds.
  EXPECT_GE(ctx.current_clock_now(), 1.5);
}

TEST_F(FaultTest, StreamAsyncCopyRetriesTransparently) {
  ArmScope scope(FaultPlan::parse("site=stream.h2d,nth=1,count=1"));
  device::DeviceContext ctx(1);
  device::Stream s(ctx, "retry");
  device::DeviceBuffer<double> dev(ctx, 16);
  std::vector<double> host(16, 3.0);
  s.copy_to_device_async(dev, std::span<const double>(host));
  s.synchronize();  // the one injected fault was absorbed by the retry
  EXPECT_EQ(dev.to_host(), host);
  const device::DeviceCounters c = ctx.counters_snapshot();
  EXPECT_EQ(c.transfer_retries, 1u);
  EXPECT_EQ(c.async_copies, 1u);
}

// ---------------------------------------------------------------------------
// Sharded-pipeline integration: transient faults on every d2d.* site are
// absorbed by the bounded retry, permanent ones walk the degradation ladder
// back to the single-device pipeline — labels are unperturbed either way.
// ---------------------------------------------------------------------------

core::SpectralConfig sharded_config(index_t num_devices) {
  core::SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.backend = core::Backend::kDevice;
  cfg.num_devices = num_devices;
  cfg.seed = 42;
  return cfg;
}

data::SbmGraph sharded_graph() {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(600, 3);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = 17;
  return data::make_sbm(p);
}

TEST_F(FaultTest, ShardedD2dFaultSweepRecoversExactly) {
  const data::SbmGraph g = sharded_graph();
  const core::SpectralResult clean =
      core::spectral_cluster_graph(g.w, sharded_config(2));
  ASSERT_EQ(clean.labels.size(), 600u);
  ASSERT_GT(clean.device_counters.bytes_d2d, 0u);

  for (const char* site : {"d2d.halo", "d2d.allreduce", "d2d.centroid_bcast",
                           "d2d.centroid_reduce"}) {
    SCOPED_TRACE(site);
    core::SpectralConfig cfg = sharded_config(2);
    cfg.faults = FaultPlan::parse(std::string("site=") + site + ",nth=1");
    const core::SpectralResult faulted =
        core::spectral_cluster_graph(g.w, cfg);
    // The single transient fault was absorbed by the transfer retry; the
    // data path is untouched, so the result is byte-identical.
    EXPECT_GE(faulted.device_counters.transfer_retries, 1u);
    EXPECT_FALSE(faulted.degradation.degraded);
    EXPECT_EQ(faulted.labels, clean.labels);
    EXPECT_DOUBLE_EQ(
        metrics::adjusted_rand_index(faulted.labels, clean.labels), 1.0);
  }
}

TEST_F(FaultTest, ShardedPermanentD2dFaultDegradesToSingleDevice) {
  const data::SbmGraph g = sharded_graph();
  const core::SpectralResult single =
      core::spectral_cluster_graph(g.w, sharded_config(1));

  // count=0: every halo copy faults, the retry budget runs out, and the
  // sharded driver's DeviceError reaches the dispatch ladder.
  core::SpectralConfig cfg = sharded_config(4);
  cfg.faults = FaultPlan::parse("site=d2d.halo,nth=1,count=0");
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
  EXPECT_TRUE(r.degradation.degraded);
  ASSERT_FALSE(r.degradation.events.empty());
  bool saw_fallback = false;
  for (const core::DegradationEvent& e : r.degradation.events) {
    if (e.action == "single-device") saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback);
  // The fallback rung is the untouched single-device pipeline.
  EXPECT_EQ(r.labels, single.labels);
  EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(r.labels, single.labels),
                   1.0);
}

TEST_F(FaultTest, ShardedPermanentFaultWithDegradationDisabledThrows) {
  const data::SbmGraph g = sharded_graph();
  core::SpectralConfig cfg = sharded_config(2);
  cfg.degradation.enabled = false;
  cfg.faults = FaultPlan::parse("site=d2d.halo,nth=1,count=0");
  EXPECT_THROW((void)core::spectral_cluster_graph(g.w, cfg),
               device::DeviceError);
}

}  // namespace
}  // namespace fastsc::fault
