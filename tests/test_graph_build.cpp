#include "graph/build.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sparse/convert.h"
#include "sparse/ops.h"

namespace fastsc::graph {
namespace {

struct PointSet {
  std::vector<real> x;  // n x d
  index_t n, d;
};

PointSet random_points(index_t n, index_t d, std::uint64_t seed) {
  PointSet ps;
  ps.n = n;
  ps.d = d;
  ps.x.resize(static_cast<usize>(n) * static_cast<usize>(d));
  Rng rng(seed);
  for (real& v : ps.x) v = rng.uniform(-1, 1);
  return ps;
}

EdgeList all_pairs(index_t n) {
  EdgeList e;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) e.push(i, j);
  }
  return e;
}

TEST(Symmetrized, MirrorsEveryEdge) {
  EdgeList e;
  e.push(0, 1);
  e.push(2, 3);
  const EdgeList s = symmetrized(e);
  ASSERT_EQ(s.size(), 4);
  EXPECT_EQ(s.u[1], 1);
  EXPECT_EQ(s.v[1], 0);
  EXPECT_EQ(s.u[3], 3);
  EXPECT_EQ(s.v[3], 2);
}

TEST(BuildEpsilonEdges, FindsLatticeNeighbors) {
  std::vector<real> pos{0, 0, 0, 1, 0, 0, 0, 1, 0, 5, 5, 5};
  const EdgeList edges = build_epsilon_edges_3d(pos.data(), 4, 1.1);
  EXPECT_EQ(edges.size(), 2);  // (0,1) and (0,2)
}

TEST(BuildSimilarityHost, ValuesMatchDirectComputation) {
  const PointSet ps = random_points(12, 8, 3);
  const EdgeList edges = symmetrized(all_pairs(ps.n));
  SimilarityParams params{SimilarityMeasure::kCrossCorrelation};
  const sparse::Coo coo =
      build_similarity_host(ps.x.data(), ps.n, ps.d, edges, params,
                            /*clamp_nonpositive=*/false);
  ASSERT_EQ(coo.nnz(), edges.size());
  for (index_t e = 0; e < coo.nnz(); ++e) {
    const real direct = similarity_direct(
        ps.x.data() + coo.row_idx[static_cast<usize>(e)] * ps.d,
        ps.x.data() + coo.col_idx[static_cast<usize>(e)] * ps.d, ps.d, params);
    EXPECT_NEAR(coo.values[static_cast<usize>(e)], direct, 1e-10);
  }
}

TEST(BuildSimilarityHost, ClampFloorsNonPositives) {
  // Anti-correlated pair would get similarity -1; the clamp floors it.
  std::vector<real> x{1, 2, 3, 3, 2, 1};
  EdgeList edges;
  edges.push(0, 1);
  SimilarityParams params{SimilarityMeasure::kCrossCorrelation};
  const sparse::Coo coo =
      build_similarity_host(x.data(), 2, 3, symmetrized(edges), params, true);
  for (real v : coo.values) EXPECT_GT(v, 0.0);
}

class DeviceSimilarity : public ::testing::TestWithParam<SimilarityMeasure> {
 protected:
  device::DeviceContext ctx_{2};
};

TEST_P(DeviceSimilarity, MatchesHostPath) {
  const PointSet ps = random_points(30, 16, 11);
  const EdgeList edges = symmetrized(all_pairs(ps.n));
  SimilarityParams params;
  params.measure = GetParam();
  params.sigma = 1.3;

  const sparse::Coo host =
      build_similarity_host(ps.x.data(), ps.n, ps.d, edges, params);
  sparse::DeviceCoo dev = build_similarity_device(ctx_, ps.x.data(), ps.n,
                                                  ps.d, edges, params);
  const sparse::Coo got = dev.to_host();
  ASSERT_EQ(got.nnz(), host.nnz());
  EXPECT_EQ(got.row_idx, host.row_idx);
  EXPECT_EQ(got.col_idx, host.col_idx);
  for (usize e = 0; e < got.values.size(); ++e) {
    EXPECT_NEAR(got.values[e], host.values[e], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Measures, DeviceSimilarity,
                         ::testing::Values(SimilarityMeasure::kCosine,
                                           SimilarityMeasure::kCrossCorrelation,
                                           SimilarityMeasure::kExpDecay));

TEST(DeviceSimilarityMeters, TransfersInputData) {
  device::DeviceContext ctx(1);
  const PointSet ps = random_points(10, 5, 17);
  const EdgeList edges = symmetrized(all_pairs(ps.n));
  (void)build_similarity_device(ctx, ps.x.data(), ps.n, ps.d, edges,
                                SimilarityParams{});
  // X (n*d reals) plus two index arrays must have crossed the link.
  EXPECT_GE(ctx.counters().bytes_h2d,
            static_cast<usize>(ps.n * ps.d) * sizeof(real));
  EXPECT_GE(ctx.counters().kernel_launches, 3u);  // the three kernels
}

TEST(ChunkedSimilarity, MatchesUnchunkedBitForBit) {
  device::DeviceContext ctx(2);
  const PointSet ps = random_points(25, 12, 31);
  const EdgeList edges = symmetrized(all_pairs(ps.n));
  SimilarityParams params{SimilarityMeasure::kCrossCorrelation};
  sparse::DeviceCoo full =
      build_similarity_device(ctx, ps.x.data(), ps.n, ps.d, edges, params);
  const sparse::Coo full_host = full.to_host();
  for (index_t chunk : {1, 7, 100, 100000}) {
    const sparse::Coo chunked = build_similarity_device_chunked(
        ctx, ps.x.data(), ps.n, ps.d, edges, params, chunk);
    ASSERT_EQ(chunked.nnz(), full_host.nnz()) << "chunk " << chunk;
    EXPECT_EQ(chunked.row_idx, full_host.row_idx);
    EXPECT_EQ(chunked.col_idx, full_host.col_idx);
    EXPECT_EQ(chunked.values, full_host.values) << "chunk " << chunk;
  }
}

TEST(ChunkedSimilarity, FitsUnderMemoryBudgetWhereFullBuildCannot) {
  const PointSet ps = random_points(50, 8, 37);
  const EdgeList edges = symmetrized(all_pairs(ps.n));  // 2450 edges
  SimilarityParams params{SimilarityMeasure::kExpDecay, 1.0};

  // Budget: X + stats + a small chunk, but far below the full edge list.
  const usize budget = static_cast<usize>(ps.n * ps.d) * sizeof(real) +
                       2 * static_cast<usize>(ps.n) * sizeof(real) +
                       3000;  // room for ~125-edge chunks
  device::DeviceContext ctx(1);
  ctx.set_memory_limit(budget);
  EXPECT_THROW((void)build_similarity_device(ctx, ps.x.data(), ps.n, ps.d,
                                             edges, params),
               device::DeviceOutOfMemory);
  ctx.counters().reset();
  const sparse::Coo chunked = build_similarity_device_chunked(
      ctx, ps.x.data(), ps.n, ps.d, edges, params, /*chunk_edges=*/100);
  EXPECT_EQ(chunked.nnz(), edges.size());
  EXPECT_LE(ctx.counters().peak_bytes, budget);
  // Values must still match the host reference.
  const sparse::Coo host =
      build_similarity_host(ps.x.data(), ps.n, ps.d, edges, params);
  for (usize e = 0; e < host.values.size(); ++e) {
    EXPECT_NEAR(chunked.values[e], host.values[e], 1e-12);
  }
}

TEST(ChunkedSimilarity, RejectsBadChunkSize) {
  device::DeviceContext ctx(1);
  const PointSet ps = random_points(4, 2, 41);
  const EdgeList edges = symmetrized(all_pairs(ps.n));
  EXPECT_THROW((void)build_similarity_device_chunked(
                   ctx, ps.x.data(), ps.n, ps.d, edges, SimilarityParams{}, 0),
               std::invalid_argument);
}

TEST(KnnGraph, DegreesAtLeastK) {
  const PointSet ps = random_points(40, 4, 23);
  SimilarityParams params{SimilarityMeasure::kExpDecay, 1.0};
  const sparse::Coo coo = build_knn_graph(ps.x.data(), ps.n, ps.d, 3, params);
  const sparse::Csr csr = sparse::coo_to_csr(coo);
  for (index_t i = 0; i < ps.n; ++i) {
    EXPECT_GE(csr.row_nnz(i), 3);  // union rule only adds edges
  }
  EXPECT_TRUE(sparse::is_symmetric(csr, 1e-12));
}

TEST(KnnGraph, RejectsBadK) {
  const PointSet ps = random_points(5, 2, 29);
  EXPECT_THROW(
      (void)build_knn_graph(ps.x.data(), ps.n, ps.d, 0, SimilarityParams{}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)build_knn_graph(ps.x.data(), ps.n, ps.d, 5, SimilarityParams{}),
      std::invalid_argument);
}

TEST(ThresholdGraph, KeepsOnlyStrongPairs) {
  // Two tight groups far apart: cross-group RBF similarity is tiny.
  std::vector<real> x{0, 0.1, 0, 10, 10.1, 10};
  SimilarityParams params{SimilarityMeasure::kExpDecay, 1.0};
  const sparse::Coo coo = build_threshold_graph(x.data(), 6, 1, 0.5, params);
  const sparse::Csr csr = sparse::coo_to_csr(coo);
  EXPECT_GT(csr.at(0, 1), 0.5);
  EXPECT_EQ(csr.at(0, 3), 0.0);
  EXPECT_TRUE(sparse::is_symmetric(csr, 1e-12));
}

TEST(RemoveIsolated, CompactsIndices) {
  sparse::Coo w(5, 5);
  w.push(1, 3, 1.0);
  w.push(3, 1, 1.0);
  std::vector<index_t> old_of_new;
  const sparse::Coo out = remove_isolated(w, old_of_new);
  EXPECT_EQ(out.rows, 2);
  EXPECT_EQ(old_of_new, (std::vector<index_t>{1, 3}));
  EXPECT_EQ(out.nnz(), 2);
  EXPECT_EQ(out.row_idx[0], 0);
  EXPECT_EQ(out.col_idx[0], 1);
}

TEST(RemoveIsolated, NoIsolatedIsIdentityMapping) {
  sparse::Coo w(2, 2);
  w.push(0, 1, 1.0);
  w.push(1, 0, 1.0);
  std::vector<index_t> old_of_new;
  const sparse::Coo out = remove_isolated(w, old_of_new);
  EXPECT_EQ(out.rows, 2);
  EXPECT_EQ(old_of_new, (std::vector<index_t>{0, 1}));
}

}  // namespace
}  // namespace fastsc::graph
