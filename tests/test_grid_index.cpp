#include "graph/grid_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"

namespace fastsc::graph {
namespace {

using Pair = std::pair<index_t, index_t>;

std::set<Pair> brute_force_pairs(const std::vector<real>& pos, index_t n,
                                 real eps) {
  std::set<Pair> pairs;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = i + 1; j < n; ++j) {
      real d2 = 0;
      for (int a = 0; a < 3; ++a) {
        const real delta = pos[static_cast<usize>(i * 3 + a)] -
                           pos[static_cast<usize>(j * 3 + a)];
        d2 += delta * delta;
      }
      if (d2 <= eps * eps) pairs.emplace(i, j);
    }
  }
  return pairs;
}

std::set<Pair> to_set(const EdgeList& edges) {
  std::set<Pair> pairs;
  for (index_t e = 0; e < edges.size(); ++e) {
    index_t a = edges.u[static_cast<usize>(e)];
    index_t b = edges.v[static_cast<usize>(e)];
    if (a > b) std::swap(a, b);
    pairs.emplace(a, b);
  }
  return pairs;
}

TEST(GridIndex, RejectsNonPositiveCellSize) {
  const real pos[] = {0, 0, 0};
  EXPECT_THROW(GridIndex3D(pos, 1, 0.0), std::invalid_argument);
}

TEST(GridIndex, EpsLargerThanCellThrows) {
  const real pos[] = {0, 0, 0};
  GridIndex3D index(pos, 1, 1.0);
  EXPECT_THROW((void)index.epsilon_pairs(2.0), std::invalid_argument);
}

TEST(GridIndex, TwoPointsWithinEps) {
  const real pos[] = {0, 0, 0, 0.5, 0, 0};
  GridIndex3D index(pos, 2, 1.0);
  const auto edges = index.epsilon_pairs(1.0);
  ASSERT_EQ(edges.size(), 1);
  EXPECT_EQ(edges.u[0], 0);
  EXPECT_EQ(edges.v[0], 1);
}

TEST(GridIndex, TwoPointsBeyondEps) {
  const real pos[] = {0, 0, 0, 2.0, 0, 0};
  GridIndex3D index(pos, 2, 1.5);
  EXPECT_EQ(index.epsilon_pairs(1.5).size(), 0);
}

TEST(GridIndex, BoundaryDistanceIsIncluded) {
  const real pos[] = {0, 0, 0, 1.0, 0, 0};
  GridIndex3D index(pos, 2, 1.0);
  EXPECT_EQ(index.epsilon_pairs(1.0).size(), 1);
}

TEST(GridIndex, NegativeCoordinatesWork) {
  const real pos[] = {-5.2, -3.1, -0.5, -5.0, -3.0, -0.4};
  GridIndex3D index(pos, 2, 1.0);
  EXPECT_EQ(index.epsilon_pairs(1.0).size(), 1);
}

class GridVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(GridVsBrute, MatchesBruteForce) {
  const index_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  std::vector<real> pos(static_cast<usize>(n) * 3);
  for (real& v : pos) v = rng.uniform(-4, 4);
  for (const real eps : {0.5, 1.0, 2.0}) {
    GridIndex3D index(pos.data(), n, eps);
    EXPECT_EQ(to_set(index.epsilon_pairs(eps)),
              brute_force_pairs(pos, n, eps))
        << "eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridVsBrute,
                         ::testing::Values(2, 10, 50, 200));

TEST(GridIndex, NeighborsOfMatchesPairs) {
  Rng rng(9);
  const index_t n = 60;
  std::vector<real> pos(static_cast<usize>(n) * 3);
  for (real& v : pos) v = rng.uniform(0, 5);
  const real eps = 1.0;
  GridIndex3D index(pos.data(), n, eps);
  const auto pairs = brute_force_pairs(pos, n, eps);
  for (index_t i = 0; i < n; ++i) {
    auto nbrs = index.neighbors_of(i, eps);
    std::sort(nbrs.begin(), nbrs.end());
    std::vector<index_t> expect;
    for (const auto& [a, b] : pairs) {
      if (a == i) expect.push_back(b);
      if (b == i) expect.push_back(a);
    }
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(nbrs, expect) << "point " << i;
  }
}

TEST(GridIndex, LatticeNeighborCountIsRegular) {
  // 5x5x5 unit lattice with eps=1: interior points have exactly 6 neighbors.
  std::vector<real> pos;
  for (int x = 0; x < 5; ++x) {
    for (int y = 0; y < 5; ++y) {
      for (int z = 0; z < 5; ++z) {
        pos.push_back(x);
        pos.push_back(y);
        pos.push_back(z);
      }
    }
  }
  const index_t n = 125;
  GridIndex3D index(pos.data(), n, 1.0);
  // Point (2,2,2) has linear index 2*25 + 2*5 + 2 = 62.
  EXPECT_EQ(index.neighbors_of(62, 1.0).size(), 6u);
  // Corner (0,0,0) has 3.
  EXPECT_EQ(index.neighbors_of(0, 1.0).size(), 3u);
}

}  // namespace
}  // namespace fastsc::graph
