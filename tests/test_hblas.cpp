#include "blas/hblas.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace fastsc::hblas {
namespace {

std::vector<real> random_vec(usize n, Rng& rng) {
  std::vector<real> v(n);
  for (real& x : v) x = rng.uniform() - 0.5;
  return v;
}

TEST(Hblas, DotBasics) {
  const real x[] = {1, 2, 3};
  const real y[] = {4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(3, x, y), 32.0);
  EXPECT_DOUBLE_EQ(dot(0, x, y), 0.0);
}

TEST(Hblas, Nrm2MatchesDefinition) {
  const real x[] = {3, 4};
  EXPECT_DOUBLE_EQ(nrm2(2, x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2(0, x), 0.0);
}

TEST(Hblas, Nrm2AvoidsOverflow) {
  const real x[] = {1e200, 1e200};
  EXPECT_DOUBLE_EQ(nrm2(2, x), 1e200 * std::sqrt(2.0));
}

TEST(Hblas, Nrm2AvoidsUnderflow) {
  const real x[] = {1e-200, 1e-200};
  EXPECT_GT(nrm2(2, x), 1e-201);
}

TEST(Hblas, AxpyAccumulates) {
  const real x[] = {1, 2};
  real y[] = {10, 20};
  axpy(2, 3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Hblas, ScalScales) {
  real x[] = {2, -4};
  scal(2, 0.5, x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(Hblas, CopyCopies) {
  const real x[] = {1, 2, 3};
  real y[3] = {};
  copy(3, x, y);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(Hblas, IamaxFindsLargestMagnitude) {
  const real x[] = {1, -7, 3};
  EXPECT_EQ(iamax(3, x), 1);
  EXPECT_EQ(iamax(0, x), -1);
}

TEST(Hblas, GemvMatchesManual) {
  // A = [[1,2],[3,4],[5,6]], x = [1,1]
  const real a[] = {1, 2, 3, 4, 5, 6};
  const real x[] = {1, 1};
  real y[] = {100, 100, 100};
  gemv(3, 2, 1.0, a, 2, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 3);
  EXPECT_DOUBLE_EQ(y[1], 7);
  EXPECT_DOUBLE_EQ(y[2], 11);
}

TEST(Hblas, GemvBetaBlends) {
  const real a[] = {1, 0, 0, 1};
  const real x[] = {2, 3};
  real y[] = {10, 10};
  gemv(2, 2, 1.0, a, 2, x, 0.5, y);
  EXPECT_DOUBLE_EQ(y[0], 7);
  EXPECT_DOUBLE_EQ(y[1], 8);
}

TEST(Hblas, GemvTransposeMatchesManual) {
  const real a[] = {1, 2, 3, 4, 5, 6};  // 3x2
  const real x[] = {1, 1, 1};
  real y[] = {0, 0};
  gemv_t(3, 2, 1.0, a, 2, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 9);
  EXPECT_DOUBLE_EQ(y[1], 12);
}

class GemmSizes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmSizes, BlockedMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 10007 + n * 101 + k));
  const auto a = random_vec(static_cast<usize>(m * k), rng);
  const auto b = random_vec(static_cast<usize>(k * n), rng);
  auto c1 = random_vec(static_cast<usize>(m * n), rng);
  auto c2 = c1;
  gemm(m, n, k, 1.7, a.data(), k, b.data(), n, 0.3, c1.data(), n);
  gemm_naive(m, n, k, 1.7, a.data(), k, b.data(), n, 0.3, c2.data(), n);
  for (usize i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST_P(GemmSizes, GemmNtMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 7 + n * 13 + k * 17));
  const auto a = random_vec(static_cast<usize>(m * k), rng);
  const auto b = random_vec(static_cast<usize>(n * k), rng);
  auto c1 = random_vec(static_cast<usize>(m * n), rng);
  auto c2 = c1;
  gemm_nt(m, n, k, -2.0, a.data(), k, b.data(), k, 1.0, c1.data(), n);
  gemm_nt_naive(m, n, k, -2.0, a.data(), k, b.data(), k, 1.0, c2.data(), n);
  for (usize i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmSizes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 5, 2),
                      std::make_tuple(17, 9, 31), std::make_tuple(64, 64, 64),
                      std::make_tuple(65, 129, 70),
                      std::make_tuple(128, 1, 100),
                      std::make_tuple(1, 200, 64)));

// Threaded host kernels: must agree with their serial counterparts closely
// enough for the CGS2 reorthogonalization to be interchangeable (parallel
// summation reorders additions, hence NEAR rather than EQ for reductions),
// across sizes below and above the parallel-dispatch threshold.
class HblasPar : public ::testing::TestWithParam<int> {};

TEST_P(HblasPar, DotMatchesSerial) {
  const auto n = static_cast<usize>(GetParam());
  Rng rng(n * 31 + 1);
  const auto x = random_vec(n, rng);
  const auto y = random_vec(n, rng);
  const real serial = dot(static_cast<index_t>(n), x.data(), y.data());
  const real par = dot_par(static_cast<index_t>(n), x.data(), y.data());
  EXPECT_NEAR(par, serial, 1e-12 * (1.0 + std::fabs(serial)));
}

TEST_P(HblasPar, AxpyMatchesSerialExactly) {
  const auto n = static_cast<usize>(GetParam());
  Rng rng(n * 31 + 2);
  const auto x = random_vec(n, rng);
  auto y1 = random_vec(n, rng);
  auto y2 = y1;
  axpy(static_cast<index_t>(n), 1.7, x.data(), y1.data());
  axpy_par(static_cast<index_t>(n), 1.7, x.data(), y2.data());
  EXPECT_EQ(y1, y2);  // element-wise op: no reassociation, bitwise match
}

TEST_P(HblasPar, GemvMatchesSerial) {
  const auto n = static_cast<usize>(GetParam());
  const usize m = 13;
  Rng rng(n * 31 + 3);
  const auto a = random_vec(m * n, rng);
  const auto x = random_vec(n, rng);
  auto y1 = random_vec(m, rng);
  auto y2 = y1;
  gemv(static_cast<index_t>(m), static_cast<index_t>(n), 2.0, a.data(),
       static_cast<index_t>(n), x.data(), 0.5, y1.data());
  gemv_par(static_cast<index_t>(m), static_cast<index_t>(n), 2.0, a.data(),
           static_cast<index_t>(n), x.data(), 0.5, y2.data());
  for (usize i = 0; i < m; ++i) {
    EXPECT_NEAR(y2[i], y1[i], 1e-12 * (1.0 + std::fabs(y1[i]))) << i;
  }
}

TEST_P(HblasPar, GemvTMatchesSerial) {
  const auto n = static_cast<usize>(GetParam());
  const usize m = 13;
  Rng rng(n * 31 + 4);
  const auto a = random_vec(m * n, rng);
  const auto x = random_vec(m, rng);
  auto y1 = random_vec(n, rng);
  auto y2 = y1;
  gemv_t(static_cast<index_t>(m), static_cast<index_t>(n), -1.0, a.data(),
         static_cast<index_t>(n), x.data(), 1.0, y1.data());
  gemv_t_par(static_cast<index_t>(m), static_cast<index_t>(n), -1.0, a.data(),
             static_cast<index_t>(n), x.data(), 1.0, y2.data());
  for (usize i = 0; i < n; ++i) {
    EXPECT_NEAR(y2[i], y1[i], 1e-12 * (1.0 + std::fabs(y1[i]))) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, HblasPar,
                         ::testing::Values(1, 7, 100, 5000, 40000));

TEST(HblasPar, GemvBetaZeroOverwritesGarbage) {
  const real a[] = {1, 2};
  const real x[] = {3, 4};
  real y[] = {std::numeric_limits<real>::quiet_NaN()};
  gemv_par(1, 2, 1.0, a, 2, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 11.0);
  real z[] = {std::numeric_limits<real>::quiet_NaN(),
              std::numeric_limits<real>::quiet_NaN()};
  gemv_t_par(1, 2, 1.0, a, 2, x, 0.0, z);
  EXPECT_DOUBLE_EQ(z[0], 3.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Hblas, GemmBetaZeroOverwritesGarbage) {
  const real a[] = {1};
  const real b[] = {2};
  real c[] = {std::numeric_limits<real>::quiet_NaN()};
  gemm(1, 1, 1, 1.0, a, 1, b, 1, 0.0, c, 1);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
}

TEST(Hblas, GemmAlphaZeroOnlyScalesC) {
  const real a[] = {1, 2};
  const real b[] = {3, 4};
  real c[] = {5.0};
  gemm(1, 1, 2, 0.0, a, 2, b, 1, 2.0, c, 1);
  EXPECT_DOUBLE_EQ(c[0], 10.0);
}

TEST(Hblas, GemmLeadingDimensions) {
  // Operate on a 2x2 submatrix embedded in 2x4 storage.
  const real a[] = {1, 2, 9, 9, 3, 4, 9, 9};  // lda = 4
  const real b[] = {1, 0, 9, 9, 0, 1, 9, 9};  // ldb = 4
  real c[] = {0, 0, 9, 9, 0, 0, 9, 9};        // ldc = 4
  gemm(2, 2, 2, 1.0, a, 4, b, 4, 0.0, c, 4);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[1], 2);
  EXPECT_DOUBLE_EQ(c[4], 3);
  EXPECT_DOUBLE_EQ(c[5], 4);
  EXPECT_DOUBLE_EQ(c[2], 9);  // outside the submatrix untouched
}

}  // namespace
}  // namespace fastsc::hblas
