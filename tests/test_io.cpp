#include "data/io.h"

#include "sparse/convert.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <random>

namespace fastsc::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fastsc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  sparse::Coo coo(3, 3);
  coo.push(0, 1, 1.5);
  coo.push(1, 0, 1.5);
  coo.push(1, 2, 2.0);
  coo.push(2, 1, 2.0);
  write_edge_list(path("g.txt"), coo);
  const sparse::Coo back = read_edge_list(path("g.txt"), /*symmetrize=*/false);
  EXPECT_EQ(back.nnz(), 4);
  EXPECT_EQ(back.rows, 3);
}

TEST_F(IoTest, ReadEdgeListSymmetrizes) {
  std::ofstream(path("e.txt")) << "0 1\n1 2\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), true);
  EXPECT_EQ(coo.nnz(), 4);
}

TEST_F(IoTest, ReadEdgeListSkipsCommentsAndSelfLoops) {
  std::ofstream(path("e.txt")) << "# comment\n0 0\n0 1\n\n# more\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  EXPECT_EQ(coo.nnz(), 1);
}

TEST_F(IoTest, ReadEdgeListCompactsSparseIds) {
  std::ofstream(path("e.txt")) << "100 900\n900 5000\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  EXPECT_EQ(coo.rows, 3);  // ids compacted to 0..2
}

TEST_F(IoTest, ReadEdgeListParsesWeights) {
  std::ofstream(path("e.txt")) << "0 1 2.5\n1 2\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_DOUBLE_EQ(coo.values[0], 2.5);
  EXPECT_DOUBLE_EQ(coo.values[1], 1.0);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list(path("nope.txt")), std::invalid_argument);
  EXPECT_THROW((void)read_labels(path("nope.txt")), std::invalid_argument);
  index_t r, c;
  EXPECT_THROW((void)read_points(path("nope.txt"), r, c),
               std::invalid_argument);
}

TEST_F(IoTest, LabelsRoundTrip) {
  const std::vector<index_t> labels{0, 2, 1, 2, 0};
  write_labels(path("l.txt"), labels);
  EXPECT_EQ(read_labels(path("l.txt")), labels);
}

TEST_F(IoTest, PointsRoundTrip) {
  const std::vector<real> pts{1.5, -2, 3, 0.25, 5, 6};
  write_points(path("p.txt"), pts.data(), 2, 3);
  index_t rows, cols;
  const auto back = read_points(path("p.txt"), rows, cols);
  EXPECT_EQ(rows, 2);
  EXPECT_EQ(cols, 3);
  ASSERT_EQ(back.size(), 6u);
  for (usize i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(back[i], pts[i]);
}

TEST_F(IoTest, RaggedPointsThrow) {
  std::ofstream(path("p.txt")) << "1 2 3\n4 5\n";
  index_t r, c;
  EXPECT_THROW((void)read_points(path("p.txt"), r, c), std::invalid_argument);
}

TEST_F(IoTest, PointsSkipComments) {
  std::ofstream(path("p.txt")) << "# header\n1 2\n3 4\n";
  index_t r, c;
  const auto pts = read_points(path("p.txt"), r, c);
  EXPECT_EQ(r, 2);
  EXPECT_EQ(c, 2);
  EXPECT_DOUBLE_EQ(pts[3], 4.0);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  sparse::Coo coo(3, 4);
  coo.push(0, 1, 1.5);
  coo.push(2, 3, -2.25);
  coo.push(1, 0, 7.0);
  write_matrix_market(path("m.mtx"), coo);
  const sparse::Coo back = read_matrix_market(path("m.mtx"));
  EXPECT_EQ(back.rows, 3);
  EXPECT_EQ(back.cols, 4);
  ASSERT_EQ(back.nnz(), 3);
  EXPECT_DOUBLE_EQ(back.values[0], 1.5);
  EXPECT_DOUBLE_EQ(back.values[1], -2.25);
  EXPECT_DOUBLE_EQ(back.values[2], 7.0);
  EXPECT_EQ(back.row_idx, coo.row_idx);
  EXPECT_EQ(back.col_idx, coo.col_idx);
}

TEST_F(IoTest, MatrixMarketSymmetricMirrors) {
  std::ofstream(path("s.mtx"))
      << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "3 3 2\n"
      << "2 1 5.0\n"
      << "3 3 1.0\n";
  const sparse::Coo coo = read_matrix_market(path("s.mtx"));
  ASSERT_EQ(coo.nnz(), 3);  // off-diagonal mirrored, diagonal not
  sparse::Csr csr = sparse::coo_to_csr(coo);
  EXPECT_DOUBLE_EQ(csr.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 2), 1.0);
}

TEST_F(IoTest, MatrixMarketPatternDefaultsToOne) {
  std::ofstream(path("p.mtx"))
      << "%%MatrixMarket matrix coordinate pattern general\n"
      << "% comment line\n"
      << "2 2 1\n"
      << "1 2\n";
  const sparse::Coo coo = read_matrix_market(path("p.mtx"));
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.values[0], 1.0);
  EXPECT_EQ(coo.row_idx[0], 0);
  EXPECT_EQ(coo.col_idx[0], 1);
}

TEST_F(IoTest, MatrixMarketRejectsBadInput) {
  std::ofstream(path("bad1.mtx")) << "not a banner\n1 1 0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad1.mtx")),
               std::invalid_argument);
  std::ofstream(path("bad2.mtx"))
      << "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad2.mtx")),
               std::invalid_argument);
  std::ofstream(path("bad3.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad3.mtx")),
               std::invalid_argument);  // truncated
  std::ofstream(path("bad4.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad4.mtx")),
               std::invalid_argument);  // out of range
}

TEST_F(IoTest, GarbageInputsThrowOrDegradeGracefully) {
  // Binary junk in an edge list: corrupted lines throw a line-numbered
  // std::invalid_argument — never a crash, never a silent mis-parse.
  std::ofstream(path("junk.txt"), std::ios::binary)
      << "\x01\x02\xff garbage\n12 bananas\n3 4\n";
  EXPECT_THROW((void)read_edge_list(path("junk.txt"), false),
               std::invalid_argument);

  // Junk in a MatrixMarket body throws cleanly.
  std::ofstream(path("junk.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n"
      << "2 2 1\nhello world\n";
  EXPECT_THROW((void)read_matrix_market(path("junk.mtx")),
               std::invalid_argument);

  // Junk in a points file throws too.
  std::ofstream(path("junk.pts")) << "abc def\n1 2\n";
  index_t r, c;
  EXPECT_THROW((void)read_points(path("junk.pts"), r, c),
               std::invalid_argument);
}

// Every loader error names the file and 1-based line of the offending input.
TEST_F(IoTest, ParseErrorsCarryLineNumbers) {
  auto expect_line = [](auto&& fn, const std::string& file,
                        const std::string& lineno) {
    try {
      fn();
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(file + ":" + lineno + ":"), std::string::npos)
          << "missing '" << file << ":" << lineno << ":' in: " << what;
    }
  };

  std::ofstream(path("e.txt")) << "# ok\n0 1\n2 oops\n";
  expect_line([&] { (void)read_edge_list(path("e.txt")); }, path("e.txt"),
              "3");

  std::ofstream(path("neg.txt")) << "0 1\n-3 4\n";
  expect_line([&] { (void)read_edge_list(path("neg.txt")); }, path("neg.txt"),
              "2");

  std::ofstream(path("w.txt")) << "0 1 not_a_weight\n";
  expect_line([&] { (void)read_edge_list(path("w.txt")); }, path("w.txt"),
              "1");

  std::ofstream(path("p.txt")) << "1 2\n3 x\n";
  expect_line(
      [&] {
        index_t r, c;
        (void)read_points(path("p.txt"), r, c);
      },
      path("p.txt"), "2");

  std::ofstream(path("rag.txt")) << "1 2 3\n\n4 5\n";
  expect_line(
      [&] {
        index_t r, c;
        (void)read_points(path("rag.txt"), r, c);
      },
      path("rag.txt"), "3");

  std::ofstream(path("l.txt")) << "0\n1\ntwo\n";
  expect_line([&] { (void)read_labels(path("l.txt")); }, path("l.txt"), "3");

  std::ofstream(path("m.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n"
      << "% comment\n"
      << "2 2 2\n"
      << "1 1 1.0\n"
      << "9 1 1.0\n";
  expect_line([&] { (void)read_matrix_market(path("m.mtx")); }, path("m.mtx"),
              "5");
}

TEST_F(IoTest, EdgeListRejectsNonFiniteAndTrailingGarbage) {
  // "nan"/"inf" tokens do not parse as numbers in narrow streams; either way
  // the loader must reject the line rather than store a poisoned weight.
  std::ofstream(path("nan.txt")) << "0 1 nan\n";
  EXPECT_THROW((void)read_edge_list(path("nan.txt")), std::invalid_argument);
  std::ofstream(path("ovf.txt")) << "0 1 1e99999\n";
  EXPECT_THROW((void)read_edge_list(path("ovf.txt")), std::invalid_argument);
  std::ofstream(path("trail.txt")) << "0 1 2.5 surprise\n";
  EXPECT_THROW((void)read_edge_list(path("trail.txt")),
               std::invalid_argument);
}

TEST_F(IoTest, MatrixMarketRejectsHostileHeaders) {
  // A header claiming far more entries than the file could hold must be
  // rejected up front instead of driving a giant reserve().
  std::ofstream(path("big.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n"
      << "10 10 900000000000\n"
      << "1 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("big.mtx")),
               std::invalid_argument);

  std::ofstream(path("negdim.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n"
      << "-2 2 1\n"
      << "1 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("negdim.mtx")),
               std::invalid_argument);
}

// Property test: flipping any single byte of a valid file must leave the
// loader in one of two states — clean success or std::invalid_argument.
// Crashes, hangs, and foreign exception types are all failures.
TEST_F(IoTest, CorruptedByteFuzzNeverCrashes) {
  const std::string edge_file = path("fuzz_e.txt");
  const std::string pts_file = path("fuzz_p.txt");
  const std::string mtx_file = path("fuzz_m.mtx");
  std::ofstream(edge_file) << "# graph\n0 1 2.5\n1 2\n2 3 0.25\n10 11\n";
  std::ofstream(pts_file) << "1.5 -2.0\n0.25 3\n4 5\n";
  std::ofstream(mtx_file) << "%%MatrixMarket matrix coordinate real general\n"
                          << "3 3 3\n1 1 1.0\n2 3 -2.5\n3 2 4\n";

  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  };
  auto run_fuzz = [&](const std::string& orig_path, auto&& load) {
    const std::string orig = slurp(orig_path);
    const std::string mutated_path = orig_path + ".mut";
    std::mt19937 rng(12345);  // deterministic corruption pattern
    for (usize pos = 0; pos < orig.size(); ++pos) {
      std::string mutated = orig;
      mutated[pos] = static_cast<char>(rng());
      std::ofstream(mutated_path, std::ios::binary) << mutated;
      try {
        load(mutated_path);  // success is fine (benign flip)
      } catch (const std::invalid_argument&) {
        // rejected cleanly — fine
      } catch (const std::exception& e) {
        FAIL() << "byte " << pos << " raised non-invalid_argument: "
               << e.what();
      }
    }
  };

  run_fuzz(edge_file,
           [](const std::string& p) { (void)read_edge_list(p); });
  run_fuzz(pts_file, [](const std::string& p) {
    index_t r, c;
    (void)read_points(p, r, c);
  });
  run_fuzz(mtx_file,
           [](const std::string& p) { (void)read_matrix_market(p); });
}

TEST_F(IoTest, EmptyFilesAreHandled) {
  std::ofstream(path("empty.txt")).close();
  const sparse::Coo coo = read_edge_list(path("empty.txt"), true);
  EXPECT_EQ(coo.rows, 0);
  EXPECT_EQ(coo.nnz(), 0);
  index_t r, c;
  const auto pts = read_points(path("empty.txt"), r, c);
  EXPECT_EQ(r, 0);
  EXPECT_TRUE(pts.empty());
  EXPECT_TRUE(read_labels(path("empty.txt")).empty());
  EXPECT_THROW((void)read_matrix_market(path("empty.txt")),
               std::invalid_argument);
}

// Precision-aware writers: values written at a narrow storage rung must read
// back as exactly quantize(v, rung) — the shortened decimal forms
// (round_trip_digits) are lossless for their rung, so narrow files cost
// fewer bytes without smuggling in extra rounding error.
TEST_F(IoTest, NarrowStorageRoundTripFuzz) {
  std::mt19937_64 gen(20260808);
  std::uniform_real_distribution<double> mant(-1.0, 1.0);
  std::uniform_int_distribution<int> expo(-30, 30);
  std::vector<real> pts(64 * 3);
  for (real& v : pts) v = std::ldexp(mant(gen), expo(gen));
  pts[0] = 0.0;
  pts[1] = -0.0;
  pts[2] = 1.0 / 3.0;

  for (const Precision p :
       {Precision::kFp64, Precision::kFp32, Precision::kBf16}) {
    SCOPED_TRACE(static_cast<int>(p));
    write_points(path("pq.txt"), pts.data(), 64, 3, p);
    index_t rows, cols;
    const auto back = read_points(path("pq.txt"), rows, cols);
    ASSERT_EQ(rows, 64);
    ASSERT_EQ(cols, 3);
    for (usize i = 0; i < pts.size(); ++i) {
      const real want = quantize(pts[i], p);
      EXPECT_EQ(back[i], want) << "i=" << i << " v=" << pts[i];
    }

    sparse::Coo coo(8, 8);
    std::uniform_int_distribution<index_t> idx(0, 7);
    for (int e = 0; e < 40; ++e) {
      coo.push(idx(gen), idx(gen), std::ldexp(mant(gen), expo(gen)));
    }
    write_matrix_market(path("mq.mtx"), coo, p);
    const sparse::Coo mm = read_matrix_market(path("mq.mtx"));
    ASSERT_EQ(mm.nnz(), coo.nnz());
    for (usize i = 0; i < coo.values.size(); ++i) {
      EXPECT_EQ(mm.values[i], quantize(coo.values[i], p)) << "entry " << i;
    }

    write_edge_list(path("eq.txt"), coo, p);
    // read_edge_list symmetrizes, so only check that each surviving weight
    // is some rung value (exactly representable at p).
    const sparse::Coo el = read_edge_list(path("eq.txt"), false);
    for (const real v : el.values) EXPECT_EQ(v, quantize(v, p));
  }

  // The fp64 default stays bit-exact (17 significant digits).
  write_points(path("pd.txt"), pts.data(), 64, 3);
  index_t rows, cols;
  const auto back = read_points(path("pd.txt"), rows, cols);
  for (usize i = 0; i < pts.size(); ++i) EXPECT_EQ(back[i], pts[i]);
}

}  // namespace
}  // namespace fastsc::data
