#include "data/io.h"

#include "sparse/convert.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace fastsc::data {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fastsc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, EdgeListRoundTrip) {
  sparse::Coo coo(3, 3);
  coo.push(0, 1, 1.5);
  coo.push(1, 0, 1.5);
  coo.push(1, 2, 2.0);
  coo.push(2, 1, 2.0);
  write_edge_list(path("g.txt"), coo);
  const sparse::Coo back = read_edge_list(path("g.txt"), /*symmetrize=*/false);
  EXPECT_EQ(back.nnz(), 4);
  EXPECT_EQ(back.rows, 3);
}

TEST_F(IoTest, ReadEdgeListSymmetrizes) {
  std::ofstream(path("e.txt")) << "0 1\n1 2\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), true);
  EXPECT_EQ(coo.nnz(), 4);
}

TEST_F(IoTest, ReadEdgeListSkipsCommentsAndSelfLoops) {
  std::ofstream(path("e.txt")) << "# comment\n0 0\n0 1\n\n# more\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  EXPECT_EQ(coo.nnz(), 1);
}

TEST_F(IoTest, ReadEdgeListCompactsSparseIds) {
  std::ofstream(path("e.txt")) << "100 900\n900 5000\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  EXPECT_EQ(coo.rows, 3);  // ids compacted to 0..2
}

TEST_F(IoTest, ReadEdgeListParsesWeights) {
  std::ofstream(path("e.txt")) << "0 1 2.5\n1 2\n";
  const sparse::Coo coo = read_edge_list(path("e.txt"), false);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_DOUBLE_EQ(coo.values[0], 2.5);
  EXPECT_DOUBLE_EQ(coo.values[1], 1.0);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list(path("nope.txt")), std::invalid_argument);
  EXPECT_THROW((void)read_labels(path("nope.txt")), std::invalid_argument);
  index_t r, c;
  EXPECT_THROW((void)read_points(path("nope.txt"), r, c),
               std::invalid_argument);
}

TEST_F(IoTest, LabelsRoundTrip) {
  const std::vector<index_t> labels{0, 2, 1, 2, 0};
  write_labels(path("l.txt"), labels);
  EXPECT_EQ(read_labels(path("l.txt")), labels);
}

TEST_F(IoTest, PointsRoundTrip) {
  const std::vector<real> pts{1.5, -2, 3, 0.25, 5, 6};
  write_points(path("p.txt"), pts.data(), 2, 3);
  index_t rows, cols;
  const auto back = read_points(path("p.txt"), rows, cols);
  EXPECT_EQ(rows, 2);
  EXPECT_EQ(cols, 3);
  ASSERT_EQ(back.size(), 6u);
  for (usize i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(back[i], pts[i]);
}

TEST_F(IoTest, RaggedPointsThrow) {
  std::ofstream(path("p.txt")) << "1 2 3\n4 5\n";
  index_t r, c;
  EXPECT_THROW((void)read_points(path("p.txt"), r, c), std::invalid_argument);
}

TEST_F(IoTest, PointsSkipComments) {
  std::ofstream(path("p.txt")) << "# header\n1 2\n3 4\n";
  index_t r, c;
  const auto pts = read_points(path("p.txt"), r, c);
  EXPECT_EQ(r, 2);
  EXPECT_EQ(c, 2);
  EXPECT_DOUBLE_EQ(pts[3], 4.0);
}

TEST_F(IoTest, MatrixMarketRoundTrip) {
  sparse::Coo coo(3, 4);
  coo.push(0, 1, 1.5);
  coo.push(2, 3, -2.25);
  coo.push(1, 0, 7.0);
  write_matrix_market(path("m.mtx"), coo);
  const sparse::Coo back = read_matrix_market(path("m.mtx"));
  EXPECT_EQ(back.rows, 3);
  EXPECT_EQ(back.cols, 4);
  ASSERT_EQ(back.nnz(), 3);
  EXPECT_DOUBLE_EQ(back.values[0], 1.5);
  EXPECT_DOUBLE_EQ(back.values[1], -2.25);
  EXPECT_DOUBLE_EQ(back.values[2], 7.0);
  EXPECT_EQ(back.row_idx, coo.row_idx);
  EXPECT_EQ(back.col_idx, coo.col_idx);
}

TEST_F(IoTest, MatrixMarketSymmetricMirrors) {
  std::ofstream(path("s.mtx"))
      << "%%MatrixMarket matrix coordinate real symmetric\n"
      << "3 3 2\n"
      << "2 1 5.0\n"
      << "3 3 1.0\n";
  const sparse::Coo coo = read_matrix_market(path("s.mtx"));
  ASSERT_EQ(coo.nnz(), 3);  // off-diagonal mirrored, diagonal not
  sparse::Csr csr = sparse::coo_to_csr(coo);
  EXPECT_DOUBLE_EQ(csr.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 5.0);
  EXPECT_DOUBLE_EQ(csr.at(2, 2), 1.0);
}

TEST_F(IoTest, MatrixMarketPatternDefaultsToOne) {
  std::ofstream(path("p.mtx"))
      << "%%MatrixMarket matrix coordinate pattern general\n"
      << "% comment line\n"
      << "2 2 1\n"
      << "1 2\n";
  const sparse::Coo coo = read_matrix_market(path("p.mtx"));
  ASSERT_EQ(coo.nnz(), 1);
  EXPECT_DOUBLE_EQ(coo.values[0], 1.0);
  EXPECT_EQ(coo.row_idx[0], 0);
  EXPECT_EQ(coo.col_idx[0], 1);
}

TEST_F(IoTest, MatrixMarketRejectsBadInput) {
  std::ofstream(path("bad1.mtx")) << "not a banner\n1 1 0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad1.mtx")),
               std::invalid_argument);
  std::ofstream(path("bad2.mtx"))
      << "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad2.mtx")),
               std::invalid_argument);
  std::ofstream(path("bad3.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad3.mtx")),
               std::invalid_argument);  // truncated
  std::ofstream(path("bad4.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
  EXPECT_THROW((void)read_matrix_market(path("bad4.mtx")),
               std::invalid_argument);  // out of range
}

TEST_F(IoTest, GarbageInputsThrowOrDegradeGracefully) {
  // Binary junk in an edge list: unparseable lines are skipped, valid
  // numeric prefixes are honored — never a crash.
  std::ofstream(path("junk.txt"), std::ios::binary)
      << "\x01\x02\xff garbage\n12 bananas\n3 4\n";
  const sparse::Coo coo = read_edge_list(path("junk.txt"), false);
  EXPECT_LE(coo.nnz(), 2);  // at most the "12 ..." and "3 4" lines

  // Junk in a MatrixMarket body throws cleanly.
  std::ofstream(path("junk.mtx"))
      << "%%MatrixMarket matrix coordinate real general\n"
      << "2 2 1\nhello world\n";
  EXPECT_THROW((void)read_matrix_market(path("junk.mtx")),
               std::invalid_argument);

  // Junk in a points file: non-numeric rows are skipped entirely.
  std::ofstream(path("junk.pts")) << "abc def\n1 2\n";
  index_t r, c;
  const auto pts = read_points(path("junk.pts"), r, c);
  EXPECT_EQ(r, 1);
  EXPECT_EQ(c, 2);
  (void)pts;
}

TEST_F(IoTest, EmptyFilesAreHandled) {
  std::ofstream(path("empty.txt")).close();
  const sparse::Coo coo = read_edge_list(path("empty.txt"), true);
  EXPECT_EQ(coo.rows, 0);
  EXPECT_EQ(coo.nnz(), 0);
  index_t r, c;
  const auto pts = read_points(path("empty.txt"), r, c);
  EXPECT_EQ(r, 0);
  EXPECT_TRUE(pts.empty());
  EXPECT_TRUE(read_labels(path("empty.txt")).empty());
  EXPECT_THROW((void)read_matrix_market(path("empty.txt")),
               std::invalid_argument);
}

}  // namespace
}  // namespace fastsc::data
