// IRLM checkpoint/resume tests: RngState round trips, restart-boundary
// capture, binary save/load, resume equivalence after a kFailed solve, the
// configuration-mismatch guard, and the pipeline-level resume_failed_solve
// degradation path driven by an injected convergence stall.
#include "lanczos/irlm.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "core/spectral.h"
#include "data/sbm.h"
#include "device/device.h"
#include "fault/fault.h"
#include "lanczos/rci.h"
#include "metrics/external.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::lanczos {
namespace {

sparse::Csr random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.push(i, i, rng.uniform(0, 2));
    const auto j = static_cast<index_t>(rng.uniform_index(n));
    if (j != i) {
      const real v = rng.uniform(-1, 1);
      coo.push(i, j, v);
      coo.push(j, i, v);
    }
  }
  sparse::sort_and_merge(coo);
  return sparse::coo_to_csr(coo);
}

/// Drive the reverse-communication loop to completion.  After restore() the
/// solver is mid-iteration awaiting a matvec, so the caller must supply the
/// product *before* the next step() (pass resumed = true).
SymLanczos::Action run_to_done(SymLanczos& solver, const sparse::Csr& a,
                               bool resumed = false) {
  SymLanczos::Action action =
      resumed ? SymLanczos::Action::kMultiply : solver.step();
  while (action == SymLanczos::Action::kMultiply) {
    sparse::csr_mv(a, solver.multiply_input().data(),
                   solver.multiply_output().data());
    action = solver.step();
  }
  return action;
}

TEST(RngState, RoundTripReproducesStream) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) (void)rng.uniform();
  (void)rng.normal();  // populate the cached-normal half
  const RngState snap = rng.state();
  std::vector<real> expected;
  for (int i = 0; i < 10; ++i) expected.push_back(rng.normal());
  Rng restored(999);  // different seed: state must fully override it
  restored.set_state(snap);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(restored.normal(), expected[static_cast<usize>(i)]);
  }
}

TEST(Checkpoint, CapturedAtRestartBoundaries) {
  const index_t n = 80;
  const sparse::Csr a = random_symmetric(n, 1);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.ncv = 8;  // small basis: forces several restarts
  cfg.tol = 1e-10;
  cfg.capture_checkpoints = true;
  SymLanczos solver(cfg);
  EXPECT_FALSE(solver.has_checkpoint());
  const auto action = run_to_done(solver, a);
  EXPECT_EQ(action, SymLanczos::Action::kConverged);
  ASSERT_TRUE(solver.has_checkpoint());
  const LanczosCheckpoint& cp = solver.last_checkpoint();
  EXPECT_TRUE(cp.valid());
  EXPECT_EQ(cp.n, n);
  EXPECT_EQ(cp.nev, 3);
  EXPECT_EQ(cp.ncv, 8);
  EXPECT_LE(cp.restart_count, solver.stats().restart_count);
  EXPECT_EQ(cp.v.size(), static_cast<usize>(9) * static_cast<usize>(n));
  EXPECT_EQ(cp.t.size(), 64u);
}

TEST(Checkpoint, CaptureOffByDefault) {
  const index_t n = 50;
  const sparse::Csr a = random_symmetric(n, 2);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  SymLanczos solver(cfg);
  (void)run_to_done(solver, a);
  EXPECT_FALSE(solver.has_checkpoint());
}

TEST(Checkpoint, SaveLoadRoundTrip) {
  const index_t n = 60;
  const sparse::Csr a = random_symmetric(n, 3);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.ncv = 8;
  cfg.capture_checkpoints = true;
  SymLanczos solver(cfg);
  (void)run_to_done(solver, a);
  ASSERT_TRUE(solver.has_checkpoint());
  const LanczosCheckpoint& cp = solver.last_checkpoint();

  std::stringstream ss;
  cp.save(ss);
  const LanczosCheckpoint back = LanczosCheckpoint::load(ss);
  EXPECT_EQ(back.n, cp.n);
  EXPECT_EQ(back.nev, cp.nev);
  EXPECT_EQ(back.ncv, cp.ncv);
  EXPECT_EQ(back.which, cp.which);
  EXPECT_EQ(back.j, cp.j);
  EXPECT_EQ(back.nkept, cp.nkept);
  EXPECT_EQ(back.beta_last, cp.beta_last);
  EXPECT_EQ(back.v, cp.v);
  EXPECT_EQ(back.t, cp.t);
  EXPECT_EQ(back.restart_count, cp.restart_count);
  EXPECT_EQ(back.matvec_count, cp.matvec_count);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(back.rng.s[i], cp.rng.s[i]);
}

TEST(Checkpoint, LoadRejectsBadMagic) {
  const index_t n = 40;
  const sparse::Csr a = random_symmetric(n, 4);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  cfg.capture_checkpoints = true;
  SymLanczos solver(cfg);
  (void)run_to_done(solver, a);
  ASSERT_TRUE(solver.has_checkpoint());
  std::stringstream ss;
  solver.last_checkpoint().save(ss);
  std::string bytes = ss.str();
  bytes[0] ^= 0x5a;  // corrupt the magic
  std::stringstream bad(bytes);
  EXPECT_THROW((void)LanczosCheckpoint::load(bad), std::invalid_argument);
  std::stringstream truncated(std::string(bytes.data(), 4));
  EXPECT_THROW((void)LanczosCheckpoint::load(truncated),
               std::invalid_argument);
}

TEST(Checkpoint, ResumeAfterFailureMatchesUninterruptedSolve) {
  const index_t n = 90;
  const sparse::Csr a = random_symmetric(n, 5);

  // Reference: ample budget, no interruptions.
  LanczosConfig full;
  full.n = n;
  full.nev = 3;
  full.ncv = 8;
  full.tol = 1e-10;
  full.max_restarts = 300;
  SymLanczos reference(full);
  ASSERT_EQ(run_to_done(reference, a), SymLanczos::Action::kConverged);

  // Interrupted: same solve with a starved restart budget fails...
  LanczosConfig starved = full;
  starved.max_restarts = 2;
  starved.capture_checkpoints = true;
  SymLanczos solver(starved);
  ASSERT_EQ(run_to_done(solver, a), SymLanczos::Action::kFailed);
  ASSERT_TRUE(solver.has_checkpoint());

  // ...then resumes from its last restart boundary with the full budget and
  // must land on the same eigenvalues.
  const LanczosCheckpoint cp = solver.last_checkpoint();
  solver.restore(cp);
  solver.set_max_restarts(300);
  ASSERT_EQ(run_to_done(solver, a, /*resumed=*/true),
            SymLanczos::Action::kConverged);
  ASSERT_EQ(solver.eigenvalues().size(), reference.eigenvalues().size());
  for (usize i = 0; i < reference.eigenvalues().size(); ++i) {
    EXPECT_NEAR(solver.eigenvalues()[i], reference.eigenvalues()[i], 1e-8);
  }
  // The resumed stats continue the checkpointed counts, not the failed tail.
  EXPECT_GE(solver.stats().restart_count, cp.restart_count);
}

TEST(Checkpoint, ResumeIntoFreshSolverViaSerialization) {
  const index_t n = 70;
  const sparse::Csr a = random_symmetric(n, 6);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.ncv = 8;
  cfg.tol = 1e-10;
  cfg.max_restarts = 2;
  cfg.capture_checkpoints = true;
  SymLanczos first(cfg);
  ASSERT_EQ(run_to_done(first, a), SymLanczos::Action::kFailed);
  std::stringstream ss;
  first.last_checkpoint().save(ss);

  // A brand-new solver (different process in real life) picks it up.
  LanczosConfig resumed_cfg = cfg;
  resumed_cfg.max_restarts = 300;
  SymLanczos second(resumed_cfg);
  second.restore(LanczosCheckpoint::load(ss));
  ASSERT_EQ(run_to_done(second, a, /*resumed=*/true),
            SymLanczos::Action::kConverged);

  LanczosConfig full = cfg;
  full.max_restarts = 300;
  full.capture_checkpoints = false;
  SymLanczos reference(full);
  ASSERT_EQ(run_to_done(reference, a), SymLanczos::Action::kConverged);
  for (usize i = 0; i < reference.eigenvalues().size(); ++i) {
    EXPECT_NEAR(second.eigenvalues()[i], reference.eigenvalues()[i], 1e-8);
  }
}

TEST(Checkpoint, RestoreRejectsConfigMismatch) {
  const index_t n = 40;
  const sparse::Csr a = random_symmetric(n, 7);
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  cfg.ncv = 8;
  cfg.capture_checkpoints = true;
  SymLanczos solver(cfg);
  (void)run_to_done(solver, a);
  ASSERT_TRUE(solver.has_checkpoint());
  const LanczosCheckpoint cp = solver.last_checkpoint();

  LanczosConfig other = cfg;
  other.n = n + 1;
  SymLanczos wrong_n(other);
  EXPECT_THROW(wrong_n.restore(cp), std::invalid_argument);

  other = cfg;
  other.ncv = 10;
  SymLanczos wrong_ncv(other);
  EXPECT_THROW(wrong_ncv.restore(cp), std::invalid_argument);

  other = cfg;
  other.which = EigWhich::kSmallestAlgebraic;
  SymLanczos wrong_which(other);
  EXPECT_THROW(wrong_which.restore(cp), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pipeline-level resume: an injected convergence stall exhausts the restart
// budget, and DegradationPolicy::resume_failed_solve continues from the
// checkpoint with an extended budget instead of falling back.
// ---------------------------------------------------------------------------

TEST(Checkpoint, PipelineResumesFailedSolveFromCheckpoint) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(200, 4);
  p.p_in = 0.5;
  p.p_out = 0.02;
  p.seed = 3;
  const data::SbmGraph g = data::make_sbm(p);

  core::SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.backend = core::Backend::kDevice;
  cfg.seed = 42;
  cfg.max_restarts = 4;
  cfg.degradation.resume_failed_solve = true;
  // Stall exactly the checks of the first attempt (restarts 0..4); the
  // resumed attempt's checks see the real convergence state.
  cfg.faults =
      fault::FaultPlan::parse("site=lanczos.convergence,nth=1,count=5");
  device::DeviceContext ctx(1);
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg, &ctx);
  fault::injector().disarm();

  EXPECT_TRUE(r.eig_converged);
  ASSERT_TRUE(r.degradation.degraded);
  bool resumed = false;
  for (const core::DegradationEvent& e : r.degradation.events) {
    if (e.action == "solver-resume") resumed = true;
  }
  EXPECT_TRUE(resumed);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
}

TEST(Checkpoint, PipelineResumeBudgetIsBounded) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(120, 3);
  p.p_in = 0.5;
  p.p_out = 0.02;
  p.seed = 4;
  const data::SbmGraph g = data::make_sbm(p);

  core::SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.backend = core::Backend::kDevice;
  cfg.max_restarts = 2;
  cfg.degradation.resume_failed_solve = true;
  cfg.degradation.max_solver_resumes = 1;
  // A permanent stall: the resume also fails, and the pipeline reports the
  // partial result rather than resuming forever.
  cfg.faults =
      fault::FaultPlan::parse("site=lanczos.convergence,nth=1,count=0");
  device::DeviceContext ctx(1);
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg, &ctx);
  fault::injector().disarm();

  EXPECT_FALSE(r.eig_converged);
  index_t resumes = 0;
  for (const core::DegradationEvent& e : r.degradation.events) {
    if (e.action == "solver-resume") ++resumes;
  }
  EXPECT_EQ(resumes, 1);
  EXPECT_EQ(r.labels.size(), static_cast<usize>(g.w.rows));
}

}  // namespace
}  // namespace fastsc::lanczos
