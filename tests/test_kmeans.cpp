#include "kmeans/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "kmeans/lloyd.h"

namespace fastsc::kmeans {
namespace {

/// Well-separated Gaussian blobs with ground-truth labels.
struct Blobs {
  std::vector<real> x;  // n x d
  std::vector<index_t> truth;
  index_t n, d, k;
};

Blobs make_blobs(index_t per_cluster, index_t k, index_t d, real spread,
                 std::uint64_t seed) {
  Blobs b;
  b.k = k;
  b.d = d;
  b.n = per_cluster * k;
  Rng rng(seed);
  std::vector<real> centers(static_cast<usize>(k) * static_cast<usize>(d));
  for (index_t c = 0; c < k; ++c) {
    for (index_t l = 0; l < d; ++l) {
      centers[static_cast<usize>(c * d + l)] =
          static_cast<real>(c * 10) + rng.uniform(-1, 1);
    }
  }
  b.x.resize(static_cast<usize>(b.n) * static_cast<usize>(d));
  b.truth.resize(static_cast<usize>(b.n));
  for (index_t i = 0; i < b.n; ++i) {
    const index_t c = i / per_cluster;
    b.truth[static_cast<usize>(i)] = c;
    for (index_t l = 0; l < d; ++l) {
      b.x[static_cast<usize>(i * d + l)] =
          centers[static_cast<usize>(c * d + l)] + spread * rng.normal();
    }
  }
  return b;
}

/// True iff predicted is a relabeling of truth (perfect clustering).
bool partitions_equal(const std::vector<index_t>& a,
                      const std::vector<index_t>& b) {
  std::map<index_t, index_t> fwd, bwd;
  for (usize i = 0; i < a.size(); ++i) {
    if (fwd.count(a[i]) && fwd[a[i]] != b[i]) return false;
    if (bwd.count(b[i]) && bwd[b[i]] != a[i]) return false;
    fwd[a[i]] = b[i];
    bwd[b[i]] = a[i];
  }
  return true;
}

class KmeansDevice : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(KmeansDevice, RecoversWellSeparatedBlobs) {
  const Blobs b = make_blobs(40, 4, 3, 0.2, 7);
  KmeansConfig cfg;
  cfg.k = 4;
  cfg.seed = 11;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(partitions_equal(r.labels, b.truth));
}

TEST_P(KmeansDevice, LabelsInRangeAndSized) {
  const Blobs b = make_blobs(20, 3, 2, 0.5, 13);
  KmeansConfig cfg;
  cfg.k = 3;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  ASSERT_EQ(r.labels.size(), static_cast<usize>(b.n));
  for (index_t l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
  ASSERT_EQ(r.centroids.size(), static_cast<usize>(3 * b.d));
}

TEST_P(KmeansDevice, KEqualsOnePutsEverythingTogether) {
  const Blobs b = make_blobs(25, 2, 2, 1.0, 17);
  KmeansConfig cfg;
  cfg.k = 1;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  for (index_t l : r.labels) EXPECT_EQ(l, 0);
  // The single centroid is the global mean.
  for (index_t l = 0; l < b.d; ++l) {
    real mean = 0;
    for (index_t i = 0; i < b.n; ++i) {
      mean += b.x[static_cast<usize>(i * b.d + l)];
    }
    mean /= static_cast<real>(b.n);
    EXPECT_NEAR(r.centroids[static_cast<usize>(l)], mean, 1e-9);
  }
}

TEST_P(KmeansDevice, KEqualsNSeparatesEverything) {
  const Blobs b = make_blobs(1, 6, 2, 0.0, 19);
  KmeansConfig cfg;
  cfg.k = 6;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  std::set<index_t> used(r.labels.begin(), r.labels.end());
  EXPECT_EQ(used.size(), 6u);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST_P(KmeansDevice, MatchesLloydObjectiveQuality) {
  const Blobs b = make_blobs(30, 5, 4, 0.4, 23);
  KmeansConfig cfg;
  cfg.k = 5;
  cfg.seed = 3;
  const KmeansResult dev = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  const KmeansResult host = kmeans_lloyd_host(b.x.data(), b.n, b.d, cfg);
  // Both should land near the planted optimum; allow small slack.
  EXPECT_LT(dev.objective, host.objective * 1.5 + 1e-9);
  EXPECT_LT(host.objective, dev.objective * 1.5 + 1e-9);
}

TEST_P(KmeansDevice, RespectsMaxIters) {
  const Blobs b = make_blobs(50, 4, 2, 2.0, 29);  // overlapping blobs
  KmeansConfig cfg;
  cfg.k = 4;
  cfg.max_iters = 1;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_LE(r.iterations, 1);
}

TEST_P(KmeansDevice, DeterministicForFixedSeed) {
  const Blobs b = make_blobs(20, 3, 3, 0.6, 31);
  KmeansConfig cfg;
  cfg.k = 3;
  cfg.seed = 99;
  const KmeansResult r1 = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  const KmeansResult r2 = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_EQ(r1.labels, r2.labels);
  EXPECT_DOUBLE_EQ(r1.objective, r2.objective);
}

TEST_P(KmeansDevice, RandomSeedingAlsoWorks) {
  const Blobs b = make_blobs(40, 3, 2, 0.2, 37);
  KmeansConfig cfg;
  cfg.k = 3;
  cfg.seeding = Seeding::kRandom;
  const KmeansResult r = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_TRUE(r.converged);
  std::set<index_t> used(r.labels.begin(), r.labels.end());
  EXPECT_GE(used.size(), 2u);
}

TEST_P(KmeansDevice, CentroidUpdateStrategiesAgree) {
  const Blobs b = make_blobs(40, 5, 4, 0.5, 53);
  KmeansConfig cfg;
  cfg.k = 5;
  cfg.seed = 7;
  cfg.centroid_update = CentroidUpdate::kSortByLabel;
  const KmeansResult sorted = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  cfg.centroid_update = CentroidUpdate::kDirectAccumulate;
  const KmeansResult direct = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_EQ(sorted.labels, direct.labels);
  EXPECT_EQ(sorted.iterations, direct.iterations);
  ASSERT_EQ(sorted.centroids.size(), direct.centroids.size());
  for (usize i = 0; i < sorted.centroids.size(); ++i) {
    EXPECT_NEAR(sorted.centroids[i], direct.centroids[i], 1e-10);
  }
}

TEST_P(KmeansDevice, RestartsNeverWorsenObjective) {
  const Blobs b = make_blobs(20, 6, 2, 1.5, 59);  // overlapping: seeds matter
  KmeansConfig cfg;
  cfg.k = 6;
  cfg.seed = 2;
  cfg.seeding = Seeding::kRandom;
  const KmeansResult one = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  cfg.restarts = 6;
  const KmeansResult six = kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  EXPECT_LE(six.objective, one.objective + 1e-9);
}

TEST_P(KmeansDevice, RejectsNonFiniteData) {
  std::vector<real> x(20, 0.5);
  x[3] = std::numeric_limits<real>::quiet_NaN();
  KmeansConfig cfg;
  cfg.k = 2;
  EXPECT_THROW((void)kmeans_device(ctx_, x.data(), 10, 2, cfg),
               std::invalid_argument);
}

TEST_P(KmeansDevice, RejectsBadArguments) {
  const Blobs b = make_blobs(5, 2, 2, 0.1, 41);
  KmeansConfig cfg;
  cfg.k = 0;
  EXPECT_THROW((void)kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg),
               std::invalid_argument);
  cfg.k = b.n + 1;
  EXPECT_THROW((void)kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg),
               std::invalid_argument);
}

TEST_P(KmeansDevice, TransfersDataAndLabels) {
  const Blobs b = make_blobs(10, 2, 3, 0.1, 43);
  const auto before = ctx_.counters();
  KmeansConfig cfg;
  cfg.k = 2;
  (void)kmeans_device(ctx_, b.x.data(), b.n, b.d, cfg);
  // Algorithm 4 step 1 (H2D of V) and step 4 (D2H of labels).
  EXPECT_GT(ctx_.counters().bytes_h2d, before.bytes_h2d);
  EXPECT_GT(ctx_.counters().bytes_d2h, before.bytes_d2h);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, KmeansDevice, ::testing::Values(1, 4));

}  // namespace
}  // namespace fastsc::kmeans
