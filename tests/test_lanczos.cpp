#include "lanczos/irlm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lanczos/dense_eig.h"
#include "lanczos/rci.h"

namespace fastsc::lanczos {
namespace {

std::vector<real> random_sparse_symmetric(index_t n, index_t per_row,
                                          Rng& rng) {
  std::vector<real> a(static_cast<usize>(n) * static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    a[static_cast<usize>(i * n + i)] = rng.uniform(0, 2);
    for (index_t t = 0; t < per_row; ++t) {
      const auto j = static_cast<index_t>(
          rng.uniform_index(static_cast<std::uint64_t>(n)));
      const real v = rng.uniform(-0.5, 0.5);
      a[static_cast<usize>(i * n + j)] += v;
      a[static_cast<usize>(j * n + i)] += v;
    }
  }
  return a;
}

SymEigResult solve_dense_matrix(const std::vector<real>& a, index_t n,
                                LanczosConfig cfg) {
  cfg.n = n;
  return solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      real acc = 0;
      for (index_t j = 0; j < n; ++j) {
        acc += a[static_cast<usize>(i * n + j)] * x[j];
      }
      y[i] = acc;
    }
  });
}

TEST(Lanczos, RejectsBadConfig) {
  LanczosConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(SymLanczos{cfg}, std::invalid_argument);
  cfg.n = 5;
  cfg.nev = 0;
  EXPECT_THROW(SymLanczos{cfg}, std::invalid_argument);
  cfg.nev = 6;
  EXPECT_THROW(SymLanczos{cfg}, std::invalid_argument);
}

TEST(Lanczos, DiagonalMatrixLargestAlgebraic) {
  const index_t n = 100;
  LanczosConfig cfg;
  cfg.nev = 4;
  cfg.n = n;
  cfg.which = EigWhich::kLargestAlgebraic;
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i + 1) * x[i];
  });
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.eigenvalues.size(), 4u);
  EXPECT_NEAR(result.eigenvalues[0], 100, 1e-8);
  EXPECT_NEAR(result.eigenvalues[1], 99, 1e-8);
  EXPECT_NEAR(result.eigenvalues[2], 98, 1e-8);
  EXPECT_NEAR(result.eigenvalues[3], 97, 1e-8);
}

TEST(Lanczos, DiagonalMatrixSmallestAlgebraic) {
  const index_t n = 80;
  LanczosConfig cfg;
  cfg.nev = 3;
  cfg.n = n;
  cfg.which = EigWhich::kSmallestAlgebraic;
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i - 40) * x[i];
  });
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], -40, 1e-8);
  EXPECT_NEAR(result.eigenvalues[1], -39, 1e-8);
  EXPECT_NEAR(result.eigenvalues[2], -38, 1e-8);
}

TEST(Lanczos, LargestMagnitudePicksNegativeEnd) {
  const index_t n = 60;
  LanczosConfig cfg;
  cfg.nev = 2;
  cfg.n = n;
  cfg.which = EigWhich::kLargestMagnitude;
  // Spectrum: -100, and 1..59; LM must find -100 first, then 59.
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      y[i] = (i == 0 ? -100.0 : static_cast<real>(i)) * x[i];
    }
  });
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], -100, 1e-8);
  EXPECT_NEAR(result.eigenvalues[1], 59, 1e-8);
}

class LanczosVsDense
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LanczosVsDense, MatchesDenseOracle) {
  const auto [n, nev] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 1000 + nev));
  const auto a = random_sparse_symmetric(n, 4, rng);
  const auto dense = dense_sym_eig(a.data(), n);

  LanczosConfig cfg;
  cfg.nev = nev;
  cfg.which = EigWhich::kLargestAlgebraic;
  cfg.tol = 1e-10;
  const auto result = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(result.converged);
  ASSERT_EQ(result.eigenvalues.size(), static_cast<usize>(nev));
  for (index_t i = 0; i < nev; ++i) {
    EXPECT_NEAR(result.eigenvalues[static_cast<usize>(i)],
                dense.eigenvalues[static_cast<usize>(n - 1 - i)], 1e-7)
        << "eigenvalue " << i;
  }
  // Residual check on the extracted vectors.
  for (index_t k = 0; k < nev; ++k) {
    const real* v = result.eigenvectors.data() + k * n;
    real worst = 0;
    for (index_t i = 0; i < n; ++i) {
      real av = 0;
      for (index_t j = 0; j < n; ++j) {
        av += a[static_cast<usize>(i * n + j)] * v[j];
      }
      worst = std::max(worst,
                       std::fabs(av - result.eigenvalues[static_cast<usize>(k)] *
                                          v[i]));
    }
    EXPECT_LT(worst, 1e-6) << "eigenvector " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, LanczosVsDense,
    ::testing::Values(std::make_tuple(30, 1), std::make_tuple(50, 3),
                      std::make_tuple(100, 5), std::make_tuple(150, 10),
                      std::make_tuple(60, 20)));

TEST(Lanczos, SmallestAlgebraicMatchesDense) {
  const index_t n = 70;
  Rng rng(5);
  const auto a = random_sparse_symmetric(n, 3, rng);
  const auto dense = dense_sym_eig(a.data(), n);
  LanczosConfig cfg;
  cfg.nev = 4;
  cfg.which = EigWhich::kSmallestAlgebraic;
  const auto result = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(result.converged);
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(result.eigenvalues[static_cast<usize>(i)],
                dense.eigenvalues[static_cast<usize>(i)], 1e-7);
  }
}

TEST(Lanczos, NcvEqualToNGivesExactSolve) {
  const index_t n = 15;
  Rng rng(11);
  const auto a = random_sparse_symmetric(n, 3, rng);
  const auto dense = dense_sym_eig(a.data(), n);
  LanczosConfig cfg;
  cfg.nev = 5;
  cfg.ncv = n;  // full basis: exact after one sweep
  cfg.which = EigWhich::kLargestAlgebraic;
  const auto result = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(result.converged);
  for (index_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.eigenvalues[static_cast<usize>(i)],
                dense.eigenvalues[static_cast<usize>(n - 1 - i)], 1e-8);
  }
}

TEST(Lanczos, ResidualEstimatesAreHonest) {
  const index_t n = 90;
  Rng rng(21);
  const auto a = random_sparse_symmetric(n, 4, rng);
  LanczosConfig cfg;
  cfg.nev = 3;
  cfg.tol = 1e-9;
  const auto result = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(result.converged);
  for (real res : result.residuals) {
    EXPECT_LT(res, 1e-6);  // consistent with tol * ||A||
  }
}

TEST(Lanczos, StatsArepopulated) {
  const index_t n = 50;
  Rng rng(31);
  const auto a = random_sparse_symmetric(n, 3, rng);
  LanczosConfig cfg;
  cfg.nev = 2;
  const auto result = solve_dense_matrix(a, n, cfg);
  EXPECT_GT(result.stats.matvec_count, 0);
  EXPECT_GE(result.stats.rci_seconds, 0.0);
  EXPECT_GE(result.stats.converged_count, 2);
}

TEST(Lanczos, IdentityMatrixConverges) {
  // Degenerate spectrum (all eigenvalues 1): breakdown path must engage.
  const index_t n = 40;
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = x[i];
  });
  ASSERT_EQ(result.eigenvalues.size(), 3u);
  for (real lam : result.eigenvalues) EXPECT_NEAR(lam, 1.0, 1e-8);
}

TEST(Lanczos, DeterministicForFixedSeed) {
  const index_t n = 64;
  Rng rng(41);
  const auto a = random_sparse_symmetric(n, 3, rng);
  LanczosConfig cfg;
  cfg.nev = 3;
  cfg.seed = 1234;
  const auto r1 = solve_dense_matrix(a, n, cfg);
  const auto r2 = solve_dense_matrix(a, n, cfg);
  EXPECT_EQ(r1.eigenvalues, r2.eigenvalues);
  EXPECT_EQ(r1.stats.matvec_count, r2.stats.matvec_count);
}

TEST(Lanczos, LocalReorthMatchesFullOnWellSeparatedSpectrum) {
  const index_t n = 120;
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.which = EigWhich::kLargestAlgebraic;
  auto matvec = [&](const real* x, real* y) {
    // Geometric spectrum: well separated, safe for local reorth.
    for (index_t i = 0; i < n; ++i) {
      y[i] = std::pow(0.8, static_cast<real>(i)) * x[i];
    }
  };
  const auto full = solve_symmetric(cfg, matvec);
  cfg.reorth = ReorthMode::kLocal;
  const auto local = solve_symmetric(cfg, matvec);
  ASSERT_TRUE(full.converged);
  ASSERT_TRUE(local.converged);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(full.eigenvalues[i], local.eigenvalues[i], 1e-7);
  }
}

TEST(Lanczos, LocalReorthSpendsLessOrthoTime) {
  const index_t n = 400;
  Rng rng(61);
  const auto a = random_sparse_symmetric(n, 3, rng);
  LanczosConfig cfg;
  cfg.nev = 4;
  cfg.ncv = 60;
  const auto full = solve_dense_matrix(a, n, cfg);
  cfg.reorth = ReorthMode::kLocal;
  const auto local = solve_dense_matrix(a, n, cfg);
  // Per-matvec orthogonalization cost must be lower in local mode.
  const double full_per = full.stats.ortho_seconds /
                          static_cast<double>(full.stats.matvec_count);
  const double local_per = local.stats.ortho_seconds /
                           static_cast<double>(local.stats.matvec_count);
  EXPECT_LT(local_per, full_per);
}

TEST(Lanczos, WarmStartNeverHurtsAndAgrees) {
  const index_t n = 150;
  Rng rng(71);
  const auto a = random_sparse_symmetric(n, 4, rng);
  LanczosConfig cfg;
  cfg.nev = 3;
  const auto cold = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(cold.converged);
  // Warm start with the dominant converged eigenvector.  Convergence is
  // only tested at sweep boundaries, so the guarantee is "no worse", with
  // identical answers.
  cfg.initial_vector.assign(cold.eigenvectors.begin(),
                            cold.eigenvectors.begin() + n);
  const auto warm = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(warm.converged);
  EXPECT_LE(warm.stats.matvec_count, cold.stats.matvec_count);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(warm.eigenvalues[i], cold.eigenvalues[i], 1e-8);
  }
}

TEST(Lanczos, WarmStartWithExactEigenvectorConvergesInOneSweep) {
  // nev=1 seeded with its own eigenvector: the Krylov space is (numerically)
  // invariant, so the first restart check must already satisfy the test.
  const index_t n = 100;
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 1;
  auto matvec = [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      y[i] = static_cast<real>(i % 13) * x[i];
    }
  };
  const auto cold = solve_symmetric(cfg, matvec);
  ASSERT_TRUE(cold.converged);
  cfg.initial_vector.assign(cold.eigenvectors.begin(),
                            cold.eigenvectors.begin() + n);
  const auto warm = solve_symmetric(cfg, matvec);
  ASSERT_TRUE(warm.converged);
  EXPECT_EQ(warm.stats.restart_count, 0);
}

TEST(Lanczos, WarmStartValidatesLength) {
  LanczosConfig cfg;
  cfg.n = 10;
  cfg.nev = 1;
  cfg.initial_vector.assign(5, 1.0);
  SymLanczos solver(cfg);
  EXPECT_THROW((void)solver.step(), std::invalid_argument);
}

TEST(Lanczos, ZeroWarmStartFallsBackToRandom) {
  const index_t n = 30;
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  cfg.initial_vector.assign(static_cast<usize>(n), 0.0);
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i) * x[i];
  });
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 29, 1e-8);
}

TEST(Lanczos, BlockedCgs2MatchesMgsEigenpairs) {
  // The default blocked CGS2 ortho kernel and the legacy MGS loop must land
  // on the same eigenpairs to solver tolerance, in both reorth modes.
  const index_t n = 300;
  Rng rng(67);
  const auto a = random_sparse_symmetric(n, 3, rng);
  for (const ReorthMode reorth : {ReorthMode::kFull, ReorthMode::kLocal}) {
    LanczosConfig cfg;
    cfg.nev = 4;
    cfg.ncv = 30;
    cfg.reorth = reorth;
    cfg.ortho_kernel = OrthoKernel::kBlockedCgs2;
    const auto cgs2 = solve_dense_matrix(a, n, cfg);
    cfg.ortho_kernel = OrthoKernel::kMgs;
    const auto mgs = solve_dense_matrix(a, n, cfg);
    ASSERT_TRUE(cgs2.converged);
    ASSERT_TRUE(mgs.converged);
    for (usize i = 0; i < 4; ++i) {
      EXPECT_NEAR(cgs2.eigenvalues[i], mgs.eigenvalues[i], 1e-8)
          << "reorth mode " << static_cast<int>(reorth) << " pair " << i;
      EXPECT_LT(cgs2.residuals[i], 1e-6);
    }
  }
}

TEST(Lanczos, BlockedCgs2KeepsBasisOrthonormal) {
  // Drive the solver through restarts (small ncv) and check the returned
  // eigenvectors are orthonormal — the property the reorthogonalization
  // pass exists to protect.
  const index_t n = 200;
  Rng rng(71);
  const auto a = random_sparse_symmetric(n, 4, rng);
  LanczosConfig cfg;
  cfg.nev = 5;
  cfg.ncv = 12;  // tight subspace: many restarts, heavy reorth traffic
  const auto result = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(result.converged);
  for (usize i = 0; i < 5; ++i) {
    for (usize j = 0; j <= i; ++j) {
      real d = 0;
      for (index_t l = 0; l < n; ++l) {
        d += result.eigenvectors[i * static_cast<usize>(n) +
                                 static_cast<usize>(l)] *
             result.eigenvectors[j * static_cast<usize>(n) +
                                 static_cast<usize>(l)];
      }
      EXPECT_NEAR(d, i == j ? 1.0 : 0.0, 1e-9) << "(" << i << "," << j << ")";
    }
  }
}

TEST(Lanczos, NaiveDenseTierGivesSameAnswers) {
  const index_t n = 80;
  Rng rng(51);
  const auto a = random_sparse_symmetric(n, 3, rng);
  LanczosConfig cfg;
  cfg.nev = 4;
  const auto blocked = solve_dense_matrix(a, n, cfg);
  cfg.dense_tier = DenseTier::kNaive;
  const auto naive = solve_dense_matrix(a, n, cfg);
  ASSERT_TRUE(blocked.converged && naive.converged);
  for (usize i = 0; i < 4; ++i) {
    EXPECT_NEAR(blocked.eigenvalues[i], naive.eigenvalues[i], 1e-9);
  }
}

}  // namespace
}  // namespace fastsc::lanczos
