#include "graph/laplacian.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sparse/convert.h"
#include "sparse/ops.h"

namespace fastsc::graph {
namespace {

sparse::Coo triangle_graph() {
  // Weighted triangle: w(0,1)=1, w(0,2)=2, w(1,2)=3.
  sparse::Coo w(3, 3);
  w.push(0, 1, 1);
  w.push(1, 0, 1);
  w.push(0, 2, 2);
  w.push(2, 0, 2);
  w.push(1, 2, 3);
  w.push(2, 1, 3);
  return w;
}

sparse::Coo random_graph(index_t n, index_t edges, std::uint64_t seed) {
  Rng rng(seed);
  sparse::Coo w(n, n);
  for (index_t e = 0; e < edges; ++e) {
    const auto i = static_cast<index_t>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    auto j = static_cast<index_t>(rng.uniform_index(
        static_cast<std::uint64_t>(n)));
    if (i == j) j = (j + 1) % n;
    const real v = rng.uniform(0.1, 1.0);
    w.push(i, j, v);
    w.push(j, i, v);
  }
  // Ensure no isolated nodes: chain everything.
  for (index_t i = 0; i + 1 < n; ++i) {
    w.push(i, i + 1, 0.5);
    w.push(i + 1, i, 0.5);
  }
  sparse::sort_and_merge(w);
  return w;
}

TEST(Degrees, MatchHandComputation) {
  const auto d = degrees(triangle_graph());
  EXPECT_EQ(d, (std::vector<real>{3, 4, 5}));
}

TEST(NormalizedRwHost, RowsSumToOne) {
  const sparse::Csr p = normalized_rw_host(triangle_graph());
  const auto sums = sparse::row_sums(p);
  for (real s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(NormalizedRwHost, ThrowsOnIsolatedNode) {
  sparse::Coo w(3, 3);
  w.push(0, 1, 1);
  w.push(1, 0, 1);  // node 2 isolated
  EXPECT_THROW((void)normalized_rw_host(w), std::invalid_argument);
}

TEST(NormalizedRwHost, ThrowsOnNonSquare) {
  sparse::Coo w(2, 3);
  EXPECT_THROW((void)normalized_rw_host(w), std::invalid_argument);
}

TEST(UnnormalizedLaplacian, RowsSumToZeroAndDiagIsDegree) {
  const sparse::Csr l = unnormalized_laplacian(triangle_graph());
  const auto sums = sparse::row_sums(l);
  for (real s : sums) EXPECT_NEAR(s, 0.0, 1e-12);
  const auto diag = sparse::diagonal(l);
  EXPECT_NEAR(diag[0], 3, 1e-12);
  EXPECT_NEAR(diag[1], 4, 1e-12);
  EXPECT_NEAR(diag[2], 5, 1e-12);
}

TEST(UnnormalizedLaplacian, IsSymmetricPSDLike) {
  const sparse::Csr l = unnormalized_laplacian(random_graph(20, 40, 3));
  EXPECT_TRUE(sparse::is_symmetric(l, 1e-12));
  // x^T L x >= 0 for random x (PSD spot check).
  Rng rng(5);
  std::vector<real> x(20), y(20);
  for (int rep = 0; rep < 10; ++rep) {
    for (real& v : x) v = rng.uniform(-1, 1);
    sparse::csr_mv(l, x.data(), y.data());
    real quad = 0;
    for (usize i = 0; i < 20; ++i) quad += x[i] * y[i];
    EXPECT_GE(quad, -1e-10);
  }
}

TEST(SymNormalizedLaplacian, DiagonalIsOne) {
  const sparse::Csr l = sym_normalized_laplacian(triangle_graph());
  const auto diag = sparse::diagonal(l);
  for (real v : diag) EXPECT_NEAR(v, 1.0, 1e-12);
  EXPECT_TRUE(sparse::is_symmetric(l, 1e-12));
}

class DeviceLaplacian : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(DeviceLaplacian, MatchesHostNormalization) {
  const sparse::Coo w = random_graph(50, 150, 7);
  const sparse::Csr host = normalized_rw_host(w);

  sparse::DeviceCoo dev_w(ctx_, w);
  sparse::DeviceCsr dev_p = normalized_rw_device(ctx_, dev_w);
  const sparse::Csr got = dev_p.to_host();

  ASSERT_EQ(got.rows, host.rows);
  ASSERT_EQ(got.nnz(), host.nnz());
  // Host conversion from sorted COO gives the same ordering.
  EXPECT_EQ(got.row_ptr, host.row_ptr);
  EXPECT_EQ(got.col_idx, host.col_idx);
  for (usize i = 0; i < got.values.size(); ++i) {
    EXPECT_NEAR(got.values[i], host.values[i], 1e-12);
  }
}

TEST_P(DeviceLaplacian, RowStochasticOnDevice) {
  const sparse::Coo w = random_graph(30, 80, 11);
  sparse::DeviceCoo dev_w(ctx_, w);
  sparse::DeviceCsr dev_p = normalized_rw_device(ctx_, dev_w);
  const auto sums = sparse::row_sums(dev_p.to_host());
  for (real s : sums) EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST_P(DeviceLaplacian, ThrowsOnIsolatedNode) {
  sparse::Coo w(3, 3);
  w.push(0, 1, 1);
  w.push(1, 0, 1);
  sparse::DeviceCoo dev_w(ctx_, w);
  EXPECT_THROW((void)normalized_rw_device(ctx_, dev_w),
               std::invalid_argument);
}

TEST_P(DeviceLaplacian, UnsortedCooIsHandled) {
  // Shuffled entry order must not change the result (device path sorts).
  sparse::Coo w(4, 4);
  w.push(3, 0, 1.0);
  w.push(0, 3, 1.0);
  w.push(1, 2, 2.0);
  w.push(2, 1, 2.0);
  w.push(0, 1, 1.0);
  w.push(1, 0, 1.0);
  sparse::Coo sorted = w;
  sparse::sort_and_merge(sorted);
  const sparse::Csr host = normalized_rw_host(sorted);

  sparse::DeviceCoo dev_w(ctx_, w);
  sparse::DeviceCsr dev_p = normalized_rw_device(ctx_, dev_w);
  const sparse::Csr got = dev_p.to_host();
  EXPECT_EQ(got.row_ptr, host.row_ptr);
  EXPECT_EQ(got.col_idx, host.col_idx);
  for (usize i = 0; i < got.values.size(); ++i) {
    EXPECT_NEAR(got.values[i], host.values[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeviceLaplacian,
                         ::testing::Values(1, 4));

TEST(SymNormalizedHost, MatchesDirectFormula) {
  const sparse::Coo w = triangle_graph();
  std::vector<real> isd;
  const sparse::Csr s = sym_normalized_host(w, isd);
  const auto d = degrees(w);
  ASSERT_EQ(isd.size(), 3u);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(isd[i], 1.0 / std::sqrt(d[i]), 1e-14);
  }
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      const real w_ij = (i == j) ? 0
                        : (i + j == 1) ? 1.0
                        : (i + j == 2) ? 2.0
                                       : 3.0;
      EXPECT_NEAR(s.at(i, j),
                  w_ij / std::sqrt(d[static_cast<usize>(i)] *
                                   d[static_cast<usize>(j)]),
                  1e-12);
    }
  }
}

TEST(SymNormalizedHost, OutputIsSymmetric) {
  const sparse::Coo w = random_graph(40, 120, 21);
  std::vector<real> isd;
  const sparse::Csr s = sym_normalized_host(w, isd);
  EXPECT_TRUE(sparse::is_symmetric(s, 1e-12));
}

TEST(SymNormalizedHost, SimilarToRandomWalkOperator) {
  // S = D^1/2 (D^-1 W) D^-1/2 entrywise.
  const sparse::Coo w = random_graph(25, 60, 23);
  std::vector<real> isd;
  const sparse::Csr s = sym_normalized_host(w, isd);
  const sparse::Csr rw = normalized_rw_host(w);
  for (index_t i = 0; i < 25; ++i) {
    for (index_t j = 0; j < 25; ++j) {
      const real expected = rw.at(i, j) * isd[static_cast<usize>(j)] /
                            isd[static_cast<usize>(i)];
      EXPECT_NEAR(s.at(i, j), expected, 1e-12);
    }
  }
}

TEST(SymNormalizedHost, ThrowsOnIsolatedNode) {
  sparse::Coo w(3, 3);
  w.push(0, 1, 1);
  w.push(1, 0, 1);
  std::vector<real> isd;
  EXPECT_THROW((void)sym_normalized_host(w, isd), std::invalid_argument);
}

class DeviceSymNormalized : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(DeviceSymNormalized, MatchesHost) {
  const sparse::Coo w = random_graph(50, 150, 29);
  std::vector<real> isd_host;
  const sparse::Csr host = sym_normalized_host(w, isd_host);

  sparse::DeviceCoo dev_w(ctx_, w);
  device::DeviceBuffer<real> dev_isd;
  sparse::DeviceCsr dev_s = sym_normalized_device(ctx_, dev_w, dev_isd);
  const sparse::Csr got = dev_s.to_host();
  const auto isd_got = dev_isd.to_host();

  ASSERT_EQ(got.nnz(), host.nnz());
  EXPECT_EQ(got.row_ptr, host.row_ptr);
  EXPECT_EQ(got.col_idx, host.col_idx);
  for (usize i = 0; i < got.values.size(); ++i) {
    EXPECT_NEAR(got.values[i], host.values[i], 1e-12);
  }
  for (usize i = 0; i < isd_got.size(); ++i) {
    EXPECT_NEAR(isd_got[i], isd_host[i], 1e-14);
  }
}

TEST_P(DeviceSymNormalized, UnsortedInputIsHandled) {
  sparse::Coo w(3, 3);
  w.push(2, 0, 2.0);
  w.push(0, 2, 2.0);
  w.push(0, 1, 1.0);
  w.push(1, 0, 1.0);
  w.push(1, 2, 3.0);
  w.push(2, 1, 3.0);
  std::vector<real> isd_host;
  sparse::Coo sorted = w;
  sparse::sort_and_merge(sorted);
  const sparse::Csr host = sym_normalized_host(sorted, isd_host);

  sparse::DeviceCoo dev_w(ctx_, w);
  device::DeviceBuffer<real> dev_isd;
  sparse::DeviceCsr dev_s = sym_normalized_device(ctx_, dev_w, dev_isd);
  const sparse::Csr got = dev_s.to_host();
  EXPECT_EQ(got.col_idx, host.col_idx);
  for (usize i = 0; i < got.values.size(); ++i) {
    EXPECT_NEAR(got.values[i], host.values[i], 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeviceSymNormalized,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace fastsc::graph
