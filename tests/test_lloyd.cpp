#include "kmeans/lloyd.h"

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "common/rng.h"

namespace fastsc::kmeans {
namespace {

std::vector<real> blob_data(index_t per, index_t k, index_t d,
                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> x(static_cast<usize>(per * k) * static_cast<usize>(d));
  for (index_t i = 0; i < per * k; ++i) {
    const real base = static_cast<real>((i / per) * 20);
    for (index_t l = 0; l < d; ++l) {
      x[static_cast<usize>(i * d + l)] = base + 0.3 * rng.normal();
    }
  }
  return x;
}

TEST(Lloyd, ConvergesOnSeparatedBlobs) {
  const auto x = blob_data(30, 3, 2, 1);
  KmeansConfig cfg;
  cfg.k = 3;
  const auto r = kmeans_lloyd_host(x.data(), 90, 2, cfg);
  EXPECT_TRUE(r.converged);
  // Each blob of 30 shares one label.
  for (index_t c = 0; c < 3; ++c) {
    const index_t first = r.labels[static_cast<usize>(c * 30)];
    for (index_t i = 0; i < 30; ++i) {
      EXPECT_EQ(r.labels[static_cast<usize>(c * 30 + i)], first);
    }
  }
}

TEST(Lloyd, ObjectiveMonotoneAcrossIterationCaps) {
  // Running longer can never produce a worse objective from the same seed.
  const auto x = blob_data(40, 4, 3, 2);
  KmeansConfig cfg;
  cfg.k = 4;
  cfg.seed = 5;
  real prev = std::numeric_limits<real>::max();
  for (index_t iters : {1, 2, 4, 8, 32}) {
    cfg.max_iters = iters;
    const auto r = kmeans_lloyd_host(x.data(), 160, 3, cfg);
    EXPECT_LE(r.objective, prev + 1e-9) << "iters=" << iters;
    prev = r.objective;
  }
}

TEST(Lloyd, KmeansppNeedsNoMoreIterationsThanRandom) {
  // Aggregate over seeds: ++ seeding should not be slower on blob data.
  const auto x = blob_data(25, 6, 2, 3);
  index_t pp_total = 0, rand_total = 0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    KmeansConfig cfg;
    cfg.k = 6;
    cfg.seed = s;
    cfg.seeding = Seeding::kKmeansPlusPlus;
    pp_total += kmeans_lloyd_host(x.data(), 150, 2, cfg).iterations;
    cfg.seeding = Seeding::kRandom;
    rand_total += kmeans_lloyd_host(x.data(), 150, 2, cfg).iterations;
  }
  EXPECT_LE(pp_total, rand_total + 5);
}

TEST(Lloyd, ObjectiveMatchesHelper) {
  const auto x = blob_data(10, 2, 2, 7);
  KmeansConfig cfg;
  cfg.k = 2;
  const auto r = kmeans_lloyd_host(x.data(), 20, 2, cfg);
  EXPECT_NEAR(r.objective,
              kmeans_objective(x.data(), 20, 2, r.labels, r.centroids, 2),
              1e-9);
}

TEST(Lloyd, RestartsNeverWorsenObjective) {
  const auto x = blob_data(20, 5, 3, 11);
  KmeansConfig cfg;
  cfg.k = 5;
  cfg.seed = 1;
  cfg.seeding = Seeding::kRandom;  // random init benefits most from restarts
  const auto one = kmeans_lloyd_host(x.data(), 100, 3, cfg);
  cfg.restarts = 8;
  const auto eight = kmeans_lloyd_host(x.data(), 100, 3, cfg);
  EXPECT_LE(eight.objective, one.objective + 1e-9);
}

TEST(Lloyd, RejectsZeroRestarts) {
  const auto x = blob_data(10, 2, 2, 13);
  KmeansConfig cfg;
  cfg.k = 2;
  cfg.restarts = 0;
  EXPECT_THROW((void)kmeans_lloyd_host(x.data(), 20, 2, cfg),
               std::invalid_argument);
}

TEST(KmeansObjective, ValidatesInput) {
  std::vector<real> x{0, 1};
  std::vector<index_t> labels{0, 5};
  std::vector<real> centroids{0, 1};
  EXPECT_THROW((void)kmeans_objective(x.data(), 2, 1, labels, centroids, 2),
               std::invalid_argument);
}

TEST(Lloyd, SinglePointSingleCluster) {
  std::vector<real> x{1.5, -2.5};
  KmeansConfig cfg;
  cfg.k = 1;
  const auto r = kmeans_lloyd_host(x.data(), 1, 2, cfg);
  EXPECT_EQ(r.labels, (std::vector<index_t>{0}));
  EXPECT_DOUBLE_EQ(r.centroids[0], 1.5);
  EXPECT_DOUBLE_EQ(r.objective, 0.0);
}

TEST(Lloyd, EmptyClusterRepairKeepsKClusters) {
  // k=3 but only 2 distinct locations: a cluster will empty out, repair
  // must still leave valid centroids and labels.
  std::vector<real> x;
  for (int i = 0; i < 10; ++i) x.push_back(0.0);
  for (int i = 0; i < 10; ++i) x.push_back(50.0);
  KmeansConfig cfg;
  cfg.k = 3;
  cfg.seed = 2;
  const auto r = kmeans_lloyd_host(x.data(), 20, 1, cfg);
  ASSERT_EQ(r.centroids.size(), 3u);
  for (index_t l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 3);
  }
}

}  // namespace
}  // namespace fastsc::kmeans
