#include "metrics/cut.h"

#include <gtest/gtest.h>

#include "sparse/convert.h"

namespace fastsc::metrics {
namespace {

/// Two triangles joined by a single bridge edge of weight 1; all triangle
/// edges have weight 2.
sparse::Csr barbell() {
  sparse::Coo w(6, 6);
  auto add = [&](index_t a, index_t b, real v) {
    w.push(a, b, v);
    w.push(b, a, v);
  };
  add(0, 1, 2);
  add(0, 2, 2);
  add(1, 2, 2);
  add(3, 4, 2);
  add(3, 5, 2);
  add(4, 5, 2);
  add(2, 3, 1);  // bridge
  return sparse::coo_to_csr(w);
}

const std::vector<index_t> kPerfect{0, 0, 0, 1, 1, 1};
const std::vector<index_t> kBad{0, 1, 0, 1, 0, 1};

TEST(CutValue, BridgeOnlyForPerfectSplit) {
  EXPECT_DOUBLE_EQ(cut_value(barbell(), kPerfect, 2), 1.0);
}

TEST(CutValue, WorseSplitCutsMore) {
  EXPECT_GT(cut_value(barbell(), kBad, 2), cut_value(barbell(), kPerfect, 2));
}

TEST(CutValue, SingleClusterHasZeroCut) {
  const std::vector<index_t> all_zero(6, 0);
  EXPECT_DOUBLE_EQ(cut_value(barbell(), all_zero, 1), 0.0);
}

TEST(RatioCut, HandComputedBarbell) {
  // Perfect split: each side boundary 1, |A| = 3 -> 0.5*(1/3 + 1/3) = 1/3.
  EXPECT_NEAR(ratio_cut(barbell(), kPerfect, 2), 1.0 / 3, 1e-12);
}

TEST(NormalizedCut, HandComputedBarbell) {
  // vol(A) = sum of degrees in A. Each triangle node has degree 4 except the
  // bridge endpoints (5). vol = 4+4+5 = 13 per side.
  // Ncut = 0.5 * (1/13 + 1/13) = 1/13.
  EXPECT_NEAR(normalized_cut(barbell(), kPerfect, 2), 1.0 / 13, 1e-12);
}

TEST(NormalizedCut, PerfectBeatsBad) {
  EXPECT_LT(normalized_cut(barbell(), kPerfect, 2),
            normalized_cut(barbell(), kBad, 2));
}

TEST(NormalizedCut, EmptyClustersContributeNothing) {
  // k=3 but only 2 used labels.
  EXPECT_NEAR(normalized_cut(barbell(), kPerfect, 3), 1.0 / 13, 1e-12);
}

TEST(CutMetrics, ValidateInputs) {
  const auto w = barbell();
  std::vector<index_t> short_labels{0, 1};
  EXPECT_THROW((void)cut_value(w, short_labels, 2), std::invalid_argument);
  std::vector<index_t> bad_range{0, 0, 0, 1, 1, 7};
  EXPECT_THROW((void)normalized_cut(w, bad_range, 2), std::invalid_argument);
}

TEST(CutMetrics, DisconnectedGraphZeroCut) {
  sparse::Coo w(4, 4);
  w.push(0, 1, 1);
  w.push(1, 0, 1);
  w.push(2, 3, 1);
  w.push(3, 2, 1);
  const auto csr = sparse::coo_to_csr(w);
  const std::vector<index_t> labels{0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(cut_value(csr, labels, 2), 0.0);
  EXPECT_DOUBLE_EQ(normalized_cut(csr, labels, 2), 0.0);
  EXPECT_DOUBLE_EQ(ratio_cut(csr, labels, 2), 0.0);
}

}  // namespace
}  // namespace fastsc::metrics
