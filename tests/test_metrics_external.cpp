#include "metrics/external.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace fastsc::metrics {
namespace {

TEST(Ari, IdenticalPartitionsScoreOne) {
  const std::vector<index_t> a{0, 0, 1, 1, 2, 2};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, RelabelingStillScoresOne) {
  const std::vector<index_t> a{0, 0, 1, 1, 2, 2};
  const std::vector<index_t> b{2, 2, 0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, b), 1.0);
}

TEST(Ari, IndependentRandomPartitionsNearZero) {
  Rng rng(3);
  const usize n = 5000;
  std::vector<index_t> a(n), b(n);
  for (usize i = 0; i < n; ++i) {
    a[i] = static_cast<index_t>(rng.uniform_index(5));
    b[i] = static_cast<index_t>(rng.uniform_index(5));
  }
  EXPECT_NEAR(adjusted_rand_index(a, b), 0.0, 0.02);
}

TEST(Ari, KnownSmallExample) {
  // Classic example: ARI is symmetric and < 1 for a partial match.
  const std::vector<index_t> a{0, 0, 0, 1, 1, 1};
  const std::vector<index_t> b{0, 0, 1, 1, 1, 1};
  const real ab = adjusted_rand_index(a, b);
  EXPECT_GT(ab, 0.0);
  EXPECT_LT(ab, 1.0);
  EXPECT_DOUBLE_EQ(ab, adjusted_rand_index(b, a));
}

TEST(Ari, TrivialPartitionsScoreOne) {
  const std::vector<index_t> a{0, 0, 0};
  EXPECT_DOUBLE_EQ(adjusted_rand_index(a, a), 1.0);
}

TEST(Ari, LengthMismatchThrows) {
  const std::vector<index_t> a{0, 1};
  const std::vector<index_t> b{0};
  EXPECT_THROW((void)adjusted_rand_index(a, b), std::invalid_argument);
}

TEST(Nmi, IdenticalPartitionsScoreOne) {
  const std::vector<index_t> a{0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(normalized_mutual_information(a, a), 1.0, 1e-12);
}

TEST(Nmi, IndependentPartitionsNearZero) {
  Rng rng(11);
  const usize n = 20000;
  std::vector<index_t> a(n), b(n);
  for (usize i = 0; i < n; ++i) {
    a[i] = static_cast<index_t>(rng.uniform_index(4));
    b[i] = static_cast<index_t>(rng.uniform_index(4));
  }
  EXPECT_NEAR(normalized_mutual_information(a, b), 0.0, 0.01);
}

TEST(Nmi, BoundedInUnitInterval) {
  Rng rng(13);
  std::vector<index_t> a(100), b(100);
  for (usize i = 0; i < 100; ++i) {
    a[i] = static_cast<index_t>(rng.uniform_index(7));
    b[i] = static_cast<index_t>(rng.uniform_index(3));
  }
  const real v = normalized_mutual_information(a, b);
  EXPECT_GE(v, 0.0);
  EXPECT_LE(v, 1.0);
}

TEST(Nmi, RefinementScoresBelowOne) {
  const std::vector<index_t> coarse{0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<index_t> fine{0, 0, 1, 1, 2, 2, 3, 3};
  const real v = normalized_mutual_information(coarse, fine);
  EXPECT_GT(v, 0.5);
  EXPECT_LT(v, 1.0);
}

TEST(Purity, PerfectClusteringIsOne) {
  const std::vector<index_t> pred{0, 0, 1, 1};
  const std::vector<index_t> truth{1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 1.0);
}

TEST(Purity, MajorityRule) {
  const std::vector<index_t> pred{0, 0, 0, 1, 1, 1};
  const std::vector<index_t> truth{0, 0, 1, 1, 1, 0};
  // Cluster 0: majority truth 0 (2 of 3). Cluster 1: majority 1 (2 of 3).
  EXPECT_NEAR(purity(pred, truth), 4.0 / 6, 1e-12);
}

TEST(Purity, SingleClusterEqualsLargestClassShare) {
  const std::vector<index_t> pred{0, 0, 0, 0};
  const std::vector<index_t> truth{0, 1, 1, 1};
  EXPECT_DOUBLE_EQ(purity(pred, truth), 0.75);
}

TEST(ContingencyTable, CountsCells) {
  const std::vector<index_t> a{0, 0, 1, 1};
  const std::vector<index_t> b{0, 1, 1, 1};
  index_t ka, kb;
  const auto table = contingency_table(a, b, ka, kb);
  EXPECT_EQ(ka, 2);
  EXPECT_EQ(kb, 2);
  EXPECT_EQ(table[0], 1);  // (0,0)
  EXPECT_EQ(table[1], 1);  // (0,1)
  EXPECT_EQ(table[2], 0);  // (1,0)
  EXPECT_EQ(table[3], 2);  // (1,1)
}

TEST(ContingencyTable, NegativeLabelThrows) {
  const std::vector<index_t> a{0, -1};
  const std::vector<index_t> b{0, 0};
  index_t ka, kb;
  EXPECT_THROW((void)contingency_table(a, b, ka, kb), std::invalid_argument);
}

}  // namespace
}  // namespace fastsc::metrics
