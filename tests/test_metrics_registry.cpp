// Tests for the metrics registry: instrument identity, concurrent updates,
// the histogram bucket-edge semantics pinned in the header, the JSON
// snapshot shape, and the runtime publication glue.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/runtime_metrics.h"

namespace fastsc::obs {
namespace {

TEST(MetricsRegistry, InstrumentsAreCreatedOnceAndStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  EXPECT_EQ(reg.instrument_count(), 1u);
  (void)reg.gauge("x");  // same name, different kind: separate instrument
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(MetricsRegistry, ConcurrentCounterIncrementsAllLand) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kAddsEach = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      Counter& c = reg.counter("hits");  // lookup from many threads
      for (int i = 0; i < kAddsEach; ++i) c.add();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(reg.counter("hits").value(),
            static_cast<std::int64_t>(kThreads) * kAddsEach);
}

TEST(MetricsRegistry, HistogramBucketEdgeSemantics) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat", {0.0, 1.0, 2.0});
  // edges {0,1,2} -> 4 buckets: (-inf,0) [0,1) [1,2) [2,+inf).
  h.observe(-0.5);  // bucket 0
  h.observe(0.0);   // bucket 1: a value on an edge lands where it is the
  h.observe(0.5);   // bucket 1      lower bound
  h.observe(1.0);   // bucket 2
  h.observe(2.0);   // bucket 3
  h.observe(7.0);   // bucket 3
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 2);
  EXPECT_EQ(h.total_count(), 6);
  EXPECT_DOUBLE_EQ(h.sum(), -0.5 + 0.0 + 0.5 + 1.0 + 2.0 + 7.0);
}

TEST(MetricsRegistry, ConcurrentHistogramObservations) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("conc", {10.0});
  constexpr int kThreads = 8;
  constexpr int kObsEach = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kObsEach; ++i) h.observe(1.0);
    });
  }
  for (std::thread& w : workers) w.join();
  const auto total = static_cast<std::int64_t>(kThreads) * kObsEach;
  EXPECT_EQ(h.total_count(), total);
  EXPECT_EQ(h.bucket_count(0), total);  // all below the single edge
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(total));  // CAS-loop sum
}

TEST(MetricsRegistry, JsonSnapshotShape) {
  MetricsRegistry reg;
  reg.counter("c.events").add(5);
  reg.set_gauge("g.ratio", 0.75);
  reg.histogram("h.lat", {1.0, 2.0}).observe(1.5);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\":{\"c.events\":5}"), std::string::npos);
  EXPECT_NE(json.find("\"g.ratio\":0.75"), std::string::npos);
  EXPECT_NE(json.find("\"h.lat\""), std::string::npos);
  EXPECT_NE(json.find("\"edges\":[1,2]"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[0,1,0]"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":1.5"), std::string::npos);
}

TEST(MetricsRegistry, ClearEmptiesTheRegistry) {
  MetricsRegistry reg;
  reg.counter("a").add();
  reg.set_gauge("b", 1.0);
  EXPECT_EQ(reg.instrument_count(), 2u);
  reg.clear();
  EXPECT_EQ(reg.instrument_count(), 0u);
  EXPECT_EQ(reg.counter("a").value(), 0);  // fresh instrument after clear
}

TEST(RuntimeMetrics, PublishDeviceCountersExposesOverlapGauges) {
  device::DeviceCounters c;
  c.bytes_h2d = 1000;
  c.kernel_seconds = 2.5;
  c.overlapped_seconds = 0.25;
  c.overlapped_h2d_seconds = 0.25;
  MetricsRegistry reg;
  publish_device_counters(c, reg);
  EXPECT_DOUBLE_EQ(reg.gauge("device.bytes_h2d").value(), 1000.0);
  EXPECT_DOUBLE_EQ(reg.gauge("device.kernel_seconds").value(), 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("device.overlapped_seconds").value(), 0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("device.overlapped_h2d_seconds").value(), 0.25);
  EXPECT_DOUBLE_EQ(reg.gauge("device.overlapped_d2h_seconds").value(), 0.0);
}

TEST(RuntimeMetrics, PublishDeviceContextCoversAllThreeSources) {
  device::DeviceContext ctx(1);
  device::DeviceBuffer<double> buf(ctx, 64);
  std::vector<double> host(64, 1.0);
  buf.copy_from_host(host);
  device::launch(ctx, 64, [p = buf.data()](index_t i) { p[i] += 1; });
  MetricsRegistry reg;
  publish_device_context(ctx, reg);
  EXPECT_DOUBLE_EQ(reg.gauge("device.bytes_h2d").value(),
                   64.0 * sizeof(double));
  EXPECT_GE(reg.gauge("device.kernel_launches").value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.gauge("thread_pool.workers").value(), 1.0);
  // Pinned-pool gauges exist even when the synchronous path never staged.
  EXPECT_GE(reg.gauge("pinned_pool.acquires").value(), 0.0);
}

}  // namespace
}  // namespace fastsc::obs
