#include "data/powerlaw.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sparse/convert.h"

namespace fastsc::data {
namespace {

TEST(Powerlaw, ProducesValidSymmetricGraph) {
  const PowerlawGraph graph =
      make_powerlaw({.n = 200, .avg_degree = 8.0, .seed = 3});
  graph.w.validate();
  EXPECT_TRUE(graph.w.is_sorted_unique());
  EXPECT_EQ(graph.w.rows, 200);
  // Symmetric, no self loops.
  sparse::Coo t(graph.w.rows, graph.w.cols);
  for (usize e = 0; e < graph.w.values.size(); ++e) {
    EXPECT_NE(graph.w.row_idx[e], graph.w.col_idx[e]);
    t.push(graph.w.col_idx[e], graph.w.row_idx[e], graph.w.values[e]);
  }
  sparse::sort_and_merge(t);
  EXPECT_EQ(t.row_idx, graph.w.row_idx);
  EXPECT_EQ(t.col_idx, graph.w.col_idx);
  EXPECT_EQ(t.values, graph.w.values);
}

TEST(Powerlaw, DeterministicForFixedSeed) {
  const PowerlawParams params{.n = 100, .avg_degree = 6.0, .seed = 42};
  const PowerlawGraph a = make_powerlaw(params);
  const PowerlawGraph b = make_powerlaw(params);
  EXPECT_EQ(a.w.row_idx, b.w.row_idx);
  EXPECT_EQ(a.w.col_idx, b.w.col_idx);
  const PowerlawGraph c =
      make_powerlaw({.n = 100, .avg_degree = 6.0, .seed = 43});
  EXPECT_NE(a.w.row_idx, c.w.row_idx);
}

TEST(Powerlaw, DegreeDistributionIsSkewed) {
  const PowerlawGraph graph =
      make_powerlaw({.n = 500, .avg_degree = 10.0, .exponent = 2.1, .seed = 7});
  const sparse::Csr csr = sparse::coo_to_csr(graph.w);
  std::vector<index_t> degree(static_cast<usize>(csr.rows));
  for (index_t r = 0; r < csr.rows; ++r) {
    degree[static_cast<usize>(r)] =
        csr.row_ptr[static_cast<usize>(r) + 1] -
        csr.row_ptr[static_cast<usize>(r)];
  }
  const index_t max_deg = *std::max_element(degree.begin(), degree.end());
  real mean = 0;
  for (index_t d : degree) mean += static_cast<real>(d);
  mean /= static_cast<real>(csr.rows);
  // Zipf weights put a constant fraction of all endpoint mass on node 0, so
  // the hub degree dwarfs the mean — the imbalance the balanced SpMV needs.
  EXPECT_GT(static_cast<real>(max_deg), 8.0 * mean);
  // Expected degrees mirror the planted weights: monotone non-increasing.
  for (usize i = 1; i < graph.expected_degree.size(); ++i) {
    EXPECT_LE(graph.expected_degree[i], graph.expected_degree[i - 1] + 1e-12);
  }
}

TEST(Powerlaw, RejectsBadParams) {
  EXPECT_THROW(make_powerlaw({.n = 1}), std::exception);
  EXPECT_THROW(make_powerlaw({.n = 10, .avg_degree = 0}), std::exception);
}

}  // namespace
}  // namespace fastsc::data
