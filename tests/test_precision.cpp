// Mixed-precision ladder tests (DESIGN.md §13).
//
// Three layers, mirroring the contract the ladder makes:
//   1. Conversion properties — the narrowing helpers are exactly rounded
//      (RNE), monotone on non-NaN inputs, preserve NaN/Inf, and round-trip
//      representable values bit-for-bit through pack/unpack.
//   2. Fusion — the fused D^{-1/2}-epilogue SpMV is *bitwise* equal to the
//      scale / spmv / scale 3-launch sequence in fp64 (plain and
//      nnz-balanced kernels), so turning fusion on at fp64 changes nothing.
//   3. Differential — on the four paper-shaped datasets the fp32 rung
//      produces ARI-identical labels and eigenvalues within 1e-6 of fp64
//      (bf16 within 1e-3), every rung is byte-identical across device
//      counts {1,2,4}, and the auto ladder falls back to fp64 through the
//      degradation machinery when the refinement residual is made
//      unsatisfiable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/precision.h"
#include "common/rng.h"
#include "core/spectral.h"
#include "data/powerlaw.h"
#include "data/sbm.h"
#include "data/social.h"
#include "device/device.h"
#include "graph/components.h"
#include "metrics/external.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc {
namespace {

using core::Backend;
using core::SpectralConfig;
using core::SpectralResult;
using sparse::Csr;

// ---------------------------------------------------------------------------
// 1. Conversion properties.

std::vector<real> random_reals(usize n, std::uint64_t seed, real scale) {
  Rng rng(seed);
  std::vector<real> v(n);
  for (real& x : v) x = (rng.uniform() * 2.0 - 1.0) * scale;
  return v;
}

TEST(PrecisionConvert, Fp64QuantizeIsBitwiseIdentity) {
  for (real v : random_reals(1000, 1, 1e12)) {
    const real q = quantize(v, Precision::kFp64);
    EXPECT_EQ(std::memcmp(&q, &v, sizeof(real)), 0);
  }
  // Denormals and signed zero survive the identity too.
  for (real v : {std::numeric_limits<real>::denorm_min(), -0.0, 0.0,
                 std::numeric_limits<real>::max()}) {
    const real q = quantize(v, Precision::kFp64);
    EXPECT_EQ(std::memcmp(&q, &v, sizeof(real)), 0);
  }
}

TEST(PrecisionConvert, RepresentableValuesRoundTripExactly) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    // A value that is already fp32-representable must be a fixed point of
    // fp32 quantization…
    const float f = static_cast<float>((rng.uniform() * 2.0 - 1.0) * 1e6);
    EXPECT_EQ(quantize(static_cast<real>(f), Precision::kFp32),
              static_cast<real>(f));
    // …and one already bf16-representable a fixed point of bf16.
    const float b = float_from_bf16(bf16_from_float(f));
    EXPECT_EQ(quantize(static_cast<real>(b), Precision::kBf16),
              static_cast<real>(b));
    EXPECT_EQ(float_from_bf16(bf16_from_float(b)), b);
  }
}

class PrecisionRung : public ::testing::TestWithParam<Precision> {};

TEST_P(PrecisionRung, NarrowingIsMonotone) {
  const Precision p = GetParam();
  std::vector<real> v = random_reals(2000, 3, 1e8);
  std::sort(v.begin(), v.end());
  real prev = quantize(v.front(), p);
  for (usize i = 1; i < v.size(); ++i) {
    const real q = quantize(v[i], p);
    EXPECT_LE(prev, q) << "rounding must be monotone at "
                       << precision_name(p);
    prev = q;
  }
}

TEST_P(PrecisionRung, NanAndInfPreserved) {
  const Precision p = GetParam();
  EXPECT_TRUE(std::isnan(quantize(std::numeric_limits<real>::quiet_NaN(), p)));
  EXPECT_EQ(quantize(std::numeric_limits<real>::infinity(), p),
            std::numeric_limits<real>::infinity());
  EXPECT_EQ(quantize(-std::numeric_limits<real>::infinity(), p),
            -std::numeric_limits<real>::infinity());
  // Finite values beyond the rung's range overflow to Inf, keeping the sign.
  if (p != Precision::kFp64) {
    EXPECT_EQ(quantize(1e308, p), std::numeric_limits<real>::infinity());
    EXPECT_EQ(quantize(-1e308, p), -std::numeric_limits<real>::infinity());
  }
  // Signed zero survives every rung.
  const real nz = quantize(-0.0, p);
  EXPECT_EQ(nz, 0.0);
  EXPECT_TRUE(std::signbit(nz));
}

TEST_P(PrecisionRung, PackUnpackMatchesQuantize) {
  const Precision p = GetParam();
  const std::vector<real> v = random_reals(513, 4, 1e5);
  std::vector<unsigned char> bytes(v.size() * bytes_per_scalar(p));
  pack_scalars(v.data(), v.size(), p, bytes.data());
  std::vector<real> back(v.size());
  unpack_scalars(bytes.data(), v.size(), p, back.data());
  for (usize i = 0; i < v.size(); ++i) {
    const real want = quantize(v[i], p);
    EXPECT_EQ(std::memcmp(&back[i], &want, sizeof(real)), 0)
        << "entry " << i << " at " << precision_name(p);
  }
}

TEST_P(PrecisionRung, VecViewStoreLoadMatchesQuantize) {
  const Precision p = GetParam();
  const std::vector<real> v = random_reals(257, 5, 1e3);
  std::vector<unsigned char> bytes(v.size() * bytes_per_scalar(p));
  const VecView view(bytes.data(), p);
  for (usize i = 0; i < v.size(); ++i) view.store(i, v[i]);
  for (usize i = 0; i < v.size(); ++i) {
    EXPECT_EQ(view.load(i), quantize(v[i], p)) << "entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Rungs, PrecisionRung,
                         ::testing::Values(Precision::kFp64, Precision::kFp32,
                                           Precision::kBf16),
                         [](const auto& info) {
                           return std::string(precision_name(info.param));
                         });

TEST(PrecisionPolicyApi, ParseAndResolve) {
  PrecisionPolicy p;
  ASSERT_TRUE(parse_precision_policy("fp32,kmeans=fp64", p));
  EXPECT_EQ(p.base, Precision::kFp32);
  EXPECT_EQ(p.resolve(PrecisionStage::kSpmv), Precision::kFp32);
  EXPECT_EQ(p.resolve(PrecisionStage::kKmeans), Precision::kFp64);
  EXPECT_FALSE(p.all_fp64());
  EXPECT_TRUE(p.fused());  // kAuto fuses when spmv is narrow
  ASSERT_TRUE(parse_precision_policy("auto", p));
  EXPECT_TRUE(p.auto_ladder);
  EXPECT_EQ(p.base, Precision::kFp32);
  EXPECT_TRUE(p.fp64_fallback().all_fp64());
  ASSERT_TRUE(parse_precision_policy("fp64", p));
  EXPECT_TRUE(p.all_fp64());
  EXPECT_FALSE(p.fused());
  EXPECT_FALSE(parse_precision_policy("fp16", p));
  EXPECT_FALSE(parse_precision_policy("fp32,spmv=", p));
}

// ---------------------------------------------------------------------------
// 2. Fused D^{-1/2}-epilogue SpMV vs the 3-launch sequence, bitwise in fp64.

TEST(PrecisionFusion, FusedEpilogueBitwiseEqualsThreeLaunchFp64) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 900, .avg_degree = 9.0, .seed = 17});
  const Csr a = sparse::coo_to_csr(g.w);
  const usize n = static_cast<usize>(a.rows);
  const std::vector<real> x = random_reals(n, 11, 1.0);
  std::vector<real> s = random_reals(n, 12, 1.0);
  for (real& v : s) v = std::abs(v) + 0.5;  // a plausible D^{-1/2}

  // Reference: scale x, csrmv, scale y — the exact multiplies the fused
  // kernel performs, in the same order, so fp64 equality must be bitwise.
  std::vector<real> xs(n);
  for (usize i = 0; i < n; ++i) xs[i] = s[i] * x[i];

  device::DeviceContext ctx(1);
  sparse::DeviceCsr da(ctx, a);
  device::DeviceBuffer<real> dxs(ctx, std::span<const real>(xs));
  device::DeviceBuffer<real> dy(ctx, n);
  sparse::device_csrmv(ctx, da, dxs.data(), dy.data());
  std::vector<real> want = dy.to_host();
  for (usize i = 0; i < n; ++i) want[i] *= s[i];

  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> ds(ctx, std::span<const real>(s));
  device::DeviceBuffer<real> dyf(ctx, n);
  sparse::device_csrmv_mp(ctx, da, ConstVecView(dx.data()),
                          VecView(dyf.data()), 1.0, 0.0, ds.data());
  const std::vector<real> got = dyf.to_host();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(real)), 0)
      << "fused plain csrmv is not bitwise equal to scale/spmv/scale";

  // The nnz-balanced variant must agree with the balanced 3-launch run the
  // same way (boundary rows carry raw partials; epilogue applied once).
  sparse::device_csrmv_balanced(ctx, da, dxs.data(), dy.data());
  std::vector<real> want_b = dy.to_host();
  for (usize i = 0; i < n; ++i) want_b[i] *= s[i];
  sparse::device_csrmv_balanced_mp(ctx, da, ConstVecView(dx.data()),
                                   VecView(dyf.data()), 1.0, 0.0, ds.data());
  const std::vector<real> got_b = dyf.to_host();
  EXPECT_EQ(std::memcmp(got_b.data(), want_b.data(), n * sizeof(real)), 0)
      << "fused balanced csrmv is not bitwise equal to scale/spmv/scale";
}

TEST(PrecisionFusion, MpKernelAtFp64MatchesPlainKernelBitwise) {
  // With everything fp64 and no fused scale the _mp kernel must be the
  // pre-precision kernel, bit for bit.
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 500, .avg_degree = 7.0, .seed = 23});
  const Csr a = sparse::coo_to_csr(g.w);
  const usize n = static_cast<usize>(a.rows);
  const std::vector<real> x = random_reals(n, 31, 1.0);
  device::DeviceContext ctx(1);
  sparse::DeviceCsr da(ctx, a);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx, n), dy2(ctx, n);
  sparse::device_csrmv(ctx, da, dx.data(), dy.data());
  sparse::device_csrmv_mp(ctx, da, ConstVecView(dx.data()),
                          VecView(dy2.data()));
  const std::vector<real> want = dy.to_host(), got = dy2.to_host();
  EXPECT_EQ(std::memcmp(got.data(), want.data(), n * sizeof(real)), 0);
}

// ---------------------------------------------------------------------------
// 3. Differential: precision rungs vs the fp64 baseline, and device-count
//    invariance at every rung, on the four paper-shaped datasets.

struct Dataset {
  const char* name;
  sparse::Coo w;
  index_t k;
};

std::vector<Dataset> paper_datasets() {
  std::vector<Dataset> out;
  {
    const data::SbmGraph g =
        data::make_social_graph(data::fb_like_params(1200, 5, 42));
    out.push_back({"fb-like", g.w, 5});
  }
  {
    const data::SbmGraph g =
        data::make_social_graph(data::dblp_like_params(1500, 6, 42));
    out.push_back({"dblp-like", g.w, 6});
  }
  {
    data::SbmParams p;
    p.block_sizes = data::equal_blocks(1024, 4);
    p.p_in = 0.25;
    p.p_out = 0.01;
    p.seed = 11;
    out.push_back({"sbm", data::make_sbm(p).w, 4});
  }
  {
    const data::PowerlawGraph g =
        data::make_powerlaw({.n = 1100, .avg_degree = 8.0, .seed = 7});
    out.push_back({"powerlaw", g.w, 4});
  }
  // The generators leave a few isolated vertices; the normalized Laplacian
  // needs positive degrees, so cluster the giant component like the benches.
  for (Dataset& d : out) {
    std::vector<index_t> old_of_new;
    d.w = graph::largest_component(d.w, old_of_new);
  }
  return out;
}

SpectralConfig pipeline_config(index_t k, index_t num_devices) {
  SpectralConfig cfg;
  cfg.num_clusters = k;
  cfg.backend = Backend::kDevice;
  cfg.num_devices = num_devices;
  cfg.seed = 42;
  return cfg;
}

TEST(PrecisionDifferential, NarrowRungsMatchFp64OnPaperDatasets) {
  for (const Dataset& d : paper_datasets()) {
    SCOPED_TRACE(d.name);
    const SpectralResult base =
        core::spectral_cluster_graph(d.w, pipeline_config(d.k, 1));
    ASSERT_EQ(base.labels.size(), static_cast<usize>(d.w.rows));
    EXPECT_EQ(base.refine_residual, 0.0) << "fp64 baseline must not refine";

    struct Rung {
      const char* spec;
      real eig_tol;
      real ari_min;
    };
    // fp32 must reproduce the fp64 partition exactly (ARI floor 1.0 is an
    // equality: ARI <= 1).  bf16's 8-bit mantissa legitimately flips a
    // handful of points sitting on cluster boundaries, so it only has to
    // stay essentially identical.
    for (const Rung r : {Rung{"fp32", 1e-6, 1.0}, Rung{"bf16", 1e-3, 0.99}}) {
      SCOPED_TRACE(r.spec);
      SpectralConfig cfg = pipeline_config(d.k, 1);
      ASSERT_TRUE(parse_precision_policy(r.spec, cfg.precision));
      const SpectralResult narrow = core::spectral_cluster_graph(d.w, cfg);
      // Labels: ARI-identical partitions (up to the bf16 boundary caveat).
      ASSERT_EQ(narrow.labels.size(), base.labels.size());
      EXPECT_GE(metrics::adjusted_rand_index(narrow.labels, base.labels),
                r.ari_min)
          << "narrow-rung labels are not the same partition";
      // Eigenvalues agree to the rung tolerance after fp64 refinement.
      ASSERT_EQ(narrow.eigenvalues.size(), base.eigenvalues.size());
      for (usize i = 0; i < base.eigenvalues.size(); ++i) {
        EXPECT_NEAR(narrow.eigenvalues[i], base.eigenvalues[i], r.eig_tol)
            << "eigenvalue " << i;
      }
      // The refinement actually ran and left a small residual.
      EXPECT_GT(narrow.refine_residual, 0.0);
      EXPECT_LT(narrow.refine_residual, r.eig_tol * 10);
      EXPECT_EQ(narrow.precision_used.base, cfg.precision.base);
      // The narrow rung really moved fewer value bytes: CSR demotion
      // released the fp64 copy, so H2D traffic can only have shrunk.
      EXPECT_LE(narrow.device_counters.bytes_h2d,
                base.device_counters.bytes_h2d);
    }
  }
}

class PrecisionDeviceCount
    : public ::testing::TestWithParam<const char*> {};

TEST_P(PrecisionDeviceCount, LabelsByteIdenticalAcrossDeviceCounts) {
  // The bitwise determinism contract extends to every rung: quantization
  // happens at the same points in the single-device and sharded paths, so
  // labels must memcmp-equal for num_devices in {1, 2, 4}.
  const char* spec = GetParam();
  for (const Dataset& d : paper_datasets()) {
    SCOPED_TRACE(std::string(d.name) + " " + spec);
    SpectralConfig cfg = pipeline_config(d.k, 1);
    ASSERT_TRUE(parse_precision_policy(spec, cfg.precision));
    const SpectralResult base = core::spectral_cluster_graph(d.w, cfg);
    for (const index_t nd : {2, 4}) {
      SCOPED_TRACE("num_devices=" + std::to_string(nd));
      cfg.num_devices = nd;
      const SpectralResult sharded = core::spectral_cluster_graph(d.w, cfg);
      ASSERT_EQ(sharded.labels.size(), base.labels.size());
      EXPECT_EQ(std::memcmp(sharded.labels.data(), base.labels.data(),
                            base.labels.size() * sizeof(index_t)),
                0);
      ASSERT_EQ(sharded.eigenvalues.size(), base.eigenvalues.size());
      for (usize i = 0; i < base.eigenvalues.size(); ++i) {
        EXPECT_NEAR(sharded.eigenvalues[i], base.eigenvalues[i], 1e-8);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rungs, PrecisionDeviceCount,
                         ::testing::Values("fp32", "bf16"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(PrecisionLadder, AutoFallsBackToFp64WhenResidualUnsatisfiable) {
  const data::SbmGraph g =
      data::make_social_graph(data::fb_like_params(600, 3, 1));
  std::vector<index_t> old_of_new;
  const sparse::Coo w = graph::largest_component(g.w, old_of_new);

  SpectralConfig fp64_cfg = pipeline_config(3, 1);
  const SpectralResult want = core::spectral_cluster_graph(w, fp64_cfg);

  SpectralConfig cfg = pipeline_config(3, 1);
  ASSERT_TRUE(parse_precision_policy("auto", cfg.precision));
  // No finite refinement residual can satisfy a zero limit, so the ladder
  // must degrade to the fp64 rung — whose labels are byte-identical to the
  // plain fp64 run.
  cfg.precision.refine_residual_limit = 0.0;
  const SpectralResult got = core::spectral_cluster_graph(w, cfg);
  EXPECT_TRUE(got.precision_used.all_fp64());
  ASSERT_TRUE(got.degradation.degraded);
  bool saw_fallback = false;
  for (const auto& e : got.degradation.events) {
    if (e.action == "precision-fallback") saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback) << "no precision-fallback degradation recorded";
  ASSERT_EQ(got.labels.size(), want.labels.size());
  EXPECT_EQ(std::memcmp(got.labels.data(), want.labels.data(),
                        want.labels.size() * sizeof(index_t)),
            0);
  for (usize i = 0; i < want.eigenvalues.size(); ++i) {
    EXPECT_EQ(got.eigenvalues[i], want.eigenvalues[i]);
  }

  // Sharded path takes the same ladder.
  cfg.num_devices = 4;
  const SpectralResult sharded = core::spectral_cluster_graph(w, cfg);
  EXPECT_TRUE(sharded.precision_used.all_fp64());
  ASSERT_EQ(sharded.labels.size(), want.labels.size());
  EXPECT_EQ(std::memcmp(sharded.labels.data(), want.labels.data(),
                        want.labels.size() * sizeof(index_t)),
            0);
}

TEST(PrecisionLadder, Fp64PolicyIsBitwiseIdenticalToDefault) {
  // An explicit all-fp64 policy must not perturb anything: same labels,
  // same eigenvalues, bit for bit (the views compile to plain loads).
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 800, .avg_degree = 8.0, .seed = 7});
  std::vector<index_t> old_of_new;
  const sparse::Coo w = graph::largest_component(g.w, old_of_new);
  const SpectralResult a =
      core::spectral_cluster_graph(w, pipeline_config(4, 1));
  SpectralConfig cfg = pipeline_config(4, 1);
  ASSERT_TRUE(parse_precision_policy("fp64", cfg.precision));
  const SpectralResult b = core::spectral_cluster_graph(w, cfg);
  ASSERT_EQ(a.labels.size(), b.labels.size());
  EXPECT_EQ(std::memcmp(a.labels.data(), b.labels.data(),
                        a.labels.size() * sizeof(index_t)),
            0);
  ASSERT_EQ(a.embedding.size(), b.embedding.size());
  EXPECT_EQ(std::memcmp(a.embedding.data(), b.embedding.data(),
                        a.embedding.size() * sizeof(real)),
            0);
}

}  // namespace
}  // namespace fastsc
