// Property-based sweeps over randomized inputs: invariants that must hold
// for any valid input, exercised across a parameter grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "data/sbm.h"
#include "core/spectral.h"
#include "graph/laplacian.h"
#include "kmeans/lloyd.h"
#include "lanczos/rci.h"
#include "metrics/external.h"
#include "sparse/convert.h"
#include "sparse/ops.h"
#include "sparse/spmv.h"

namespace fastsc {
namespace {

// ---------------------------------------------------------------------------
// SpMV linearity: A(ax + by) == a Ax + b Ay for every format.
// ---------------------------------------------------------------------------

class SpmvLinearity : public ::testing::TestWithParam<int> {};

TEST_P(SpmvLinearity, HoldsForRandomMatrices) {
  const index_t n = 60;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  sparse::Coo coo(n, n);
  for (int e = 0; e < 400; ++e) {
    coo.push(static_cast<index_t>(rng.uniform_index(n)),
             static_cast<index_t>(rng.uniform_index(n)),
             rng.uniform(-1, 1));
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr csr = sparse::coo_to_csr(coo);

  std::vector<real> x(n), y(n), combo(n);
  for (index_t i = 0; i < n; ++i) {
    x[static_cast<usize>(i)] = rng.uniform(-1, 1);
    y[static_cast<usize>(i)] = rng.uniform(-1, 1);
  }
  const real a = rng.uniform(-2, 2), b = rng.uniform(-2, 2);
  for (index_t i = 0; i < n; ++i) {
    combo[static_cast<usize>(i)] =
        a * x[static_cast<usize>(i)] + b * y[static_cast<usize>(i)];
  }
  std::vector<real> ax(n), ay(n), acombo(n);
  sparse::csr_mv(csr, x.data(), ax.data());
  sparse::csr_mv(csr, y.data(), ay.data());
  sparse::csr_mv(csr, combo.data(), acombo.data());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_NEAR(acombo[static_cast<usize>(i)],
                a * ax[static_cast<usize>(i)] + b * ay[static_cast<usize>(i)],
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmvLinearity, ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Random-walk operator: rows sum to 1 and the spectrum lies in [-1, 1].
// ---------------------------------------------------------------------------

class RowStochastic
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RowStochastic, SpectrumInUnitInterval) {
  const auto [n_blocks, seed] = GetParam();
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(40 * n_blocks, n_blocks);
  p.p_in = 0.5;
  p.p_out = 0.05;
  p.seed = static_cast<std::uint64_t>(seed);
  const data::SbmGraph g = data::make_sbm(p);
  const sparse::Csr rw = graph::normalized_rw_host(g.w);

  const auto sums = sparse::row_sums(rw);
  for (real s : sums) EXPECT_NEAR(s, 1.0, 1e-12);

  // The spectrum of D^-1 W equals that of the symmetric S = D^-1/2 W D^-1/2;
  // the Lanczos iteration requires the symmetric form.
  std::vector<real> isd;
  const sparse::Csr sym = graph::sym_normalized_host(g.w, isd);
  lanczos::LanczosConfig cfg;
  cfg.n = sym.rows;
  cfg.nev = std::min<index_t>(n_blocks + 1, sym.rows - 2);
  cfg.which = lanczos::EigWhich::kLargestAlgebraic;
  const auto eig = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(sym, x, y); });
  for (real lam : eig.eigenvalues) {
    EXPECT_LE(lam, 1.0 + 1e-8);
    EXPECT_GE(lam, -1.0 - 1e-8);
  }
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Grid, RowStochastic,
                         ::testing::Combine(::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 2)));

// ---------------------------------------------------------------------------
// Eigenresidual property: for any symmetric matrix and any requested nev,
// every returned pair satisfies ||Av - lambda v|| <= 100 * tol * ||A||.
// ---------------------------------------------------------------------------

class EigenResidual
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EigenResidual, HoldsAcrossSizes) {
  const auto [n, nev] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 31 + nev));
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.push(i, i, rng.uniform(0, 2));
    const auto j = static_cast<index_t>(rng.uniform_index(n));
    if (j != i) {
      const real v = rng.uniform(-1, 1);
      coo.push(i, j, v);
      coo.push(j, i, v);
    }
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr a = sparse::coo_to_csr(coo);
  const real norm_est = sparse::inf_norm(a);

  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = nev;
  cfg.tol = 1e-9;
  const auto eig = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(a, x, y); });
  ASSERT_TRUE(eig.converged);

  std::vector<real> av(static_cast<usize>(n));
  for (index_t k = 0; k < nev; ++k) {
    const real* v = eig.eigenvectors.data() + k * n;
    sparse::csr_mv(a, v, av.data());
    real worst = 0;
    for (index_t i = 0; i < n; ++i) {
      worst = std::max(
          worst, std::fabs(av[static_cast<usize>(i)] -
                           eig.eigenvalues[static_cast<usize>(k)] * v[i]));
    }
    EXPECT_LE(worst, 100 * cfg.tol * std::max<real>(norm_est, 1.0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EigenResidual,
    ::testing::Combine(::testing::Values(40, 90, 160),
                       ::testing::Values(1, 4, 9)));

// ---------------------------------------------------------------------------
// k-means invariants: labels partition the data and the objective never
// exceeds the single-cluster (total variance) objective.
// ---------------------------------------------------------------------------

class KmeansInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KmeansInvariants, ObjectiveBoundedByTotalVariance) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n + k * 1000));
  const index_t d = 5;
  std::vector<real> x(static_cast<usize>(n * d));
  for (real& v : x) v = rng.uniform(-3, 3);

  kmeans::KmeansConfig cfg;
  cfg.k = k;
  cfg.seed = 7;
  const auto r = kmeans::kmeans_lloyd_host(x.data(), n, d, cfg);

  // Single-cluster objective = total squared deviation from the mean.
  std::vector<real> mean(static_cast<usize>(d), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t l = 0; l < d; ++l) {
      mean[static_cast<usize>(l)] += x[static_cast<usize>(i * d + l)];
    }
  }
  for (real& m : mean) m /= static_cast<real>(n);
  real total = 0;
  for (index_t i = 0; i < n; ++i) {
    for (index_t l = 0; l < d; ++l) {
      const real delta =
          x[static_cast<usize>(i * d + l)] - mean[static_cast<usize>(l)];
      total += delta * delta;
    }
  }
  EXPECT_LE(r.objective, total + 1e-9);
  // Labels form a partition into at most k parts.
  for (index_t l : r.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, k);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, KmeansInvariants,
                         ::testing::Combine(::testing::Values(50, 200),
                                            ::testing::Values(2, 5, 10)));

// ---------------------------------------------------------------------------
// Operator-scaling equivariance: eigenvalues of c*A are c*eig(A), same
// eigenvectors (checked via identical k-means-ready embeddings up to sign).
// ---------------------------------------------------------------------------

class ScalingEquivariance : public ::testing::TestWithParam<int> {};

TEST_P(ScalingEquivariance, EigenvaluesScaleLinearly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  const index_t n = 80;
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.push(i, i, rng.uniform(0, 2));
    const auto j = static_cast<index_t>(rng.uniform_index(n));
    if (j != i) {
      const real v = rng.uniform(-1, 1);
      coo.push(i, j, v);
      coo.push(j, i, v);
    }
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr a = sparse::coo_to_csr(coo);
  const real c = rng.uniform(0.5, 4.0);

  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.tol = 1e-10;
  const auto base = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(a, x, y); });
  const auto scaled = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(a, x, y, c); });
  ASSERT_TRUE(base.converged && scaled.converged);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(scaled.eigenvalues[i], c * base.eigenvalues[i],
                1e-7 * std::max<real>(1.0, c));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingEquivariance, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Spectral-shift equivariance: eig(A + cI) = eig(A) + c, identical ordering
// for largest-algebraic.
// ---------------------------------------------------------------------------

class ShiftEquivariance : public ::testing::TestWithParam<int> {};

TEST_P(ShiftEquivariance, EigenvaluesShiftByConstant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 11 + 1);
  const index_t n = 70;
  sparse::Coo coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    coo.push(i, i, rng.uniform(-1, 1));
    const auto j = static_cast<index_t>(rng.uniform_index(n));
    if (j != i) {
      const real v = rng.uniform(-1, 1);
      coo.push(i, j, v);
      coo.push(j, i, v);
    }
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr a = sparse::coo_to_csr(coo);
  const real c = rng.uniform(-3, 3);

  lanczos::LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = 4;
  cfg.tol = 1e-10;
  const auto base = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) { sparse::csr_mv(a, x, y); });
  const auto shifted = lanczos::solve_symmetric(
      cfg, [&](const real* x, real* y) {
        sparse::csr_mv(a, x, y);
        for (index_t i = 0; i < n; ++i) y[i] += c * x[i];
      });
  ASSERT_TRUE(base.converged && shifted.converged);
  for (usize i = 0; i < 4; ++i) {
    EXPECT_NEAR(shifted.eigenvalues[i], base.eigenvalues[i] + c, 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShiftEquivariance, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// Graph-permutation invariance: relabeling the vertices permutes the
// clustering but preserves every quality metric.
// ---------------------------------------------------------------------------

class PermutationInvariance : public ::testing::TestWithParam<int> {};

TEST_P(PermutationInvariance, NcutAndAriUnchanged) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 5);
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(150, 3);
  p.p_in = 0.4;
  p.p_out = 0.02;
  p.seed = static_cast<std::uint64_t>(GetParam());
  const data::SbmGraph g = data::make_sbm(p);
  const index_t n = g.w.rows;

  // Random permutation pi.
  std::vector<index_t> pi(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) pi[static_cast<usize>(i)] = i;
  for (index_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<index_t>(
        rng.uniform_index(static_cast<std::uint64_t>(i + 1)));
    std::swap(pi[static_cast<usize>(i)], pi[static_cast<usize>(j)]);
  }
  sparse::Coo permuted(n, n);
  for (usize e = 0; e < g.w.values.size(); ++e) {
    permuted.push(pi[static_cast<usize>(g.w.row_idx[e])],
                  pi[static_cast<usize>(g.w.col_idx[e])], g.w.values[e]);
  }
  std::vector<index_t> truth_permuted(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    truth_permuted[static_cast<usize>(pi[static_cast<usize>(i)])] =
        g.labels[static_cast<usize>(i)];
  }

  core::SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.seed = 9;
  const auto base = core::spectral_cluster_graph(g.w, cfg);
  const auto perm = core::spectral_cluster_graph(permuted, cfg);
  const real ari_base = metrics::adjusted_rand_index(base.labels, g.labels);
  const real ari_perm =
      metrics::adjusted_rand_index(perm.labels, truth_permuted);
  // Both runs must recover the (same) planted structure.
  EXPECT_GT(ari_base, 0.95);
  EXPECT_GT(ari_perm, 0.95);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PermutationInvariance, ::testing::Range(0, 4));

// ---------------------------------------------------------------------------
// k-means translation invariance: shifting every point by a constant vector
// leaves the labels and the objective unchanged.
// ---------------------------------------------------------------------------

class KmeansTranslation : public ::testing::TestWithParam<int> {};

TEST_P(KmeansTranslation, LabelsAndObjectiveUnchanged) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 9);
  const index_t n = 150, d = 4;
  std::vector<real> x(static_cast<usize>(n * d));
  for (real& v : x) v = rng.uniform(-2, 2);
  std::vector<real> shifted = x;
  std::vector<real> offset(static_cast<usize>(d));
  for (real& v : offset) v = rng.uniform(-50, 50);
  for (index_t i = 0; i < n; ++i) {
    for (index_t l = 0; l < d; ++l) {
      shifted[static_cast<usize>(i * d + l)] += offset[static_cast<usize>(l)];
    }
  }
  kmeans::KmeansConfig cfg;
  cfg.k = 4;
  cfg.seed = 17;
  const auto base = kmeans::kmeans_lloyd_host(x.data(), n, d, cfg);
  const auto moved = kmeans::kmeans_lloyd_host(shifted.data(), n, d, cfg);
  EXPECT_EQ(base.labels, moved.labels);
  EXPECT_NEAR(base.objective, moved.objective,
              1e-6 * std::max<real>(1.0, base.objective));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KmeansTranslation, ::testing::Range(0, 5));

// ---------------------------------------------------------------------------
// ARI/NMI symmetry and permutation invariance on random partitions.
// ---------------------------------------------------------------------------

class MetricInvariance : public ::testing::TestWithParam<int> {};

TEST_P(MetricInvariance, SymmetricAndRelabelInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  const usize n = 300;
  std::vector<index_t> a(n), b(n);
  for (usize i = 0; i < n; ++i) {
    a[i] = static_cast<index_t>(rng.uniform_index(6));
    b[i] = static_cast<index_t>(rng.uniform_index(4));
  }
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b),
              metrics::adjusted_rand_index(b, a), 1e-12);
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b),
              metrics::normalized_mutual_information(b, a), 1e-12);
  // Relabel a by a fixed permutation: metrics unchanged.
  std::vector<index_t> perm{3, 5, 0, 1, 4, 2};
  std::vector<index_t> a2(n);
  for (usize i = 0; i < n; ++i) a2[i] = perm[static_cast<usize>(a[i])];
  EXPECT_NEAR(metrics::adjusted_rand_index(a, b),
              metrics::adjusted_rand_index(a2, b), 1e-12);
  EXPECT_NEAR(metrics::normalized_mutual_information(a, b),
              metrics::normalized_mutual_information(a2, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricInvariance, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Format-conversion chain: COO -> CSR -> CSC -> CSR -> BSR -> CSR preserves
// the matrix exactly (as dense) for random inputs.
// ---------------------------------------------------------------------------

class ConversionChain : public ::testing::TestWithParam<int> {};

TEST_P(ConversionChain, LongChainIsLossless) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  const index_t n = 37;
  sparse::Coo coo(n, n);
  for (int e = 0; e < 300; ++e) {
    coo.push(static_cast<index_t>(rng.uniform_index(n)),
             static_cast<index_t>(rng.uniform_index(n)),
             rng.uniform(-1, 1));
  }
  sparse::sort_and_merge(coo);
  const sparse::Csr c1 = sparse::coo_to_csr(coo);
  const sparse::Csr c2 = sparse::csc_to_csr(sparse::csr_to_csc(c1));
  const sparse::Csr c3 = sparse::bsr_to_csr(sparse::csr_to_bsr(c2, 4));
  std::vector<real> d1(static_cast<usize>(n) * static_cast<usize>(n));
  std::vector<real> d3(d1.size());
  sparse::csr_to_dense(c1, d1.data());
  sparse::csr_to_dense(c3, d3.data());
  for (usize i = 0; i < d1.size(); ++i) EXPECT_NEAR(d1[i], d3[i], 1e-14);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConversionChain, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Randomized format round trips on rectangular matrices with empty rows,
// empty columns, duplicate entries, and BSR block sizes that do not divide
// the dimensions.  The dense accumulation of the raw pushes is the ground
// truth for every representation.
// ---------------------------------------------------------------------------

class SparseRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseRoundTrip, EveryFormatPreservesTheMatrix) {
  const auto [seed, block_size] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 101 + 7);
  const index_t rows = 29, cols = 41;  // deliberately not block-divisible
  std::vector<real> dense(static_cast<usize>(rows) * static_cast<usize>(cols),
                          0.0);
  sparse::Coo coo(rows, cols);
  for (int e = 0; e < 250; ++e) {
    // Skip a band of rows and columns so some stay entirely empty; positive
    // values so duplicate coalescing can never cancel an entry to zero.
    const auto i = static_cast<index_t>(rng.uniform_index(rows));
    const auto j = static_cast<index_t>(rng.uniform_index(cols));
    if (i % 7 == 3 || j % 11 == 5) continue;
    const real v = rng.uniform(0.1, 1.0);
    coo.push(i, j, v);
    dense[static_cast<usize>(i * cols + j)] += v;
    if (e % 5 == 0) {  // inject duplicates for sort_and_merge to coalesce
      coo.push(i, j, v);
      dense[static_cast<usize>(i * cols + j)] += v;
    }
  }
  sparse::sort_and_merge(coo);

  // COO is strictly sorted with no duplicates after the merge.
  for (usize e = 1; e < coo.values.size(); ++e) {
    const bool ordered =
        coo.row_idx[e - 1] < coo.row_idx[e] ||
        (coo.row_idx[e - 1] == coo.row_idx[e] &&
         coo.col_idx[e - 1] < coo.col_idx[e]);
    EXPECT_TRUE(ordered);
  }

  const sparse::Csr csr = sparse::coo_to_csr(coo);
  auto expect_dense = [&](const sparse::Csr& m, const char* what) {
    ASSERT_EQ(m.rows, rows) << what;
    ASSERT_EQ(m.cols, cols) << what;
    std::vector<real> d(dense.size());
    sparse::csr_to_dense(m, d.data());
    for (usize i = 0; i < dense.size(); ++i) {
      ASSERT_NEAR(d[i], dense[i], 1e-13) << what << " at flat index " << i;
    }
  };
  expect_dense(csr, "coo_to_csr");

  // COO <-> CSR: an exact structural round trip.
  const sparse::Coo coo2 = sparse::csr_to_coo(csr);
  EXPECT_EQ(coo2.row_idx, coo.row_idx);
  EXPECT_EQ(coo2.col_idx, coo.col_idx);
  EXPECT_EQ(coo2.values, coo.values);

  // CSR <-> CSC.
  expect_dense(sparse::csc_to_csr(sparse::csr_to_csc(csr)), "csr<->csc");

  // CSR <-> BSR with a non-divisible tail block (29 % block, 41 % block).
  const sparse::Bsr bsr = sparse::csr_to_bsr(csr, block_size);
  expect_dense(sparse::bsr_to_csr(bsr), "csr<->bsr");

  // Dense round trip keeps the nnz structure (no spurious entries).
  const sparse::Csr redensed = sparse::dense_to_csr(rows, cols, dense.data());
  EXPECT_EQ(redensed.values.size(), csr.values.size());
  expect_dense(redensed, "dense_to_csr");
}

INSTANTIATE_TEST_SUITE_P(Grid, SparseRoundTrip,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 3, 4, 5)));

TEST(SparseRoundTrip, EmptyMatrixSurvivesEveryConversion) {
  sparse::Coo coo(6, 9);
  sparse::sort_and_merge(coo);
  const sparse::Csr csr = sparse::coo_to_csr(coo);
  EXPECT_EQ(csr.values.size(), 0u);
  EXPECT_EQ(sparse::csr_to_coo(csr).values.size(), 0u);
  EXPECT_EQ(sparse::csc_to_csr(sparse::csr_to_csc(csr)).values.size(), 0u);
  const sparse::Csr back = sparse::bsr_to_csr(sparse::csr_to_bsr(csr, 4));
  EXPECT_EQ(back.rows, 6);
  EXPECT_EQ(back.cols, 9);
  EXPECT_EQ(back.values.size(), 0u);
}

}  // namespace
}  // namespace fastsc
