// Tests of the ARPACK++-style reverse communication interface — the calling
// convention of the paper's Algorithm 3.
#include "lanczos/rci.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fastsc::lanczos {
namespace {

LanczosConfig diag_config(index_t n, index_t nev) {
  LanczosConfig cfg;
  cfg.n = n;
  cfg.nev = nev;
  cfg.which = EigWhich::kLargestAlgebraic;
  return cfg;
}

TEST(SymEigProb, PaperAlgorithm3LoopShape) {
  // The exact loop from the paper:
  //   while (!Prob.converge()) { TakeStep-with-matvec }
  //   Prob.FindEigenvectors();
  const index_t n = 50;
  SymEigProb prob(diag_config(n, 2));
  index_t matvecs = 0;
  while (!prob.converge()) {
    const real* x = prob.GetVector();
    real* y = prob.PutVector();
    for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i) * x[i];
    ++matvecs;
    prob.TakeStep();
  }
  EXPECT_FALSE(prob.Failed());
  EXPECT_GT(matvecs, 0);
  EXPECT_EQ(prob.Stats().matvec_count, matvecs);
  ASSERT_EQ(prob.Eigenvalues().size(), 2u);
  EXPECT_NEAR(prob.Eigenvalues()[0], 49, 1e-8);
  EXPECT_NEAR(prob.Eigenvalues()[1], 48, 1e-8);

  const auto vectors = prob.FindEigenvectors();
  ASSERT_EQ(vectors.size(), static_cast<usize>(2 * n));
  // Eigenvector of a diagonal matrix is a coordinate axis.
  EXPECT_NEAR(std::fabs(vectors[static_cast<usize>(n - 1)]), 1.0, 1e-6);
}

TEST(SymEigProb, GetVectorStableBetweenStepCalls) {
  SymEigProb prob(diag_config(30, 1));
  ASSERT_FALSE(prob.converge());
  const real* x1 = prob.GetVector();
  const real* x2 = prob.GetVector();
  EXPECT_EQ(x1, x2);
}

TEST(SymEigProb, ConvergeIsIdempotentBeforeTakeStep) {
  SymEigProb prob(diag_config(30, 1));
  EXPECT_FALSE(prob.converge());
  EXPECT_FALSE(prob.converge());  // does not advance the state machine
}

TEST(SolveSymmetric, MatvecCallbackDrivesSolution) {
  const index_t n = 40;
  std::vector<real> diag(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    diag[static_cast<usize>(i)] = static_cast<real>((i * 7) % 23);
  }
  LanczosConfig cfg = diag_config(n, 1);
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = diag[static_cast<usize>(i)] * x[i];
  });
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 22, 1e-8);
}

TEST(SolveSymmetric, EigenvectorRowsAreUnitNorm) {
  const index_t n = 35;
  LanczosConfig cfg = diag_config(n, 3);
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i % 9) * x[i];
  });
  for (index_t k = 0; k < 3; ++k) {
    real norm2 = 0;
    for (index_t i = 0; i < n; ++i) {
      const real v = result.eigenvectors[static_cast<usize>(k * n + i)];
      norm2 += v * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(SolveSymmetric, FailureReportedWhenBudgetTooSmall) {
  // A hard spectrum with an absurdly tight restart budget must raise the
  // failed flag rather than pretend convergence.
  const index_t n = 400;
  Rng rng(3);
  std::vector<real> diag(static_cast<usize>(n));
  // Densely clustered eigenvalues make the top-k hard to separate.
  for (index_t i = 0; i < n; ++i) {
    diag[static_cast<usize>(i)] = 1.0 + 1e-7 * static_cast<real>(i);
  }
  LanczosConfig cfg = diag_config(n, 8);
  cfg.max_restarts = 0;
  cfg.tol = 1e-14;
  cfg.ncv = 17;
  const auto result = solve_symmetric(cfg, [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) y[i] = diag[static_cast<usize>(i)] * x[i];
  });
  EXPECT_FALSE(result.converged);
  // Best-effort estimates are still produced.
  EXPECT_EQ(result.eigenvalues.size(), 8u);
}

}  // namespace
}  // namespace fastsc::lanczos
