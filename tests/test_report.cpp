// Tests for the report-assembly module (the tables the benches print).
#include "core/report.h"

#include <gtest/gtest.h>

#include "data/sbm.h"
#include "sparse/convert.h"

namespace fastsc::core {
namespace {

BackendRuns make_runs(index_t n, index_t k, bool with_device) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, k);
  p.p_in = 0.4;
  p.p_out = 0.02;
  const data::SbmGraph g = data::make_sbm(p);

  BackendRuns runs;
  runs.dataset = "unit";
  runs.nodes = n;
  runs.edges = g.w.nnz();
  runs.clusters = k;
  device::DeviceContext ctx(1);
  std::vector<Backend> backends{Backend::kMatlabLike};
  if (with_device) backends.insert(backends.begin(), Backend::kDevice);
  for (Backend b : backends) {
    SpectralConfig cfg;
    cfg.num_clusters = k;
    cfg.backend = b;
    runs.runs.emplace_back(b, spectral_cluster_graph(g.w, cfg, &ctx));
  }
  return runs;
}

TEST(Report, FigureSeriesHasOneRowPerBackendStage) {
  const BackendRuns runs = make_runs(100, 2, true);
  const std::string csv = figure_series(runs).to_csv();
  // Graph mode: 2 stages x 2 backends + header.
  index_t lines = 0;
  for (char c : csv) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 5);
  EXPECT_NE(csv.find("unit,CUDA,eigensolver"), std::string::npos);
  EXPECT_NE(csv.find("unit,Matlab,kmeans"), std::string::npos);
}

TEST(Report, DatasetTableListsEveryDataset) {
  const BackendRuns a = make_runs(80, 2, false);
  BackendRuns b = make_runs(60, 3, false);
  b.dataset = "second";
  const std::string t = dataset_table({a, b}).to_string();
  EXPECT_NE(t.find("unit"), std::string::npos);
  EXPECT_NE(t.find("second"), std::string::npos);
  EXPECT_NE(t.find("80"), std::string::npos);
}

TEST(Report, CommunicationTableOnlyCoversDeviceRuns) {
  const BackendRuns no_device = make_runs(80, 2, false);
  const std::string empty = communication_table({no_device}).to_csv();
  // Header only: no device run to report.
  index_t lines = 0;
  for (char c : empty) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 1);

  const BackendRuns with_device = make_runs(80, 2, true);
  const std::string full = communication_table({with_device}).to_string();
  EXPECT_NE(full.find("unit"), std::string::npos);
}

TEST(Report, StageTableSimilarityRowIsOptional) {
  const BackendRuns runs = make_runs(80, 2, true);
  const std::string without = stage_table(runs, false).to_string();
  EXPECT_EQ(without.find("Similarity"), std::string::npos);
  const std::string with = stage_table(runs, true).to_string();
  EXPECT_NE(with.find("Similarity"), std::string::npos);
}

TEST(Report, BackendNamesMatchPaperColumns) {
  EXPECT_EQ(backend_name(Backend::kDevice), "CUDA");
  EXPECT_EQ(backend_name(Backend::kMatlabLike), "Matlab");
  EXPECT_EQ(backend_name(Backend::kPythonLike), "Python");
}

}  // namespace
}  // namespace fastsc::core
