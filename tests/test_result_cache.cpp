#include "service/result_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "common/precision.h"
#include "common/thread_pool.h"
#include "core/fingerprint.h"
#include "core/spectral.h"

namespace fastsc::service {
namespace {

/// Entry whose labels are all `fill` — a torn concurrent copy would show
/// mixed values.
CacheEntry make_entry(std::uint64_t graph_fp, std::uint64_t config_fp,
                      index_t n = 16, index_t fill = 1) {
  CacheEntry e;
  e.labels.assign(static_cast<usize>(n), fill);
  e.eigenvalues.assign(4, real{0.5});
  e.n = n;
  e.k = 4;
  e.graph_fp = graph_fp;
  e.config_fp = config_fp;
  return e;
}

std::shared_ptr<const lanczos::LanczosCheckpoint> make_checkpoint(
    index_t n = 16) {
  auto cp = std::make_shared<lanczos::LanczosCheckpoint>();
  cp->n = n;
  cp->nev = 4;
  cp->ncv = 8;
  cp->j = 4;
  cp->nkept = 4;
  cp->v.assign(static_cast<usize>((cp->ncv + 1) * n), real{0.1});
  cp->t.assign(static_cast<usize>(cp->ncv * cp->ncv), real{0});
  return cp;
}

TEST(ResultCache, MissThenHit) {
  ResultCache cache(1 << 20);
  const CacheKey key{7, 9};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(make_entry(7, 9));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->graph_fp, 7u);
  EXPECT_EQ(hit->config_fp, 9u);
  EXPECT_EQ(hit->labels, std::vector<index_t>(16, 1));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.bytes(), ResultCache::entry_bytes(*hit));
}

TEST(ResultCache, ByteAccountedLruEviction) {
  const std::uint64_t one = ResultCache::entry_bytes(make_entry(1, 1));
  ResultCache cache(2 * one);  // room for exactly two entries
  cache.insert(make_entry(1, 1));
  cache.insert(make_entry(2, 1));
  EXPECT_EQ(cache.entries(), 2u);
  cache.insert(make_entry(3, 1));  // evicts the LRU entry (1)
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_EQ(cache.bytes(), 2 * one);
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{2, 1}).has_value());
  EXPECT_TRUE(cache.lookup(CacheKey{3, 1}).has_value());
}

TEST(ResultCache, LookupBumpsRecency) {
  const std::uint64_t one = ResultCache::entry_bytes(make_entry(1, 1));
  ResultCache cache(2 * one);
  cache.insert(make_entry(1, 1));
  cache.insert(make_entry(2, 1));
  ASSERT_TRUE(cache.lookup(CacheKey{1, 1}).has_value());  // 1 is MRU now
  cache.insert(make_entry(3, 1));                         // evicts 2, not 1
  EXPECT_TRUE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{2, 1}).has_value());
}

TEST(ResultCache, ReplaceInPlaceKeepsAccounting) {
  ResultCache cache(1 << 20);
  cache.insert(make_entry(5, 5, /*n=*/16));
  const std::uint64_t small = cache.bytes();
  cache.insert(make_entry(5, 5, /*n=*/512));
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_GT(cache.bytes(), small);
  EXPECT_EQ(cache.bytes(),
            ResultCache::entry_bytes(make_entry(5, 5, /*n=*/512)));
}

TEST(ResultCache, OversizedEntryIsNotCached) {
  ResultCache cache(64);  // smaller than any entry's footprint
  cache.insert(make_entry(1, 1));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCache, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.insert(make_entry(1, 1));
  EXPECT_FALSE(cache.lookup(CacheKey{1, 1}).has_value());
  EXPECT_EQ(cache.lookup_warm(1, 16, 1), nullptr);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCache, WarmDonorPrefersHintThenRecency) {
  ResultCache cache(1 << 20);
  CacheEntry hinted = make_entry(10, 1);
  hinted.checkpoint = make_checkpoint();
  CacheEntry other = make_entry(11, 1);
  other.checkpoint = make_checkpoint();
  cache.insert(std::move(hinted));
  cache.insert(std::move(other));  // MRU

  // Exact hint match wins even though entry 11 is fresher.
  auto donor = cache.lookup_warm(/*config_fp=*/1, /*n=*/16, /*hint=*/10);
  ASSERT_NE(donor, nullptr);
  // Fallback: no hint -> most recently used compatible entry.
  auto fresh = cache.lookup_warm(/*config_fp=*/1, /*n=*/16, /*hint=*/0);
  ASSERT_NE(fresh, nullptr);
  // Wrong shape or config: no donor.
  EXPECT_EQ(cache.lookup_warm(/*config_fp=*/2, /*n=*/16, /*hint=*/0),
            nullptr);
  EXPECT_EQ(cache.lookup_warm(/*config_fp=*/1, /*n=*/32, /*hint=*/0),
            nullptr);
}

TEST(ResultCache, WarmDonorRequiresCheckpoint) {
  ResultCache cache(1 << 20);
  cache.insert(make_entry(10, 1));  // no checkpoint attached
  EXPECT_EQ(cache.lookup_warm(1, 16, 10), nullptr);
}

// ThreadPool stress: concurrent lookups, inserts, and (capacity-forced)
// evictions.  Invariants checked under fire: no torn entries (labels are
// uniform per key), byte accounting never exceeds capacity, and the final
// bytes/entries agree with a full re-walk via lookups.
TEST(ResultCache, ConcurrentStressKeepsInvariants) {
  const std::uint64_t one = ResultCache::entry_bytes(make_entry(0, 1));
  ResultCache cache(6 * one);  // small: constant eviction pressure
  ThreadPool pool(4);
  constexpr int kKeys = 16;
  constexpr int kRounds = 400;
  std::atomic<int> torn{0};
  pool.run_workers([&](usize w) {
    for (int r = 0; r < kRounds; ++r) {
      const auto key = static_cast<std::uint64_t>((r + 3 * w) % kKeys);
      if (r % 3 == 0) {
        cache.insert(make_entry(key, 1, /*n=*/16,
                                static_cast<index_t>(key)));
      } else if (const auto hit = cache.lookup(CacheKey{key, 1})) {
        for (index_t label : hit->labels) {
          if (label != static_cast<index_t>(key)) torn.fetch_add(1);
        }
      }
      if (r % 7 == 0) {
        (void)cache.lookup_warm(1, 16, key);
      }
      if (cache.bytes() > 6 * one) torn.fetch_add(1);
    }
  });
  EXPECT_EQ(torn.load(), 0);
  EXPECT_LE(cache.bytes(), 6 * one);
  EXPECT_LE(cache.entries(), 6u);
  // Every surviving entry is whole and correctly keyed.
  std::uint64_t walked = 0;
  usize found = 0;
  for (std::uint64_t key = 0; key < kKeys; ++key) {
    if (const auto hit = cache.lookup(CacheKey{key, 1})) {
      ++found;
      walked += ResultCache::entry_bytes(*hit);
      for (index_t label : hit->labels) {
        EXPECT_EQ(label, static_cast<index_t>(key));
      }
    }
  }
  EXPECT_EQ(found, cache.entries());
  EXPECT_EQ(walked, cache.bytes());
}

// Regression: a cached fp64 solve must not satisfy an fp32 request (and vice
// versa).  The precision policy changes the labels a solve produces, so it
// belongs in the config fingerprint — before the fix, two configs differing
// only in `precision` collided on the same cache key and warm-donor pool.
TEST(ResultCache, PrecisionPolicyChangesConfigFingerprint) {
  core::SpectralConfig fp64_cfg;
  fp64_cfg.num_clusters = 4;

  core::SpectralConfig fp32_cfg = fp64_cfg;
  ASSERT_TRUE(parse_precision_policy("fp32", fp32_cfg.precision));
  core::SpectralConfig bf16_cfg = fp64_cfg;
  ASSERT_TRUE(parse_precision_policy("bf16", bf16_cfg.precision));
  core::SpectralConfig staged_cfg = fp64_cfg;
  ASSERT_TRUE(parse_precision_policy("fp64,spmv=fp32", staged_cfg.precision));
  core::SpectralConfig auto_cfg = fp64_cfg;
  ASSERT_TRUE(parse_precision_policy("auto", auto_cfg.precision));

  const std::uint64_t fp64_fp = core::config_fingerprint(fp64_cfg);
  const std::uint64_t fp32_fp = core::config_fingerprint(fp32_cfg);
  EXPECT_NE(fp64_fp, fp32_fp);
  EXPECT_NE(fp64_fp, core::config_fingerprint(bf16_cfg));
  EXPECT_NE(fp64_fp, core::config_fingerprint(staged_cfg));
  EXPECT_NE(fp32_fp, core::config_fingerprint(auto_cfg));
  EXPECT_NE(fp32_fp, core::config_fingerprint(bf16_cfg));
  // Same policy still fingerprints the same (determinism).
  core::SpectralConfig fp32_again = fp64_cfg;
  ASSERT_TRUE(parse_precision_policy("fp32", fp32_again.precision));
  EXPECT_EQ(fp32_fp, core::config_fingerprint(fp32_again));

  // End-to-end through the cache: the fp64 entry neither hits nor donates
  // a warm start for the fp32 key.
  ResultCache cache(1 << 20);
  CacheEntry e = make_entry(/*graph_fp=*/7, /*config_fp=*/fp64_fp);
  e.checkpoint = make_checkpoint();
  cache.insert(std::move(e));
  EXPECT_TRUE(cache.lookup(CacheKey{7, fp64_fp}).has_value());
  EXPECT_FALSE(cache.lookup(CacheKey{7, fp32_fp}).has_value());
  EXPECT_NE(cache.lookup_warm(fp64_fp, 16, 0), nullptr);
  EXPECT_EQ(cache.lookup_warm(fp32_fp, 16, 0), nullptr);
}

}  // namespace
}  // namespace fastsc::service
