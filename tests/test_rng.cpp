#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace fastsc {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const real u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const real u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  real sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(13);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_index(n), n);
    }
  }
}

TEST(Rng, UniformIndexCoversSmallRange) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIndexZeroIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.uniform_index(0), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  real sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const real x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(23);
  const int n = 100000;
  real sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, GeometricSkipMeanMatchesDistribution) {
  Rng rng(29);
  const real p = 0.1;
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.geometric_skip(p));
  }
  // E[failures before success] = (1-p)/p = 9.
  EXPECT_NEAR(sum / n, 9.0, 0.25);
}

TEST(Rng, GeometricSkipEdgeCases) {
  Rng rng(31);
  EXPECT_EQ(rng.geometric_skip(1.0), 0u);
  EXPECT_EQ(rng.geometric_skip(0.0),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(rng.geometric_skip(-0.5),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng rng(37);
  Rng child = rng.split();
  // The child must not replay the parent's sequence.
  Rng parent_copy(37);
  (void)parent_copy();  // advance past the split draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent_copy()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == std::numeric_limits<std::uint64_t>::max());
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // compiles & runs
  EXPECT_EQ(v.size(), 5u);
}

TEST(Splitmix64, KnownFirstValueStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_NE(s1, 0u);  // state advanced
}

}  // namespace
}  // namespace fastsc
