#include "data/sbm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sparse/convert.h"
#include "sparse/ops.h"

namespace fastsc::data {
namespace {

TEST(EqualBlocks, SplitsEvenly) {
  EXPECT_EQ(equal_blocks(10, 2), (std::vector<index_t>{5, 5}));
  EXPECT_EQ(equal_blocks(11, 3), (std::vector<index_t>{4, 4, 3}));
  EXPECT_EQ(equal_blocks(5, 5), (std::vector<index_t>{1, 1, 1, 1, 1}));
}

TEST(EqualBlocks, RejectsBadCounts) {
  EXPECT_THROW((void)equal_blocks(3, 0), std::invalid_argument);
  EXPECT_THROW((void)equal_blocks(3, 4), std::invalid_argument);
}

TEST(MakeSbm, LabelsMatchBlockStructure) {
  SbmParams p;
  p.block_sizes = {3, 2, 4};
  const SbmGraph g = make_sbm(p);
  ASSERT_EQ(g.labels.size(), 9u);
  EXPECT_EQ(g.labels[0], 0);
  EXPECT_EQ(g.labels[2], 0);
  EXPECT_EQ(g.labels[3], 1);
  EXPECT_EQ(g.labels[4], 1);
  EXPECT_EQ(g.labels[5], 2);
  EXPECT_EQ(g.labels[8], 2);
}

TEST(MakeSbm, GraphIsSymmetricNoSelfLoops) {
  SbmParams p;
  p.block_sizes = equal_blocks(200, 10);
  p.p_in = 0.2;
  p.p_out = 0.02;
  const SbmGraph g = make_sbm(p);
  g.w.validate();
  for (usize e = 0; e < g.w.values.size(); ++e) {
    EXPECT_NE(g.w.row_idx[e], g.w.col_idx[e]);
  }
  EXPECT_TRUE(sparse::is_symmetric(sparse::coo_to_csr(g.w), 1e-12));
}

TEST(MakeSbm, NoDuplicateEdges) {
  SbmParams p;
  p.block_sizes = equal_blocks(100, 4);
  p.p_in = 0.5;
  p.p_out = 0.05;
  const SbmGraph g = make_sbm(p);
  std::set<std::pair<index_t, index_t>> seen;
  for (usize e = 0; e < g.w.values.size(); ++e) {
    EXPECT_TRUE(seen.emplace(g.w.row_idx[e], g.w.col_idx[e]).second);
  }
}

TEST(MakeSbm, EdgeCountNearExpectation) {
  SbmParams p;
  p.block_sizes = equal_blocks(2000, 20);
  p.p_in = 0.1;
  p.p_out = 0.005;
  p.seed = 77;
  const SbmGraph g = make_sbm(p);
  const real expected = sbm_expected_edges(p);
  const real actual = static_cast<real>(g.w.nnz()) / 2;  // both directions
  // 5 sigma-ish tolerance for a binomial with ~expected trials.
  EXPECT_NEAR(actual, expected, 5 * std::sqrt(expected));
}

TEST(MakeSbm, ExtremeProbabilities) {
  SbmParams p;
  p.block_sizes = {4, 4};
  p.p_in = 1.0;
  p.p_out = 0.0;
  const SbmGraph g = make_sbm(p);
  // Complete within blocks: 2 * (4 choose 2) undirected edges per block.
  EXPECT_EQ(g.w.nnz(), 2 * 2 * 6);
  for (usize e = 0; e < g.w.values.size(); ++e) {
    EXPECT_EQ(g.labels[static_cast<usize>(g.w.row_idx[e])],
              g.labels[static_cast<usize>(g.w.col_idx[e])]);
  }
}

TEST(MakeSbm, DeterministicForSeed) {
  SbmParams p;
  p.block_sizes = equal_blocks(300, 6);
  p.seed = 123;
  const SbmGraph a = make_sbm(p);
  const SbmGraph b = make_sbm(p);
  EXPECT_EQ(a.w.row_idx, b.w.row_idx);
  EXPECT_EQ(a.w.col_idx, b.w.col_idx);
}

TEST(MakeSbm, DifferentSeedsDiffer) {
  SbmParams p;
  p.block_sizes = equal_blocks(300, 6);
  p.seed = 1;
  const SbmGraph a = make_sbm(p);
  p.seed = 2;
  const SbmGraph b = make_sbm(p);
  EXPECT_NE(a.w.row_idx, b.w.row_idx);
}

TEST(MakeSbm, PaperSyn200ParametersScaled) {
  // Scaled Syn200: r blocks of 100 at p=0.3/q=0.01 (paper Table II).
  SbmParams p;
  p.block_sizes = equal_blocks(2000, 20);
  p.p_in = 0.3;
  p.p_out = 0.01;
  const SbmGraph g = make_sbm(p);
  // Within-block edges should dominate per-pair density.
  index_t within = 0, cross = 0;
  for (usize e = 0; e < g.w.values.size(); ++e) {
    if (g.labels[static_cast<usize>(g.w.row_idx[e])] ==
        g.labels[static_cast<usize>(g.w.col_idx[e])]) {
      ++within;
    } else {
      ++cross;
    }
  }
  EXPECT_GT(within, 0);
  EXPECT_GT(cross, 0);
  // Density ratio ~ p/q = 30 with pair-count correction.
  const real within_pairs = 20.0 * (100.0 * 99 / 2);
  const real cross_pairs = 2000.0 * 1999 / 2 - within_pairs;
  const real ratio = (static_cast<real>(within) / within_pairs) /
                     (static_cast<real>(cross) / cross_pairs);
  EXPECT_NEAR(ratio, 30.0, 6.0);
}

TEST(SbmExpectedEdges, HandComputed) {
  SbmParams p;
  p.block_sizes = {3, 3};
  p.p_in = 0.5;
  p.p_out = 0.1;
  // within pairs: 2 * 3 = 6; cross pairs: 15 - 6 = 9.
  EXPECT_NEAR(sbm_expected_edges(p), 6 * 0.5 + 9 * 0.1, 1e-12);
}

}  // namespace
}  // namespace fastsc::data
