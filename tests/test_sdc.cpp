// Tests for the silent-data-corruption defense layer (DESIGN.md §14):
// an nth=1 bitflip sweep over every addressable corruption site the
// pipeline touches must be detected (sdc.detected advances) and recovered
// to the fault-free labels; checkpoint blobs and cached results are
// CRC32C-framed and rejected/evicted on a flip; and — the false-positive
// guard — clean runs report zero detections at every precision rung and
// device count, so the checksums' tolerances hold with margin.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/precision.h"
#include "core/spectral.h"
#include "data/sbm.h"
#include "device/device.h"
#include "fault/fault.h"
#include "lanczos/irlm.h"
#include "metrics/external.h"
#include "obs/metrics.h"
#include "service/result_cache.h"

namespace fastsc {
namespace {

/// Every test leaves the process-wide injector disarmed; counters are
/// process-cumulative, so assertions compare deltas.
class SdcTest : public ::testing::Test {
 protected:
  void TearDown() override {
    fault::injector().disarm();
    fault::injector().set_recording(false);
  }

  static std::uint64_t detected() {
    return obs::metrics().counter("sdc.detected").value();
  }
  static std::uint64_t counter(const char* name) {
    return obs::metrics().counter(name).value();
  }
};

core::SpectralConfig sdc_config() {
  core::SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.backend = core::Backend::kDevice;
  cfg.seed = 42;
  // Synchronous staged wave: every bitflip site (CSR values, staged device
  // buffer, returned basis column) occurs, and the H2D transfer CRC is live.
  cfg.async_pipeline = false;
  return cfg;
}

data::SbmGraph sdc_graph() {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(600, 3);
  p.p_in = 0.3;
  p.p_out = 0.01;
  p.seed = 17;
  return data::make_sbm(p);
}

// ---------------------------------------------------------------------------
// Tentpole sweep: discover every bitflip site the pipeline exercises
// (recording mode counts occurrences without firing), then flip a bit at
// each one's first occurrence and require detection + exact recovery.
// ---------------------------------------------------------------------------

TEST_F(SdcTest, BitflipSweepDetectsAndRecoversEverySite) {
  const data::SbmGraph g = sdc_graph();
  const core::SpectralConfig cfg = sdc_config();

  fault::injector().set_recording(true);
  const core::SpectralResult clean = core::spectral_cluster_graph(g.w, cfg);
  std::vector<std::string> sites;
  for (const auto& [site, stats] : fault::injector().sites_seen()) {
    if (site.rfind("bitflip.", 0) == 0) sites.push_back(site);
  }
  fault::injector().set_recording(false);
  ASSERT_EQ(clean.labels.size(), 600u);

  // The live-payload site family must actually be reachable in this
  // pipeline shape — an empty sweep would vacuously pass.
  for (const char* must : {"bitflip.csr.values", "bitflip.device.buffer",
                           "bitflip.basis.column"}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), must), sites.end())
        << "site " << must << " never occurred; the sweep lost coverage";
  }

  for (const std::string& site : sites) {
    SCOPED_TRACE(site);
    const std::uint64_t before = detected();
    core::SpectralConfig faulted = cfg;
    faulted.faults = fault::FaultPlan::parse("site=" + site + ",nth=1");
    const core::SpectralResult r = core::spectral_cluster_graph(g.w, faulted);
    // Detected somewhere (ABFT checksum, sentinel, or CRC frame)...
    EXPECT_GE(detected(), before + 1) << "flip at " << site << " was silent";
    // ...and recovered: the recompute / re-solve ladder lands on the same
    // partition as the fault-free run.
    ASSERT_EQ(r.labels.size(), clean.labels.size());
    EXPECT_DOUBLE_EQ(metrics::adjusted_rand_index(r.labels, clean.labels),
                     1.0);
  }
}

TEST_F(SdcTest, BasisColumnFlipIsRecomputedInPlace) {
  const data::SbmGraph g = sdc_graph();
  core::SpectralConfig cfg = sdc_config();
  cfg.faults = fault::FaultPlan::parse("site=bitflip.basis.column,nth=1");
  const std::uint64_t recomputed_before = counter("sdc.recomputed");
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
  // A one-shot in-flight flip dies at the cheap rung of the ladder: the
  // wave is recomputed in place, no degradation event is taken.
  EXPECT_GE(counter("sdc.recomputed"), recomputed_before + 1);
  EXPECT_FALSE(r.degradation.degraded);
  EXPECT_GE(r.integrity.detected, 1u);
  EXPECT_GE(r.integrity.recomputed, 1u);
}

TEST_F(SdcTest, PersistentCsrCorruptionEscalatesToResolve) {
  const data::SbmGraph g = sdc_graph();
  const core::SpectralResult clean =
      core::spectral_cluster_graph(g.w, sdc_config());
  core::SpectralConfig cfg = sdc_config();
  cfg.faults = fault::FaultPlan::parse("site=bitflip.csr.values,nth=1");
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
  // The stored matrix itself is corrupt, so the in-place recompute hits the
  // same flipped value and the solve escalates to a ladder rung that
  // rebuilds the operator from the pristine COO.
  EXPECT_TRUE(r.degradation.degraded);
  EXPECT_EQ(r.labels, clean.labels);
}

TEST_F(SdcTest, DisablingSdcSkipsTheChecks) {
  const data::SbmGraph g = sdc_graph();
  core::SpectralConfig cfg = sdc_config();
  cfg.sdc.enabled = false;
  const std::uint64_t checks_before = counter("sdc.checks");
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
  EXPECT_EQ(counter("sdc.checks"), checks_before);
  EXPECT_EQ(r.integrity.checks, 0u);
  EXPECT_EQ(r.labels.size(), 600u);
}

// ---------------------------------------------------------------------------
// Integrity at rest: checkpoint CRC frame and result-cache seal.
// ---------------------------------------------------------------------------

lanczos::LanczosCheckpoint make_checkpoint() {
  lanczos::LanczosCheckpoint cp;
  cp.n = 48;
  cp.nev = 4;
  cp.ncv = 12;
  cp.which = 1;
  cp.j = 6;
  cp.nkept = 6;
  cp.beta_last = 0.25;
  cp.v.resize(static_cast<usize>(cp.ncv + 1) * static_cast<usize>(cp.n));
  for (usize i = 0; i < cp.v.size(); ++i) {
    cp.v[i] = 1.0 / static_cast<real>(i + 1);
  }
  cp.t.assign(static_cast<usize>(cp.ncv) * static_cast<usize>(cp.ncv), 0.5);
  cp.restart_count = 3;
  cp.matvec_count = 41;
  return cp;
}

TEST_F(SdcTest, CheckpointBlobRoundTripsUnderCrcFrame) {
  const lanczos::LanczosCheckpoint cp = make_checkpoint();
  std::stringstream ss;
  cp.save(ss);
  const lanczos::LanczosCheckpoint back = lanczos::LanczosCheckpoint::load(ss);
  EXPECT_EQ(back.n, cp.n);
  EXPECT_EQ(back.v, cp.v);
  EXPECT_EQ(back.t, cp.t);
  EXPECT_EQ(back.payload_crc(), cp.payload_crc());
}

TEST_F(SdcTest, CheckpointBlobFlipIsRejectedAtLoad) {
  const lanczos::LanczosCheckpoint cp = make_checkpoint();
  std::stringstream ss;
  cp.save(ss);
  fault::ArmScope scope(
      fault::FaultPlan::parse("site=bitflip.checkpoint.blob,nth=1"));
  const std::uint64_t before = detected();
  EXPECT_THROW((void)lanczos::LanczosCheckpoint::load(ss),
               device::DataIntegrityError);
  EXPECT_EQ(detected(), before + 1);
  EXPECT_GE(counter("sdc.detected.checkpoint.blob"), 1u);
}

service::CacheEntry make_entry(std::uint64_t graph_fp,
                               bool with_checkpoint) {
  service::CacheEntry e;
  e.labels = {0, 1, 2, 0, 1, 2};
  e.eigenvalues = {0.1, 0.2, 0.3};
  e.n = 6;
  e.k = 3;
  e.graph_fp = graph_fp;
  e.config_fp = 222;
  if (with_checkpoint) {
    e.checkpoint = std::make_shared<const lanczos::LanczosCheckpoint>(
        make_checkpoint());
    e.n = e.checkpoint->n;
  }
  return e;
}

TEST_F(SdcTest, CacheLookupVerifiesSealAndEvictsOnFlip) {
  service::ResultCache cache(1 << 20);
  cache.insert(make_entry(111, /*with_checkpoint=*/false));
  ASSERT_TRUE(cache.lookup({111, 222}).has_value());  // clean: seal holds

  fault::ArmScope scope(
      fault::FaultPlan::parse("site=bitflip.cache.entry,nth=1"));
  const std::uint64_t before = detected();
  const std::uint64_t evicted_before = counter("cache.integrity_evicted");
  // Corrupted lookup: the entry is dropped and the caller sees a miss, so
  // the job falls through to a cold solve.
  EXPECT_FALSE(cache.lookup({111, 222}).has_value());
  EXPECT_EQ(detected(), before + 1);
  EXPECT_EQ(counter("cache.integrity_evicted"), evicted_before + 1);
  EXPECT_GE(counter("sdc.detected.cache.entry"), 1u);
  EXPECT_EQ(cache.entries(), 0u);
  // The rule is exhausted; the entry is simply gone now.
  EXPECT_FALSE(cache.lookup({111, 222}).has_value());
}

TEST_F(SdcTest, WarmDonorLookupSkipsAndEvictsCorruptEntry) {
  service::ResultCache cache(1 << 20);
  cache.insert(make_entry(111, /*with_checkpoint=*/true));
  ASSERT_NE(cache.lookup_warm(222, 48, 111), nullptr);  // clean donor

  fault::ArmScope scope(
      fault::FaultPlan::parse("site=bitflip.cache.entry,nth=1"));
  const std::uint64_t evicted_before = counter("cache.integrity_evicted");
  // The hinted donor fails its seal: skipped, evicted, and with no other
  // candidate the warm lookup reports none — the solve cold-starts.
  EXPECT_EQ(cache.lookup_warm(222, 48, 111), nullptr);
  EXPECT_EQ(counter("cache.integrity_evicted"), evicted_before + 1);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST_F(SdcTest, WarmDonorFallsThroughToIntactCandidate) {
  service::ResultCache cache(1 << 20);
  cache.insert(make_entry(111, /*with_checkpoint=*/true));
  cache.insert(make_entry(333, /*with_checkpoint=*/true));
  // nth=1,count=1: only the first verification (the corrupt hinted donor)
  // is hit; the LRU-scan fallback's candidate verifies clean.
  fault::ArmScope scope(
      fault::FaultPlan::parse("site=bitflip.cache.entry,nth=1"));
  EXPECT_NE(cache.lookup_warm(222, 48, 111), nullptr);
  EXPECT_EQ(cache.entries(), 1u);
}

// ---------------------------------------------------------------------------
// False-positive guard: with no faults armed, no detector may trip at any
// precision rung or device count — the tolerances must absorb legitimate
// quantization and accumulation roundoff.
// ---------------------------------------------------------------------------

TEST_F(SdcTest, CleanRunsReportZeroDetectionsAcrossRungsAndDevices) {
  const data::SbmGraph g = sdc_graph();
  for (const Precision rung :
       {Precision::kFp64, Precision::kFp32, Precision::kBf16}) {
    for (const index_t nd : {1, 2, 4}) {
      SCOPED_TRACE("rung " + std::string(precision_name(rung)) + " devices " +
                   std::to_string(nd));
      core::SpectralConfig cfg = sdc_config();
      cfg.precision.base = rung;
      cfg.num_devices = nd;
      const std::uint64_t before = detected();
      const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
      EXPECT_EQ(detected(), before) << "false positive on a clean run";
      EXPECT_EQ(r.integrity.detected, 0u);
      EXPECT_EQ(r.labels.size(), 600u);
    }
  }
}

TEST_F(SdcTest, CleanPipelinedRunReportsZeroDetections) {
  const data::SbmGraph g = sdc_graph();
  core::SpectralConfig cfg = sdc_config();
  cfg.async_pipeline = true;  // overlapped path: ABFT still verifies waves
  const std::uint64_t before = detected();
  const core::SpectralResult r = core::spectral_cluster_graph(g.w, cfg);
  EXPECT_EQ(detected(), before);
  EXPECT_GE(r.integrity.checks, 1u);
  EXPECT_EQ(r.integrity.detected, 0u);
}

}  // namespace
}  // namespace fastsc
