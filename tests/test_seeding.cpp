#include "kmeans/seeding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <span>
#include <vector>

#include "device/device.h"

namespace fastsc::kmeans {
namespace {

TEST(RandomSeeds, WithoutReplacement) {
  Rng rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    const auto seeds = random_seeds_host(10, 10, rng);
    std::set<index_t> unique(seeds.begin(), seeds.end());
    EXPECT_EQ(unique.size(), 10u);
  }
}

TEST(RandomSeeds, InRange) {
  Rng rng(7);
  const auto seeds = random_seeds_host(100, 5, rng);
  ASSERT_EQ(seeds.size(), 5u);
  for (index_t s : seeds) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 100);
  }
}

TEST(RandomSeeds, RejectsBadK) {
  Rng rng(1);
  EXPECT_THROW((void)random_seeds_host(5, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)random_seeds_host(5, 6, rng), std::invalid_argument);
}

std::vector<real> two_far_groups() {
  // Points 0-3 near origin, points 4-7 near (100).
  std::vector<real> x;
  for (int i = 0; i < 4; ++i) x.push_back(0.1 * i);
  for (int i = 0; i < 4; ++i) x.push_back(100 + 0.1 * i);
  return x;
}

TEST(KmeansppHost, SpreadsSeedsAcrossFarGroups) {
  const auto x = two_far_groups();
  // With k=2, k-means++ should essentially always pick one seed per group.
  int split = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto seeds = kmeanspp_seeds_host(x.data(), 8, 1, 2, rng);
    const bool a = seeds[0] < 4;
    const bool b = seeds[1] < 4;
    if (a != b) ++split;
  }
  EXPECT_GE(split, 48);  // D^2 weighting: cross-group pick ~certain
}

TEST(KmeansppHost, HandlesDuplicatePoints) {
  std::vector<real> x(20, 3.14);  // all identical
  Rng rng(3);
  const auto seeds = kmeanspp_seeds_host(x.data(), 20, 1, 4, rng);
  EXPECT_EQ(seeds.size(), 4u);  // falls back to uniform, still returns k
}

TEST(KmeansppHost, FirstSeedUniform) {
  std::vector<real> x{0, 1, 2, 3};
  std::set<index_t> seen;
  for (std::uint64_t s = 0; s < 200; ++s) {
    Rng rng(s);
    seen.insert(kmeanspp_seeds_host(x.data(), 4, 1, 1, rng)[0]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

class KmeansppDevice : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(KmeansppDevice, SpreadsSeedsLikeHost) {
  const auto x = two_far_groups();
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  int split = 0;
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Rng rng(seed);
    const auto seeds = kmeanspp_seeds_device(ctx_, dx.data(), 8, 1, 2, rng);
    if ((seeds[0] < 4) != (seeds[1] < 4)) ++split;
  }
  EXPECT_GE(split, 48);
}

TEST_P(KmeansppDevice, SeedsAreValidIndices) {
  std::vector<real> x(60);
  Rng data_rng(9);
  for (real& v : x) v = data_rng.uniform(-1, 1);
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  Rng rng(17);
  const auto seeds = kmeanspp_seeds_device(ctx_, dx.data(), 20, 3, 7, rng);
  ASSERT_EQ(seeds.size(), 7u);
  for (index_t s : seeds) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 20);
  }
}

TEST_P(KmeansppDevice, MatchesHostDistributionOnBimodalData) {
  // Statistical agreement: the probability mass of picking the far group
  // for the second seed should match between host and device samplers.
  const auto x = two_far_groups();
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  int host_far = 0, dev_far = 0;
  for (std::uint64_t seed = 100; seed < 300; ++seed) {
    Rng hr(seed), dr(seed);
    const auto hs = kmeanspp_seeds_host(x.data(), 8, 1, 2, hr);
    const auto ds = kmeanspp_seeds_device(ctx_, dx.data(), 8, 1, 2, dr);
    if ((hs[0] < 4) != (hs[1] < 4)) ++host_far;
    if ((ds[0] < 4) != (ds[1] < 4)) ++dev_far;
  }
  EXPECT_NEAR(host_far, dev_far, 10);
}

TEST_P(KmeansppDevice, SingleCandidateParamReproducesPlainPath) {
  std::vector<real> x(80);
  Rng data_rng(11);
  for (real& v : x) v = data_rng.uniform(-1, 1);
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  Rng r1(23), r2(23);
  const auto plain = kmeanspp_seeds_device(ctx_, dx.data(), 40, 2, 6, r1);
  const auto one = kmeanspp_seeds_device(ctx_, dx.data(), 40, 2, 6, r2, 1);
  EXPECT_EQ(plain, one);  // candidates == 1 must be draw-for-draw identical
}

TEST_P(KmeansppDevice, GreedyCandidatesNeverIncreasePotential) {
  // Greedy k-means++ picks the potential-minimizing candidate each step, so
  // for the same data its final potential should (statistically) dominate
  // the single-draw sampler.  Compare summed potentials over many seeds.
  std::vector<real> x(120);
  Rng data_rng(13);
  for (real& v : x) v = data_rng.uniform(-10, 10);
  const index_t n = 60, d = 2, k = 5;
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));

  auto potential = [&](const std::vector<index_t>& seeds) {
    real total = 0;
    for (index_t j = 0; j < n; ++j) {
      real best = std::numeric_limits<real>::infinity();
      for (index_t s : seeds) {
        real acc = 0;
        for (index_t l = 0; l < d; ++l) {
          const real delta = x[static_cast<usize>(j * d + l)] -
                             x[static_cast<usize>(s * d + l)];
          acc += delta * delta;
        }
        best = std::min(best, acc);
      }
      total += best;
    }
    return total;
  };

  real plain_sum = 0, greedy_sum = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng r1(seed), r2(seed);
    plain_sum += potential(kmeanspp_seeds_device(ctx_, dx.data(), n, d, k, r1));
    greedy_sum +=
        potential(kmeanspp_seeds_device(ctx_, dx.data(), n, d, k, r2, 4));
  }
  EXPECT_LE(greedy_sum, plain_sum);
}

TEST_P(KmeansppDevice, GreedyHandlesDuplicatePointsAndIsDeterministic) {
  std::vector<real> x(30, 2.71);  // all identical: total potential hits 0
  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  Rng r1(5), r2(5);
  const auto a = kmeanspp_seeds_device(ctx_, dx.data(), 30, 1, 4, r1, 3);
  const auto b = kmeanspp_seeds_device(ctx_, dx.data(), 30, 1, 4, r2, 3);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a, b);  // deterministic for a fixed seed
  for (index_t s : a) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 30);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, KmeansppDevice,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace fastsc::kmeans
