#include "fastsc/service.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/fingerprint.h"
#include "core/spectral.h"
#include "data/social.h"
#include "metrics/external.h"
#include "service/trace_replay.h"

namespace fastsc {
namespace {

sparse::Coo make_fb(index_t n, index_t k, std::uint64_t seed) {
  return data::make_social_graph(data::fb_like_params(n, k, seed)).w;
}

core::SpectralConfig device_config(index_t k, std::uint64_t seed = 42) {
  core::SpectralConfig cfg;
  cfg.backend = core::Backend::kDevice;
  cfg.num_clusters = k;
  cfg.seed = seed;
  // A lean Krylov space: the cold solve pays several thick restarts, which
  // is what the warm-start acceptance below measures against.
  cfg.ncv = 16;
  return cfg;
}

Job make_job(sparse::Coo graph, index_t k, std::uint64_t seed = 42) {
  Job job;
  job.graph = std::move(graph);
  job.config = device_config(k, seed);
  return job;
}

TEST(Service, CompletesAndCachesIdenticalResubmit) {
  ServiceConfig scfg;
  scfg.workers = 2;
  Service svc(scfg);
  const sparse::Coo graph = make_fb(300, 4, 42);

  const auto first = svc.submit(make_job(graph, 4));
  ASSERT_EQ(first.status, JobStatus::kQueued);
  const JobResult cold = svc.wait(first.id);
  ASSERT_EQ(cold.status, JobStatus::kCompleted);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_EQ(cold.spectral.labels.size(), 300u);

  const auto second = svc.submit(make_job(graph, 4));
  const JobResult hit = svc.wait(second.id);
  ASSERT_EQ(hit.status, JobStatus::kCompleted);
  EXPECT_TRUE(hit.cache_hit);
  // Identical labels on hit vs recompute.
  EXPECT_EQ(hit.spectral.labels, cold.spectral.labels);
  EXPECT_EQ(hit.graph_fingerprint, cold.graph_fingerprint);
  EXPECT_EQ(hit.config_fingerprint, cold.config_fingerprint);

  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_GE(stats.cache_entries, 1u);
}

TEST(Service, RejectsJobOverPerJobQuota) {
  ServiceConfig scfg;
  scfg.job_arena_quota_bytes = 1024;  // far below any real graph
  Service svc(scfg);
  const auto sub = svc.submit(make_job(make_fb(300, 4, 1), 4));
  EXPECT_EQ(sub.status, JobStatus::kOverloaded);
  const JobResult r = svc.wait(sub.id);
  EXPECT_EQ(r.status, JobStatus::kOverloaded);
  EXPECT_NE(r.error.find("quota"), std::string::npos);
  EXPECT_EQ(svc.stats().rejected, 1u);
}

TEST(Service, RejectsJobOverArenaBudget) {
  ServiceConfig scfg;
  scfg.job_arena_quota_bytes = 0;  // unlimited per job
  scfg.arena_budget_bytes = 1024;  // aggregate budget below one job
  Service svc(scfg);
  const auto sub = svc.submit(make_job(make_fb(300, 4, 1), 4));
  EXPECT_EQ(sub.status, JobStatus::kOverloaded);
  const JobResult r = svc.wait(sub.id);
  EXPECT_NE(r.error.find("arena budget"), std::string::npos);
}

TEST(Service, RejectsAtQueueDepthLimit) {
  ServiceConfig scfg;
  scfg.max_queue_depth = 0;  // no waiting room at all
  Service svc(scfg);
  const auto sub = svc.submit(make_job(make_fb(300, 4, 1), 4));
  EXPECT_EQ(sub.status, JobStatus::kOverloaded);
  const JobResult r = svc.wait(sub.id);
  EXPECT_NE(r.error.find("queue depth"), std::string::npos);
}

// Regression for the process-wide governor: two concurrent jobs, one with
// a microscopic deadline and one without.  Pre-fix, arming the deadline
// governor was process-global, so job B's solve could be cancelled by job
// A's budget.  With per-job governors, A expires alone and B completes.
TEST(Service, InterleavedDeadlinesArePerJob) {
  ServiceConfig scfg;
  scfg.workers = 2;
  Service svc(scfg);

  Job doomed = make_job(make_fb(3000, 8, 3), 8, 3);
  doomed.deadline_ms = 1;  // expires long before the solve can finish
  // Hard deadline: disable anytime wrap-up so expiry surfaces as a
  // cancellation instead of a partial completed result.
  doomed.config.budget.anytime = false;
  const auto a = svc.submit(std::move(doomed));
  const auto b = svc.submit(make_job(make_fb(300, 4, 42), 4));

  const JobResult rb = svc.wait(b.id);
  EXPECT_EQ(rb.status, JobStatus::kCompleted);
  EXPECT_EQ(rb.spectral.labels.size(), 300u);

  const JobResult ra = svc.wait(a.id);
  EXPECT_EQ(ra.status, JobStatus::kCancelled);
  EXPECT_EQ(svc.stats().cancelled, 1u);
}

TEST(Service, CancelQueuedAndRunningJobs) {
  ServiceConfig scfg;
  scfg.workers = 1;
  Service svc(scfg);
  // A large job occupies the single executor...
  const auto running = svc.submit(make_job(make_fb(3000, 8, 5), 8, 5));
  // ...so this one is still queued and cancels instantly.
  const auto queued = svc.submit(make_job(make_fb(300, 4, 6), 4, 6));
  EXPECT_TRUE(svc.cancel(queued.id));
  const JobResult rq = svc.wait(queued.id);
  EXPECT_EQ(rq.status, JobStatus::kCancelled);
  EXPECT_NE(rq.error.find("queued"), std::string::npos);

  svc.cancel(running.id);
  const JobResult rr = svc.wait(running.id);
  // Either the cancel landed at a poll site or the solve won the race.
  EXPECT_TRUE(rr.status == JobStatus::kCancelled ||
              rr.status == JobStatus::kCompleted);
  EXPECT_FALSE(svc.cancel(queued.id));  // already terminal
  EXPECT_FALSE(svc.cancel(9999));       // unknown id
}

// The tentpole acceptance: a <=1% delta-edge update warm-starts from the
// cached checkpoint, spends at most half the cold solve's matvecs, and
// produces the same partition as solving the updated graph cold.
TEST(Service, WarmStartUsesFewerWavesAndMatchesColdLabels) {
  ServiceConfig scfg;
  scfg.workers = 1;
  Service svc(scfg);
  const sparse::Coo graph = make_fb(1200, 12, 42);

  const auto first = svc.submit(make_job(graph, 12));
  const JobResult cold = svc.wait(first.id);
  ASSERT_EQ(cold.status, JobStatus::kCompleted);
  ASSERT_FALSE(cold.warm_started);
  ASSERT_GT(cold.spectral.eig_stats.matvec_count, 0);

  sparse::Coo updated = graph;
  service::perturb_edges(updated, 0.01, /*seed=*/123);
  Job delta = make_job(updated, 12);
  delta.warm_hint = core::graph_fingerprint(graph);
  const auto second = svc.submit(std::move(delta));
  const JobResult warm = svc.wait(second.id);
  ASSERT_EQ(warm.status, JobStatus::kCompleted);
  EXPECT_FALSE(warm.cache_hit);
  ASSERT_TRUE(warm.warm_started);
  EXPECT_LE(2 * warm.spectral.eig_stats.matvec_count,
            cold.spectral.eig_stats.matvec_count)
      << "warm re-solve must cost at most half the cold waves";

  // Same partition as a cold solve of the updated graph.
  const core::SpectralResult recomputed =
      core::spectral_cluster_graph(updated, device_config(12), nullptr);
  EXPECT_GE(metrics::adjusted_rand_index(warm.spectral.labels,
                                         recomputed.labels),
            real{1.0});
}

TEST(Service, ShutdownDrainCompletesQueuedJobs) {
  ServiceConfig scfg;
  scfg.workers = 1;
  Service svc(scfg);
  std::vector<JobId> ids;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    ids.push_back(svc.submit(make_job(make_fb(200, 3, seed), 3, seed)).id);
  }
  svc.shutdown(/*drain=*/true);
  for (const JobId id : ids) {
    EXPECT_EQ(svc.wait(id).status, JobStatus::kCompleted);
  }
  // Submissions after shutdown are rejected, not queued forever.
  const auto late = svc.submit(make_job(make_fb(200, 3, 9), 3, 9));
  EXPECT_EQ(late.status, JobStatus::kOverloaded);
}

TEST(Service, WaitUnknownIdThrows) {
  Service svc(ServiceConfig{});
  EXPECT_THROW((void)svc.wait(42), std::invalid_argument);
}

}  // namespace
}  // namespace fastsc
