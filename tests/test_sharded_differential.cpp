// Differential tests: the sharded multi-device pipeline against the
// single-device reference.  The determinism contract (DESIGN.md §12) is
// bitwise: sharded SpMV/SpMM reproduce device_csrmv/device_csrmm exactly,
// and the end-to-end pipeline emits byte-identical labels for every value
// of SpectralConfig::num_devices.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/spectral.h"
#include "data/powerlaw.h"
#include "data/sbm.h"
#include "data/social.h"
#include "device/device_group.h"
#include "graph/components.h"
#include "sparse/convert.h"
#include "sparse/shard.h"
#include "sparse/spmv.h"

namespace fastsc {
namespace {

using core::Backend;
using core::SpectralConfig;
using core::SpectralResult;
using device::DeviceGroup;
using device::DeviceGroupConfig;
using sparse::Csr;

DeviceGroup make_group(usize n) {
  DeviceGroupConfig gc;
  gc.num_devices = n;
  return DeviceGroup(gc);
}

std::vector<real> random_vector(usize n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> x(n);
  for (real& v : x) v = rng.uniform() * 2.0 - 1.0;
  return x;
}

/// Reference y = A x through the single-device kernel.
std::vector<real> reference_csrmv(const Csr& a, const std::vector<real>& x) {
  device::DeviceContext ctx(1);
  sparse::DeviceCsr da(ctx, a);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx, static_cast<usize>(a.rows));
  sparse::device_csrmv(ctx, da, dx.data(), dy.data());
  return dy.to_host();
}

void expect_bitwise_equal(const std::vector<real>& got,
                          const std::vector<real>& want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(real)),
            0)
      << what << ": sharded result is not bitwise equal to the reference";
}

class ShardedSpmv : public ::testing::TestWithParam<usize> {};

TEST_P(ShardedSpmv, BitwiseEqualOnPowerlaw) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 700, .avg_degree = 9.0, .seed = 21});
  const Csr a = sparse::coo_to_csr(g.w);
  const std::vector<real> x =
      random_vector(static_cast<usize>(a.cols), 123);
  const std::vector<real> want = reference_csrmv(a, x);

  DeviceGroup group = make_group(GetParam());
  sparse::ShardedCsr sp = sparse::shard_csr(group, a);
  std::vector<real> y(static_cast<usize>(a.rows), -7.0);
  sparse::sharded_csrmv(sp, x.data(), y.data());
  expect_bitwise_equal(y, want, "powerlaw csrmv");

  // A second wave through the same persistent executors must be just as
  // exact (the RCI loop reuses the sharded operator every iteration).
  const std::vector<real> x2 = random_vector(static_cast<usize>(a.cols), 9);
  const std::vector<real> want2 = reference_csrmv(a, x2);
  sparse::sharded_csrmv(sp, x2.data(), y.data());
  expect_bitwise_equal(y, want2, "powerlaw csrmv wave 2");
}

TEST_P(ShardedSpmv, BitwiseEqualWithHubAndEmptyRows) {
  // A hub row referencing every column plus interleaved empty rows: the
  // halo paths and the interior/frontier split both get exercised hard.
  const index_t n = 240;
  Csr a(n, n);
  Rng rng(5);
  for (index_t r = 0; r < n; ++r) {
    a.row_ptr[static_cast<usize>(r) + 1] = a.row_ptr[static_cast<usize>(r)];
    if (r % 3 == 1) continue;  // empty row
    const index_t deg = (r == 100) ? n : 4;
    for (index_t j = 0; j < deg; ++j) {
      const index_t c =
          (r == 100) ? j
                     : static_cast<index_t>(rng.uniform_index(
                           static_cast<std::uint64_t>(n)));
      a.col_idx.push_back(c);
      a.values.push_back(rng.uniform() - 0.5);
      ++a.row_ptr[static_cast<usize>(r) + 1];
    }
  }
  const std::vector<real> x = random_vector(static_cast<usize>(n), 77);
  const std::vector<real> want = reference_csrmv(a, x);

  DeviceGroup group = make_group(GetParam());
  sparse::ShardedCsr sp = sparse::shard_csr(group, a);
  std::vector<real> y(static_cast<usize>(n));
  sparse::sharded_csrmv(sp, x.data(), y.data());
  expect_bitwise_equal(y, want, "hub/empty csrmv");
}

TEST_P(ShardedSpmv, BitwiseEqualWithEmptyShards) {
  // Aligned cuts larger than the matrix leave trailing devices with zero
  // rows; the wave must still complete and stay exact.
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 300, .avg_degree = 6.0, .seed = 31});
  const Csr a = sparse::coo_to_csr(g.w);
  const std::vector<real> x =
      random_vector(static_cast<usize>(a.cols), 55);
  const std::vector<real> want = reference_csrmv(a, x);

  DeviceGroup group = make_group(GetParam());
  sparse::ShardedCsr sp = sparse::shard_csr(group, a, /*align=*/256);
  std::vector<real> y(static_cast<usize>(a.rows));
  sparse::sharded_csrmv(sp, x.data(), y.data());
  expect_bitwise_equal(y, want, "empty-shard csrmv");
}

TEST_P(ShardedSpmv, SpmmBitwiseEqual) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 420, .avg_degree = 7.0, .seed = 13});
  const Csr a = sparse::coo_to_csr(g.w);
  const index_t nvec = 3;
  const std::vector<real> x =
      random_vector(static_cast<usize>(nvec * a.cols), 17);

  device::DeviceContext ctx(1);
  sparse::DeviceCsr da(ctx, a);
  device::DeviceBuffer<real> dx(ctx, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx, static_cast<usize>(nvec * a.rows));
  sparse::device_csrmm(ctx, da, dx.data(), dy.data(), nvec);
  const std::vector<real> want = dy.to_host();

  DeviceGroup group = make_group(GetParam());
  sparse::ShardedCsr sp = sparse::shard_csr(group, a);
  std::vector<real> y(static_cast<usize>(nvec * a.rows));
  sparse::sharded_csrmm(sp, x.data(), y.data(), nvec);
  expect_bitwise_equal(y, want, "csrmm");
}

INSTANTIATE_TEST_SUITE_P(DeviceCounts, ShardedSpmv,
                         ::testing::Values(2u, 4u, 8u));

// ---------------------------------------------------------------------------
// End-to-end: the pipeline's labels are byte-identical for every device
// count, and eigenpairs agree far inside the solver tolerance.

SpectralConfig pipeline_config(index_t k, index_t num_devices) {
  SpectralConfig cfg;
  cfg.num_clusters = k;
  cfg.backend = Backend::kDevice;
  cfg.num_devices = num_devices;
  cfg.seed = 42;
  return cfg;
}

void check_device_count_invariance(const sparse::Coo& w_in, index_t k,
                                   const char* dataset) {
  // The sparse generators leave a few isolated vertices behind; the
  // normalized Laplacian needs every degree positive, so cluster the giant
  // component like the benches do.
  std::vector<index_t> old_of_new;
  const sparse::Coo w = graph::largest_component(w_in, old_of_new);
  const SpectralResult base =
      core::spectral_cluster_graph(w, pipeline_config(k, 1));
  ASSERT_EQ(base.labels.size(), static_cast<usize>(w.rows)) << dataset;
  for (const index_t nd : {2, 4, 8}) {
    const SpectralResult sharded =
        core::spectral_cluster_graph(w, pipeline_config(k, nd));
    SCOPED_TRACE(std::string(dataset) + " num_devices=" +
                 std::to_string(nd));
    // Labels: byte-identical.
    ASSERT_EQ(sharded.labels.size(), base.labels.size());
    EXPECT_EQ(std::memcmp(sharded.labels.data(), base.labels.data(),
                          base.labels.size() * sizeof(index_t)),
              0);
    // Eigenpairs: ISSUE tolerance 1e-8 (in practice they match bitwise).
    ASSERT_EQ(sharded.eigenvalues.size(), base.eigenvalues.size());
    for (usize i = 0; i < base.eigenvalues.size(); ++i) {
      EXPECT_NEAR(sharded.eigenvalues[i], base.eigenvalues[i], 1e-8);
    }
    ASSERT_EQ(sharded.embedding.size(), base.embedding.size());
    for (usize i = 0; i < base.embedding.size(); ++i) {
      EXPECT_NEAR(sharded.embedding[i], base.embedding[i], 1e-8);
    }
    EXPECT_EQ(sharded.eig_converged, base.eig_converged);
    EXPECT_EQ(sharded.kmeans_iterations, base.kmeans_iterations);
    // The sharded run really ran sharded: peer traffic was metered.
    EXPECT_GT(sharded.device_counters.bytes_d2d, 0u);
    EXPECT_GT(sharded.device_counters.modeled_d2d_seconds, 0.0);
  }
  EXPECT_EQ(base.device_counters.bytes_d2d, 0u) << dataset;
}

TEST(ShardedPipeline, LabelsByteIdenticalOnFbLike) {
  const data::SbmGraph g =
      data::make_social_graph(data::fb_like_params(1200, 5, 42));
  check_device_count_invariance(g.w, 5, "fb-like");
}

TEST(ShardedPipeline, LabelsByteIdenticalOnDblpLike) {
  const data::SbmGraph g =
      data::make_social_graph(data::dblp_like_params(1500, 6, 42));
  check_device_count_invariance(g.w, 6, "dblp-like");
}

TEST(ShardedPipeline, LabelsByteIdenticalOnSyn200StyleSbm) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(1024, 4);
  p.p_in = 0.25;
  p.p_out = 0.01;
  p.seed = 11;
  const data::SbmGraph g = data::make_sbm(p);
  check_device_count_invariance(g.w, 4, "sbm");
}

TEST(ShardedPipeline, LabelsByteIdenticalOnPowerlaw) {
  const data::PowerlawGraph g =
      data::make_powerlaw({.n = 1100, .avg_degree = 8.0, .seed = 7});
  check_device_count_invariance(g.w, 4, "powerlaw");
}

TEST(ShardedPipeline, LabelsInvariantUnderIterationCap) {
  // Stopping Lloyd early must not break the contract: the sweep protocol is
  // identical per iteration, so a capped run agrees at every device count.
  const data::SbmGraph g =
      data::make_social_graph(data::fb_like_params(600, 3, 1));
  SpectralConfig cfg = pipeline_config(3, 4);
  cfg.kmeans_max_iters = 2;  // force early stop; labels must still agree
  const SpectralResult a = core::spectral_cluster_graph(g.w, cfg);
  cfg.num_devices = 1;
  const SpectralResult b = core::spectral_cluster_graph(g.w, cfg);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace fastsc
