#include "solvers/shift_invert.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>

#include "data/sbm.h"
#include "device/device.h"
#include "graph/laplacian.h"
#include "lanczos/dense_eig.h"
#include "sparse/convert.h"
#include "sparse/spmv.h"

namespace fastsc::solvers {
namespace {

TEST(ShiftInvert, SmallestEigenvaluesOfDiagonal) {
  const index_t n = 60;
  ShiftInvertConfig cfg;
  cfg.lanczos.n = n;
  cfg.lanczos.nev = 3;
  cfg.sigma = -0.5;
  const auto result = solve_smallest_shift_invert(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i + 1) * x[i];
      },
      cfg);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-7);
  EXPECT_NEAR(result.eigenvalues[1], 2.0, 1e-7);
  EXPECT_NEAR(result.eigenvalues[2], 3.0, 1e-7);
}

TEST(ShiftInvert, LaplacianSmallestIncludesZero) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(120, 3);
  p.p_in = 0.5;
  p.p_out = 0.02;
  const data::SbmGraph g = data::make_sbm(p);
  const sparse::Csr l = graph::unnormalized_laplacian(g.w);

  ShiftInvertConfig cfg;
  cfg.lanczos.n = l.rows;
  cfg.lanczos.nev = 4;
  cfg.lanczos.tol = 1e-9;
  cfg.sigma = -0.05;  // L is PSD; L + 0.05 I is SPD
  ShiftInvertStats stats;
  const auto result = solve_smallest_shift_invert(
      [&](const real* x, real* y) { sparse::csr_mv(l, x, y); }, cfg, &stats);
  ASSERT_TRUE(result.converged);
  // The connected Laplacian has exactly one (near-)zero eigenvalue; the next
  // ones are positive Fiedler-type values.
  EXPECT_NEAR(result.eigenvalues[0], 0.0, 1e-6);
  EXPECT_GT(result.eigenvalues[1], 1e-3);
  EXPECT_GT(stats.outer_matvecs, 0);
  EXPECT_GT(stats.total_cg_iterations, 0);
  EXPECT_TRUE(stats.all_solves_converged);
}

TEST(ShiftInvert, EigenvectorsSatisfyOriginalProblem) {
  const index_t n = 50;
  // Tridiagonal chain: d=2, e=-1 (path Laplacian-like, PSD + 2I shift-free).
  auto matvec = [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      y[i] = 2.0 * x[i];
      if (i > 0) y[i] -= x[i - 1];
      if (i + 1 < n) y[i] -= x[i + 1];
    }
  };
  ShiftInvertConfig cfg;
  cfg.lanczos.n = n;
  cfg.lanczos.nev = 3;
  cfg.sigma = -0.1;
  const auto result = solve_smallest_shift_invert(matvec, cfg);
  ASSERT_TRUE(result.converged);
  std::vector<real> av(static_cast<usize>(n));
  for (index_t k = 0; k < 3; ++k) {
    const real* v = result.eigenvectors.data() + k * n;
    matvec(v, av.data());
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[static_cast<usize>(i)],
                  result.eigenvalues[static_cast<usize>(k)] * v[i], 1e-6);
    }
  }
  // Known spectrum: 2 - 2 cos(k pi / (n+1)).
  for (index_t k = 1; k <= 3; ++k) {
    const real expect = 2.0 - 2.0 * std::cos(static_cast<real>(k) * M_PI /
                                             static_cast<real>(n + 1));
    EXPECT_NEAR(result.eigenvalues[static_cast<usize>(k - 1)], expect, 1e-7);
  }
}

TEST(ShiftInvert, JacobiPreconditionerPathWorks) {
  const index_t n = 40;
  std::vector<real> inv_diag(static_cast<usize>(n));
  for (index_t i = 0; i < n; ++i) {
    inv_diag[static_cast<usize>(i)] =
        1.0 / (static_cast<real>(i + 1) + 0.5);
  }
  ShiftInvertConfig cfg;
  cfg.lanczos.n = n;
  cfg.lanczos.nev = 2;
  cfg.sigma = -0.5;
  cfg.inv_diag = inv_diag.data();
  const auto result = solve_smallest_shift_invert(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i + 1) * x[i];
      },
      cfg);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-7);
}

TEST(ShiftInvertBlock, MatchesScalarVariantOnDiagonal) {
  const index_t n = 60;
  ShiftInvertConfig cfg;
  cfg.lanczos.n = n;
  cfg.lanczos.nev = 3;
  cfg.sigma = -0.5;
  ShiftInvertStats stats;
  const auto result = solve_smallest_shift_invert_block(
      [&](const real* x, real* y, index_t nvec) {
        for (index_t v = 0; v < nvec; ++v) {
          for (index_t i = 0; i < n; ++i) {
            y[v * n + i] = static_cast<real>(i + 1) * x[v * n + i];
          }
        }
      },
      cfg, &stats);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-6);
  EXPECT_NEAR(result.eigenvalues[1], 2.0, 1e-6);
  EXPECT_NEAR(result.eigenvalues[2], 3.0, 1e-6);
  EXPECT_GT(stats.outer_matvecs, 0);
  EXPECT_GT(stats.total_cg_iterations, 0);
  EXPECT_TRUE(stats.all_solves_converged);
}

TEST(ShiftInvertBlock, LaplacianSmallestViaBatchedSpmm) {
  // End-to-end over the real batched kernel: the block operator is
  // device_csrmm on the graph Laplacian, so every CG iteration of every
  // restart reads the matrix exactly once for the whole basis.
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(90, 3);
  p.p_in = 0.5;
  p.p_out = 0.02;
  const data::SbmGraph g = data::make_sbm(p);
  const sparse::Csr l = graph::unnormalized_laplacian(g.w);
  device::DeviceContext ctx(4);
  sparse::DeviceCsr dev(ctx, l);
  const index_t n = l.rows;

  ShiftInvertConfig cfg;
  cfg.lanczos.n = n;
  cfg.lanczos.nev = 3;
  cfg.lanczos.tol = 1e-8;
  cfg.sigma = -0.05;
  ShiftInvertStats stats;
  const auto result = solve_smallest_shift_invert_block(
      [&](const real* x, real* y, index_t nvec) {
        device::DeviceBuffer<real> dx(
            ctx, std::span<const real>(
                     x, static_cast<usize>(nvec) * static_cast<usize>(n)));
        device::DeviceBuffer<real> dy(
            ctx, static_cast<usize>(nvec) * static_cast<usize>(n));
        sparse::device_csrmm(ctx, dev, dx.data(), dy.data(), nvec);
        const auto host = dy.to_host();
        std::copy(host.begin(), host.end(), y);
      },
      cfg, &stats);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 0.0, 1e-6);
  EXPECT_GT(result.eigenvalues[1], 1e-3);
  EXPECT_TRUE(stats.all_solves_converged);

  // Same answers as the scalar shift-invert path.
  const auto scalar = solve_smallest_shift_invert(
      [&](const real* x, real* y) { sparse::csr_mv(l, x, y); }, cfg);
  ASSERT_TRUE(scalar.converged);
  for (usize i = 0; i < 3; ++i) {
    EXPECT_NEAR(result.eigenvalues[i], scalar.eigenvalues[i], 1e-6) << i;
  }
}

}  // namespace
}  // namespace fastsc::solvers
