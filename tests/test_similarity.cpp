#include "graph/similarity.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fastsc::graph {
namespace {

TEST(Similarity, ParseAndName) {
  EXPECT_EQ(parse_measure("cosine"), SimilarityMeasure::kCosine);
  EXPECT_EQ(parse_measure("crosscorr"), SimilarityMeasure::kCrossCorrelation);
  EXPECT_EQ(parse_measure("expdecay"), SimilarityMeasure::kExpDecay);
  EXPECT_THROW((void)parse_measure("bogus"), std::invalid_argument);
  EXPECT_EQ(measure_name(SimilarityMeasure::kCosine), "cosine");
}

TEST(Similarity, CosineIdenticalVectorsIsOne) {
  const real x[] = {1, 2, 3};
  SimilarityParams p{SimilarityMeasure::kCosine};
  EXPECT_NEAR(similarity_direct(x, x, 3, p), 1.0, 1e-12);
}

TEST(Similarity, CosineOrthogonalIsZero) {
  const real a[] = {1, 0};
  const real b[] = {0, 1};
  SimilarityParams p{SimilarityMeasure::kCosine};
  EXPECT_NEAR(similarity_direct(a, b, 2, p), 0.0, 1e-12);
}

TEST(Similarity, CosineScaleInvariant) {
  const real a[] = {1, 2, -1};
  const real b[] = {3, 6, -3};
  SimilarityParams p{SimilarityMeasure::kCosine};
  EXPECT_NEAR(similarity_direct(a, b, 3, p), 1.0, 1e-12);
}

TEST(Similarity, CosineZeroVectorIsZero) {
  const real a[] = {0, 0};
  const real b[] = {1, 1};
  SimilarityParams p{SimilarityMeasure::kCosine};
  EXPECT_EQ(similarity_direct(a, b, 2, p), 0.0);
}

TEST(Similarity, CrossCorrelationIsShiftInvariant) {
  const real a[] = {1, 2, 3, 4};
  real b[] = {101, 102, 103, 104};  // a + 100
  SimilarityParams p{SimilarityMeasure::kCrossCorrelation};
  EXPECT_NEAR(similarity_direct(a, b, 4, p), 1.0, 1e-12);
}

TEST(Similarity, CrossCorrelationAnticorrelated) {
  const real a[] = {1, 2, 3};
  const real b[] = {3, 2, 1};
  SimilarityParams p{SimilarityMeasure::kCrossCorrelation};
  EXPECT_NEAR(similarity_direct(a, b, 3, p), -1.0, 1e-12);
}

TEST(Similarity, CrossCorrelationConstantVectorIsZero) {
  const real a[] = {5, 5, 5};
  const real b[] = {1, 2, 3};
  SimilarityParams p{SimilarityMeasure::kCrossCorrelation};
  EXPECT_EQ(similarity_direct(a, b, 3, p), 0.0);
}

TEST(Similarity, ExpDecayIdenticalIsOne) {
  const real a[] = {1, 2};
  SimilarityParams p{SimilarityMeasure::kExpDecay, 2.0};
  EXPECT_NEAR(similarity_direct(a, a, 2, p), 1.0, 1e-12);
}

TEST(Similarity, ExpDecayMatchesFormula) {
  const real a[] = {0, 0};
  const real b[] = {3, 4};  // dist^2 = 25
  SimilarityParams p{SimilarityMeasure::kExpDecay, 2.5};
  EXPECT_NEAR(similarity_direct(a, b, 2, p), std::exp(-25.0 / (2 * 6.25)),
              1e-12);
}

TEST(Similarity, ExpDecayDecreasesWithDistance) {
  const real a[] = {0};
  const real b[] = {1};
  const real c[] = {2};
  SimilarityParams p{SimilarityMeasure::kExpDecay, 1.0};
  EXPECT_GT(similarity_direct(a, b, 1, p), similarity_direct(a, c, 1, p));
}

class PrecomputedVsDirect : public ::testing::TestWithParam<SimilarityMeasure> {};

TEST_P(PrecomputedVsDirect, AgreeOnRandomVectors) {
  SimilarityParams p;
  p.measure = GetParam();
  p.sigma = 1.7;
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
  const index_t d = 25;
  std::vector<real> xi(static_cast<usize>(d)), xj(static_cast<usize>(d));
  for (int rep = 0; rep < 20; ++rep) {
    for (real& v : xi) v = rng.uniform(-2, 2);
    for (real& v : xj) v = rng.uniform(-2, 2);
    const real direct = similarity_direct(xi.data(), xj.data(), d, p);

    // Precompute exactly what the device path precomputes.
    std::vector<real> ci = xi, cj = xj;
    if (p.measure == SimilarityMeasure::kCrossCorrelation) {
      real mi = 0, mj = 0;
      for (index_t l = 0; l < d; ++l) {
        mi += ci[static_cast<usize>(l)];
        mj += cj[static_cast<usize>(l)];
      }
      mi /= d;
      mj /= d;
      for (index_t l = 0; l < d; ++l) {
        ci[static_cast<usize>(l)] -= mi;
        cj[static_cast<usize>(l)] -= mj;
      }
    }
    real ni = 0, nj = 0;
    for (index_t l = 0; l < d; ++l) {
      ni += ci[static_cast<usize>(l)] * ci[static_cast<usize>(l)];
      nj += cj[static_cast<usize>(l)] * cj[static_cast<usize>(l)];
    }
    ni = std::sqrt(ni);
    nj = std::sqrt(nj);
    const real pre =
        similarity_precomputed(ci.data(), cj.data(), ni, nj, d, p);
    EXPECT_NEAR(pre, direct, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Measures, PrecomputedVsDirect,
                         ::testing::Values(SimilarityMeasure::kCosine,
                                           SimilarityMeasure::kCrossCorrelation,
                                           SimilarityMeasure::kExpDecay));

TEST(Similarity, BoundedByOneInMagnitude) {
  Rng rng(7);
  SimilarityParams cc{SimilarityMeasure::kCrossCorrelation};
  SimilarityParams cos{SimilarityMeasure::kCosine};
  std::vector<real> a(10), b(10);
  for (int rep = 0; rep < 50; ++rep) {
    for (real& v : a) v = rng.uniform(-5, 5);
    for (real& v : b) v = rng.uniform(-5, 5);
    EXPECT_LE(std::fabs(similarity_direct(a.data(), b.data(), 10, cc)),
              1.0 + 1e-12);
    EXPECT_LE(std::fabs(similarity_direct(a.data(), b.data(), 10, cos)),
              1.0 + 1e-12);
  }
}

}  // namespace
}  // namespace fastsc::graph
