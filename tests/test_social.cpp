#include "data/social.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sparse/convert.h"
#include "sparse/ops.h"

namespace fastsc::data {
namespace {

TEST(SocialParams, FbDefaultsMatchPaperTable2) {
  const SocialParams p = fb_like_params();
  EXPECT_EQ(p.n, 4039);
  EXPECT_EQ(p.communities, 10);
  EXPECT_NEAR(p.mean_degree, 2.0 * 88234 / 4039, 0.2);
}

TEST(SocialParams, DblpDefaultsMatchPaperTable2) {
  const SocialParams p = dblp_like_params(317080, 500);
  EXPECT_NEAR(p.mean_degree, 2.0 * 1049866 / 317080, 0.2);
}

TEST(MakeSocialGraph, EdgeBudgetApproximatelyMet) {
  SocialParams p = fb_like_params(2000, 8, 3);
  const SbmGraph g = make_social_graph(p);
  const real target = p.mean_degree * static_cast<real>(p.n) / 2;
  const real actual = static_cast<real>(g.w.nnz()) / 2;
  EXPECT_NEAR(actual, target, 0.15 * target);
}

TEST(MakeSocialGraph, CommunityCountRespected) {
  SocialParams p = fb_like_params(1000, 12, 5);
  const SbmGraph g = make_social_graph(p);
  index_t max_label = 0;
  for (index_t l : g.labels) max_label = std::max(max_label, l);
  EXPECT_EQ(max_label, 11);
  EXPECT_EQ(g.labels.size(), 1000u);
}

TEST(MakeSocialGraph, GraphIsValidAndSymmetric) {
  SocialParams p = dblp_like_params(1500, 30, 7);
  const SbmGraph g = make_social_graph(p);
  g.w.validate();
  EXPECT_TRUE(sparse::is_symmetric(sparse::coo_to_csr(g.w), 1e-12));
  EXPECT_EQ(g.w.rows, 1500);
}

TEST(MakeSocialGraph, ModularityStructurePresent) {
  SocialParams p = fb_like_params(1200, 6, 11);
  const SbmGraph g = make_social_graph(p);
  index_t within = 0;
  for (usize e = 0; e < g.w.values.size(); ++e) {
    if (g.labels[static_cast<usize>(g.w.row_idx[e])] ==
        g.labels[static_cast<usize>(g.w.col_idx[e])]) {
      ++within;
    }
  }
  const real frac = static_cast<real>(within) /
                    static_cast<real>(g.w.nnz());
  EXPECT_GT(frac, 0.75);  // within_fraction = 0.92 on expectation
}

TEST(MakeSocialGraph, SkewProducesUnevenCommunities) {
  SocialParams p = dblp_like_params(3000, 40, 13);
  p.size_skew = 1.5;
  const SbmGraph g = make_social_graph(p);
  std::vector<index_t> counts(40, 0);
  for (index_t l : g.labels) counts[static_cast<usize>(l)] += 1;
  const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GE(*mx, 3 * (*mn));  // visibly skewed sizes
}

TEST(MakeSocialGraph, RejectsBadParams) {
  SocialParams p = fb_like_params(100, 0);
  EXPECT_THROW((void)make_social_graph(p), std::invalid_argument);
  p = fb_like_params(100, 101);
  EXPECT_THROW((void)make_social_graph(p), std::invalid_argument);
}

TEST(MakeSocialGraph, DeterministicForSeed) {
  SocialParams p = fb_like_params(800, 5, 99);
  const SbmGraph a = make_social_graph(p);
  const SbmGraph b = make_social_graph(p);
  EXPECT_EQ(a.w.row_idx, b.w.row_idx);
  EXPECT_EQ(a.labels, b.labels);
}

}  // namespace
}  // namespace fastsc::data
