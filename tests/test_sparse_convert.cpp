#include "sparse/convert.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace fastsc::sparse {
namespace {

/// Random sparse matrix with possible duplicates controlled by the caller.
Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng,
               bool allow_duplicates = false) {
  Coo coo(rows, cols);
  coo.reserve(nnz);
  for (index_t e = 0; e < nnz; ++e) {
    coo.push(static_cast<index_t>(rng.uniform_index(
                 static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.uniform_index(static_cast<std::uint64_t>(cols))),
             rng.uniform() - 0.5);
  }
  if (!allow_duplicates) sort_and_merge(coo);
  return coo;
}

std::vector<real> to_dense(const Coo& coo) {
  std::vector<real> d(static_cast<usize>(coo.rows) *
                          static_cast<usize>(coo.cols),
                      0.0);
  for (usize e = 0; e < coo.values.size(); ++e) {
    d[static_cast<usize>(coo.row_idx[e] * coo.cols + coo.col_idx[e])] +=
        coo.values[e];
  }
  return d;
}

std::vector<real> to_dense(const Csr& csr) {
  std::vector<real> d(static_cast<usize>(csr.rows) *
                      static_cast<usize>(csr.cols));
  csr_to_dense(csr, d.data());
  return d;
}

class ConvertRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConvertRoundTrip, CooCsrPreservesDense) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 31 + cols * 7 + nnz));
  const Coo coo = random_coo(rows, cols, nnz, rng);
  const Csr csr = coo_to_csr(coo);
  EXPECT_NO_THROW(csr.validate());
  EXPECT_EQ(to_dense(coo), to_dense(csr));
  // Round trip back.
  const Coo back = csr_to_coo(csr);
  EXPECT_EQ(to_dense(back), to_dense(coo));
}

TEST_P(ConvertRoundTrip, CsrCscRoundTrip) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 13 + cols * 3 + nnz));
  const Csr csr = coo_to_csr(random_coo(rows, cols, nnz, rng));
  const Csc csc = csr_to_csc(csr);
  EXPECT_NO_THROW(csc.validate());
  const Csr back = csc_to_csr(csc);
  EXPECT_EQ(to_dense(back), to_dense(csr));
}

TEST_P(ConvertRoundTrip, CsrBsrRoundTrip) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows + cols * 29 + nnz * 5));
  const Csr csr = coo_to_csr(random_coo(rows, cols, nnz, rng));
  for (index_t bs : {1, 2, 3, 7}) {
    const Bsr bsr = csr_to_bsr(csr, bs);
    EXPECT_NO_THROW(bsr.validate());
    const Csr back = bsr_to_csr(bsr);
    EXPECT_EQ(to_dense(back), to_dense(csr)) << "block size " << bs;
  }
}

TEST_P(ConvertRoundTrip, DenseCsrRoundTrip) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 3 + cols + nnz * 11));
  const Coo coo = random_coo(rows, cols, nnz, rng);
  const auto dense = to_dense(coo);
  const Csr csr = dense_to_csr(rows, cols, dense.data());
  EXPECT_EQ(to_dense(csr), dense);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvertRoundTrip,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 5, 10),
                      std::make_tuple(20, 7, 50), std::make_tuple(7, 20, 50),
                      std::make_tuple(40, 40, 0),
                      std::make_tuple(64, 64, 500)));

TEST(SortAndMerge, SumsDuplicates) {
  Coo coo(2, 2);
  coo.push(1, 1, 1.0);
  coo.push(0, 0, 2.0);
  coo.push(1, 1, 3.0);
  sort_and_merge(coo);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_TRUE(coo.is_sorted_unique());
  EXPECT_DOUBLE_EQ(coo.values[0], 2.0);  // (0,0)
  EXPECT_DOUBLE_EQ(coo.values[1], 4.0);  // (1,1) merged
}

TEST(SortAndMerge, OrdersByRowThenCol) {
  Coo coo(3, 3);
  coo.push(2, 0, 1);
  coo.push(0, 2, 1);
  coo.push(0, 1, 1);
  coo.push(1, 0, 1);
  sort_and_merge(coo);
  EXPECT_EQ(coo.row_idx, (std::vector<index_t>{0, 0, 1, 2}));
  EXPECT_EQ(coo.col_idx, (std::vector<index_t>{1, 2, 0, 0}));
}

TEST(CooToCsr, IsStableWithinRows) {
  Coo coo(2, 4);
  coo.push(0, 3, 1);
  coo.push(0, 1, 2);
  coo.push(0, 2, 3);
  const Csr csr = coo_to_csr(coo);
  // COO order within the row is preserved (no column sort).
  EXPECT_EQ(csr.col_idx, (std::vector<index_t>{3, 1, 2}));
}

TEST(CooToCsr, DuplicatesKeptWhenNotMerged) {
  Coo coo(1, 1);
  coo.push(0, 0, 1);
  coo.push(0, 0, 2);
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 2);
  EXPECT_DOUBLE_EQ(csr.at(0, 0), 3.0);  // at() sums stored duplicates
}

TEST(DenseToCsr, DropTolFiltersSmallEntries) {
  const real dense[] = {0.5, 1e-12, 0, 2.0};
  const Csr csr = dense_to_csr(2, 2, dense, 1e-9);
  EXPECT_EQ(csr.nnz(), 2);
  EXPECT_DOUBLE_EQ(csr.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(csr.at(1, 1), 2.0);
}

}  // namespace
}  // namespace fastsc::sparse
