#include <gtest/gtest.h>

#include "sparse/bsr.h"
#include "sparse/convert.h"
#include "sparse/coo.h"
#include "sparse/csc.h"
#include "sparse/csr.h"

namespace fastsc::sparse {
namespace {

Coo small_coo() {
  // [[1, 0, 2],
  //  [0, 0, 0],
  //  [3, 4, 0]]
  Coo coo(3, 3);
  coo.push(0, 0, 1);
  coo.push(0, 2, 2);
  coo.push(2, 0, 3);
  coo.push(2, 1, 4);
  return coo;
}

TEST(Coo, ValidatePassesOnWellFormed) {
  EXPECT_NO_THROW(small_coo().validate());
}

TEST(Coo, ValidateCatchesOutOfRange) {
  Coo coo(2, 2);
  coo.push(2, 0, 1.0);
  EXPECT_THROW(coo.validate(), std::invalid_argument);
  Coo coo2(2, 2);
  coo2.push(0, -1, 1.0);
  EXPECT_THROW(coo2.validate(), std::invalid_argument);
}

TEST(Coo, ValidateCatchesLengthMismatch) {
  Coo coo(2, 2);
  coo.push(0, 0, 1.0);
  coo.row_idx.push_back(1);
  EXPECT_THROW(coo.validate(), std::invalid_argument);
}

TEST(Coo, SortedUniqueDetection) {
  Coo coo(3, 3);
  coo.push(0, 1, 1);
  coo.push(1, 0, 1);
  EXPECT_TRUE(coo.is_sorted_unique());
  coo.push(1, 0, 2);  // duplicate
  EXPECT_FALSE(coo.is_sorted_unique());
}

TEST(Csr, ValidateChecksPrefixSums) {
  Csr csr(2, 2);
  csr.row_ptr = {0, 1, 2};
  csr.col_idx = {0, 1};
  csr.values = {1.0, 2.0};
  EXPECT_NO_THROW(csr.validate());
  csr.row_ptr = {0, 2, 1};
  EXPECT_THROW(csr.validate(), std::invalid_argument);
}

TEST(Csr, ValidateChecksEndpoints) {
  Csr csr(1, 1);
  csr.row_ptr = {0, 2};
  csr.col_idx = {0};
  csr.values = {1.0};
  EXPECT_THROW(csr.validate(), std::invalid_argument);
}

TEST(Csr, AtFindsStoredAndMissing) {
  const Csr csr = coo_to_csr(small_coo());
  EXPECT_DOUBLE_EQ(csr.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(csr.at(0, 2), 2);
  EXPECT_DOUBLE_EQ(csr.at(0, 1), 0);
  EXPECT_DOUBLE_EQ(csr.at(1, 1), 0);
  EXPECT_DOUBLE_EQ(csr.at(-1, 0), 0);
}

TEST(Csr, RowNnz) {
  const Csr csr = coo_to_csr(small_coo());
  EXPECT_EQ(csr.row_nnz(0), 2);
  EXPECT_EQ(csr.row_nnz(1), 0);
  EXPECT_EQ(csr.row_nnz(2), 2);
}

TEST(Csr, HasSortedRowsDetection) {
  Csr csr(1, 3);
  csr.row_ptr = {0, 2};
  csr.col_idx = {2, 1};
  csr.values = {1, 1};
  EXPECT_FALSE(csr.has_sorted_rows());
  csr.col_idx = {1, 2};
  EXPECT_TRUE(csr.has_sorted_rows());
}

TEST(Csc, ValidateWorks) {
  const Csc csc = csr_to_csc(coo_to_csr(small_coo()));
  EXPECT_NO_THROW(csc.validate());
  EXPECT_EQ(csc.nnz(), 4);
}

TEST(Bsr, ValidateWorks) {
  const Bsr bsr = csr_to_bsr(coo_to_csr(small_coo()), 2);
  EXPECT_NO_THROW(bsr.validate());
  EXPECT_EQ(bsr.block_size, 2);
  EXPECT_EQ(bsr.block_rows, 2);
}

TEST(Bsr, ValidateCatchesBadBlockMath) {
  Bsr bsr = csr_to_bsr(coo_to_csr(small_coo()), 2);
  bsr.block_rows = 5;
  EXPECT_THROW(bsr.validate(), std::invalid_argument);
}

TEST(EmptyMatrices, AllFormatsHandleZeroNnz) {
  Coo coo(4, 4);
  EXPECT_NO_THROW(coo.validate());
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_NO_THROW(csr.validate());
  const Csc csc = csr_to_csc(csr);
  EXPECT_NO_THROW(csc.validate());
  const Bsr bsr = csr_to_bsr(csr, 2);
  EXPECT_NO_THROW(bsr.validate());
  EXPECT_EQ(bsr.block_count(), 0);
}

}  // namespace
}  // namespace fastsc::sparse
