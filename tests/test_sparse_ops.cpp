#include "sparse/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "sparse/convert.h"

namespace fastsc::sparse {
namespace {

Csr example() {
  // [[1, 2, 0],
  //  [0, 0, 3],
  //  [4, 0, 5]]
  Coo coo(3, 3);
  coo.push(0, 0, 1);
  coo.push(0, 1, 2);
  coo.push(1, 2, 3);
  coo.push(2, 0, 4);
  coo.push(2, 2, 5);
  return coo_to_csr(coo);
}

TEST(SparseOps, RowSums) {
  const auto sums = row_sums(example());
  EXPECT_EQ(sums, (std::vector<real>{3, 3, 9}));
}

TEST(SparseOps, TransposeMatchesDefinition) {
  const Csr a = example();
  const Csr t = transpose(a);
  EXPECT_EQ(t.rows, a.cols);
  EXPECT_EQ(t.cols, a.rows);
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < a.cols; ++j) {
      EXPECT_DOUBLE_EQ(t.at(j, i), a.at(i, j));
    }
  }
}

TEST(SparseOps, TransposeTwiceIsIdentity) {
  const Csr a = example();
  const Csr tt = transpose(transpose(a));
  for (index_t i = 0; i < a.rows; ++i) {
    for (index_t j = 0; j < a.cols; ++j) {
      EXPECT_DOUBLE_EQ(tt.at(i, j), a.at(i, j));
    }
  }
}

TEST(SparseOps, SymmetryDetection) {
  EXPECT_FALSE(is_symmetric(example()));
  Coo sym(2, 2);
  sym.push(0, 1, 5);
  sym.push(1, 0, 5);
  sym.push(0, 0, 1);
  EXPECT_TRUE(is_symmetric(coo_to_csr(sym)));
}

TEST(SparseOps, SymmetryWithTolerance) {
  Coo coo(2, 2);
  coo.push(0, 1, 1.0);
  coo.push(1, 0, 1.0 + 1e-12);
  const Csr csr = coo_to_csr(coo);
  EXPECT_FALSE(is_symmetric(csr, 0.0));
  EXPECT_TRUE(is_symmetric(csr, 1e-9));
}

TEST(SparseOps, NonSquareNeverSymmetric) {
  Coo coo(2, 3);
  EXPECT_FALSE(is_symmetric(coo_to_csr(coo)));
}

TEST(SparseOps, DiagonalExtraction) {
  const auto d = diagonal(example());
  EXPECT_EQ(d, (std::vector<real>{1, 0, 5}));
}

TEST(SparseOps, FrobeniusNorm) {
  EXPECT_NEAR(frobenius_norm(example()),
              std::sqrt(1.0 + 4 + 9 + 16 + 25), 1e-12);
}

TEST(SparseOps, InfNorm) { EXPECT_DOUBLE_EQ(inf_norm(example()), 9.0); }

TEST(SparseOps, DropSmallRemovesEntries) {
  const Csr dropped = drop_small(example(), 2.5);
  EXPECT_EQ(dropped.nnz(), 3);  // |v| > 2.5 keeps the 3, 4 and 5 entries
  EXPECT_NO_THROW(dropped.validate());
}

TEST(SparseOps, DropSmallKeepsLargeEntries) {
  const Csr dropped = drop_small(example(), 2.5);
  EXPECT_DOUBLE_EQ(dropped.at(1, 2), 3);
  EXPECT_DOUBLE_EQ(dropped.at(2, 0), 4);
  EXPECT_DOUBLE_EQ(dropped.at(2, 2), 5);
  EXPECT_DOUBLE_EQ(dropped.at(0, 1), 0);
}

TEST(SparseOps, SymmetrizeAveragesWithTranspose) {
  Coo coo(2, 2);
  coo.push(0, 1, 4.0);
  const Csr s = symmetrize(coo_to_csr(coo));
  EXPECT_DOUBLE_EQ(s.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 2.0);
  EXPECT_TRUE(is_symmetric(s));
}

TEST(SparseOps, EmptyRowCount) {
  EXPECT_EQ(empty_row_count(example()), 0);
  Coo coo(4, 4);
  coo.push(0, 1, 1.0);
  EXPECT_EQ(empty_row_count(coo_to_csr(coo)), 3);
}

TEST(SparseOps, RandomSymmetrizeIsSymmetric) {
  Rng rng(55);
  Coo coo(30, 30);
  for (int e = 0; e < 200; ++e) {
    coo.push(static_cast<index_t>(rng.uniform_index(30)),
             static_cast<index_t>(rng.uniform_index(30)),
             rng.uniform() - 0.5);
  }
  sort_and_merge(coo);
  EXPECT_TRUE(is_symmetric(symmetrize(coo_to_csr(coo)), 1e-12));
}

}  // namespace
}  // namespace fastsc::sparse
