// Integration tests: the full 4-step pipeline across all three backends.
#include "core/spectral.h"

#include <gtest/gtest.h>

#include "core/report.h"
#include "data/dti.h"
#include "data/sbm.h"
#include "metrics/cut.h"
#include "metrics/external.h"
#include "sparse/convert.h"

#include <limits>

namespace fastsc::core {
namespace {

data::SbmGraph easy_sbm(index_t n, index_t k, std::uint64_t seed) {
  data::SbmParams p;
  p.block_sizes = data::equal_blocks(n, k);
  p.p_in = 0.4;
  p.p_out = 0.01;
  p.seed = seed;
  return data::make_sbm(p);
}

class PipelineBackends : public ::testing::TestWithParam<Backend> {};

TEST_P(PipelineBackends, RecoversPlantedSbmPartition) {
  const data::SbmGraph g = easy_sbm(300, 3, 7);
  SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.backend = GetParam();
  cfg.seed = 5;
  device::DeviceContext ctx(2);
  const SpectralResult result = spectral_cluster_graph(g.w, cfg, &ctx);

  EXPECT_TRUE(result.eig_converged);
  ASSERT_EQ(result.labels.size(), 300u);
  const real ari = metrics::adjusted_rand_index(result.labels, g.labels);
  EXPECT_GT(ari, 0.95) << backend_name(GetParam());
}

TEST_P(PipelineBackends, StageClockPopulated) {
  const data::SbmGraph g = easy_sbm(150, 2, 9);
  SpectralConfig cfg;
  cfg.num_clusters = 2;
  cfg.backend = GetParam();
  device::DeviceContext ctx(1);
  const SpectralResult result = spectral_cluster_graph(g.w, cfg, &ctx);
  EXPECT_GT(result.clock.seconds(kStageEigensolver), 0.0);
  EXPECT_GT(result.clock.seconds(kStageKmeans), 0.0);
  EXPECT_EQ(result.clock.seconds(kStageSimilarity), 0.0);  // graph mode
}

TEST_P(PipelineBackends, PointsModeRunsAllThreeStages) {
  data::DtiParams dp;
  dp.nx = 6;
  dp.ny = 6;
  dp.nz = 6;
  dp.profile_dim = 20;
  dp.num_parcels = 4;
  dp.epsilon = 1.0;
  dp.noise = 0.1;
  const data::DtiVolume vol = data::make_dti_like(dp);

  SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.backend = GetParam();
  cfg.similarity.measure = graph::SimilarityMeasure::kCrossCorrelation;
  device::DeviceContext ctx(2);
  const SpectralResult result = spectral_cluster_points(
      vol.profiles.data(), vol.n, vol.d, vol.edges, cfg, &ctx);

  EXPECT_GT(result.clock.seconds(kStageSimilarity), 0.0);
  EXPECT_GT(result.clock.seconds(kStageEigensolver), 0.0);
  EXPECT_GT(result.clock.seconds(kStageKmeans), 0.0);
  ASSERT_EQ(result.labels.size(), static_cast<usize>(vol.n));
  // Parcels are spatial Voronoi + distinct profiles; expect decent recovery.
  const real nmi =
      metrics::normalized_mutual_information(result.labels, vol.labels);
  EXPECT_GT(nmi, 0.5) << backend_name(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Backends, PipelineBackends,
                         ::testing::Values(Backend::kDevice,
                                           Backend::kMatlabLike,
                                           Backend::kPythonLike));

TEST(Pipeline, LeadingEigenvalueIsOne) {
  const data::SbmGraph g = easy_sbm(200, 2, 11);
  SpectralConfig cfg;
  cfg.num_clusters = 2;
  const SpectralResult result = spectral_cluster_graph(g.w, cfg);
  ASSERT_GE(result.eigenvalues.size(), 1u);
  EXPECT_NEAR(result.eigenvalues[0], 1.0, 1e-6);
}

TEST(Pipeline, EmbeddingHasExpectedShape) {
  const data::SbmGraph g = easy_sbm(120, 4, 13);
  SpectralConfig cfg;
  cfg.num_clusters = 4;
  const SpectralResult result = spectral_cluster_graph(g.w, cfg);
  EXPECT_EQ(result.embedding.size(), static_cast<usize>(120 * 4));
}

TEST(Pipeline, SpectralBeatsRandomNcut) {
  const data::SbmGraph g = easy_sbm(240, 4, 17);
  SpectralConfig cfg;
  cfg.num_clusters = 4;
  const SpectralResult result = spectral_cluster_graph(g.w, cfg);
  const sparse::Csr w = sparse::coo_to_csr(g.w);
  const real ncut_spectral =
      metrics::normalized_cut(w, result.labels, 4);
  Rng rng(23);
  std::vector<index_t> random_labels(240);
  real ncut_random = 0;
  for (int rep = 0; rep < 5; ++rep) {
    for (auto& l : random_labels) {
      l = static_cast<index_t>(rng.uniform_index(4));
    }
    ncut_random += metrics::normalized_cut(w, random_labels, 4);
  }
  ncut_random /= 5;
  EXPECT_LT(ncut_spectral, 0.8 * ncut_random);
}

TEST(Pipeline, DeviceCountersTrackEigensolverTraffic) {
  const data::SbmGraph g = easy_sbm(150, 3, 19);
  SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.backend = Backend::kDevice;
  device::DeviceContext ctx(1);
  const SpectralResult result = spectral_cluster_graph(g.w, cfg, &ctx);
  const auto& c = result.device_counters;
  EXPECT_GT(c.bytes_h2d, 0u);
  EXPECT_GT(c.bytes_d2h, 0u);
  // RCI staging: at least one round trip per matvec.
  EXPECT_GE(c.transfers_h2d,
            static_cast<usize>(result.eig_stats.matvec_count));
  EXPECT_GT(c.modeled_transfer_seconds, 0.0);
  EXPECT_GT(c.kernel_launches, 0u);
}

TEST(Pipeline, HostBackendsLeaveDeviceUntouched) {
  const data::SbmGraph g = easy_sbm(100, 2, 23);
  SpectralConfig cfg;
  cfg.num_clusters = 2;
  cfg.backend = Backend::kMatlabLike;
  device::DeviceContext ctx(1);
  const SpectralResult result = spectral_cluster_graph(g.w, cfg, &ctx);
  EXPECT_EQ(result.device_counters.bytes_h2d, 0u);
  EXPECT_EQ(result.device_counters.kernel_launches, 0u);
}

TEST(Pipeline, AllBackendsAgreeOnQuality) {
  const data::SbmGraph g = easy_sbm(200, 4, 29);
  device::DeviceContext ctx(2);
  std::vector<real> aris;
  for (Backend b :
       {Backend::kDevice, Backend::kMatlabLike, Backend::kPythonLike}) {
    SpectralConfig cfg;
    cfg.num_clusters = 4;
    cfg.backend = b;
    cfg.seed = 31;
    const SpectralResult r = spectral_cluster_graph(g.w, cfg, &ctx);
    aris.push_back(metrics::adjusted_rand_index(r.labels, g.labels));
  }
  for (real a : aris) EXPECT_GT(a, 0.9);
}

TEST(Pipeline, BsrSpmvFormatGivesSameClustering) {
  const data::SbmGraph g = easy_sbm(200, 3, 47);
  device::DeviceContext ctx(2);
  SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.seed = 9;
  const SpectralResult csr = spectral_cluster_graph(g.w, cfg, &ctx);
  cfg.spmv_format = DeviceSpmvFormat::kBsr;
  cfg.bsr_block_size = 4;
  const SpectralResult bsr = spectral_cluster_graph(g.w, cfg, &ctx);
  ASSERT_EQ(csr.eigenvalues.size(), bsr.eigenvalues.size());
  for (usize i = 0; i < csr.eigenvalues.size(); ++i) {
    EXPECT_NEAR(csr.eigenvalues[i], bsr.eigenvalues[i], 1e-8);
  }
  EXPECT_GT(metrics::adjusted_rand_index(bsr.labels, g.labels), 0.95);
}

TEST(Pipeline, RowNormalizedEmbeddingAlsoRecovers) {
  const data::SbmGraph g = easy_sbm(240, 3, 43);
  SpectralConfig cfg;
  cfg.num_clusters = 3;
  cfg.row_normalize_embedding = true;  // Ng-Jordan-Weiss variant
  const SpectralResult r = spectral_cluster_graph(g.w, cfg);
  EXPECT_GT(metrics::adjusted_rand_index(r.labels, g.labels), 0.95);
  // Embedding rows are unit length after the kmeans stage ran.
  for (index_t i = 0; i < r.n; ++i) {
    real norm2 = 0;
    for (index_t l = 0; l < r.k; ++l) {
      const real v = r.embedding[static_cast<usize>(i * r.k + l)];
      norm2 += v * v;
    }
    EXPECT_NEAR(norm2, 1.0, 1e-9);
  }
}

TEST(Pipeline, ChunkedSimilarityGivesSameClustering) {
  data::DtiParams dp;
  dp.nx = dp.ny = dp.nz = 6;
  dp.profile_dim = 16;
  dp.num_parcels = 4;
  dp.epsilon = 1.0;
  const data::DtiVolume vol = data::make_dti_like(dp);
  device::DeviceContext ctx(2);

  SpectralConfig cfg;
  cfg.num_clusters = 4;
  cfg.seed = 3;
  const SpectralResult full = spectral_cluster_points(
      vol.profiles.data(), vol.n, vol.d, vol.edges, cfg, &ctx);
  cfg.similarity_chunk_edges = 97;  // awkward chunk size on purpose
  const SpectralResult chunked = spectral_cluster_points(
      vol.profiles.data(), vol.n, vol.d, vol.edges, cfg, &ctx);
  EXPECT_EQ(full.labels, chunked.labels);
  ASSERT_EQ(full.eigenvalues.size(), chunked.eigenvalues.size());
  for (usize i = 0; i < full.eigenvalues.size(); ++i) {
    EXPECT_NEAR(full.eigenvalues[i], chunked.eigenvalues[i], 1e-10);
  }
}

TEST(Pipeline, RejectsNonFiniteInputs) {
  // Failure injection: NaN in points and Inf in weights must be rejected
  // up front, not surface as mysterious non-convergence.
  std::vector<real> x(20, 1.0);
  x[7] = std::numeric_limits<real>::quiet_NaN();
  graph::EdgeList edges;
  for (index_t i = 0; i + 1 < 10; ++i) edges.push(i, i + 1);
  SpectralConfig cfg;
  cfg.num_clusters = 2;
  EXPECT_THROW((void)spectral_cluster_points(x.data(), 10, 2, edges, cfg),
               std::invalid_argument);

  sparse::Coo w(4, 4);
  w.push(0, 1, std::numeric_limits<real>::infinity());
  w.push(1, 0, 1.0);
  EXPECT_THROW((void)spectral_cluster_graph(w, cfg), std::invalid_argument);
}

TEST(Pipeline, ValidatesArguments) {
  const data::SbmGraph g = easy_sbm(50, 2, 37);
  SpectralConfig cfg;
  cfg.num_clusters = 0;
  EXPECT_THROW((void)spectral_cluster_graph(g.w, cfg), std::invalid_argument);
  cfg.num_clusters = 51;
  EXPECT_THROW((void)spectral_cluster_graph(g.w, cfg), std::invalid_argument);
  sparse::Coo not_square(3, 4);
  cfg.num_clusters = 2;
  EXPECT_THROW((void)spectral_cluster_graph(not_square, cfg),
               std::invalid_argument);
}

TEST(Report, StageTableContainsBackendsAndStages) {
  const data::SbmGraph g = easy_sbm(100, 2, 41);
  device::DeviceContext ctx(1);
  BackendRuns runs;
  runs.dataset = "test";
  runs.nodes = 100;
  runs.edges = g.w.nnz();
  runs.clusters = 2;
  for (Backend b : {Backend::kDevice, Backend::kMatlabLike}) {
    SpectralConfig cfg;
    cfg.num_clusters = 2;
    cfg.backend = b;
    runs.runs.emplace_back(b, spectral_cluster_graph(g.w, cfg, &ctx));
  }
  const std::string table = stage_table(runs, false).to_string();
  EXPECT_NE(table.find("CUDA"), std::string::npos);
  EXPECT_NE(table.find("Matlab"), std::string::npos);
  EXPECT_NE(table.find("Sparse Eigensolver"), std::string::npos);
  EXPECT_NE(table.find("K-means"), std::string::npos);

  const std::string comm = communication_table({runs}).to_string();
  EXPECT_NE(comm.find("test"), std::string::npos);

  const std::string quality =
      quality_table(runs, g.labels, sparse::coo_to_csr(g.w)).to_string();
  EXPECT_NE(quality.find("ARI"), std::string::npos);
}

}  // namespace
}  // namespace fastsc::core
