#include "sparse/spmv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "sparse/convert.h"

namespace fastsc::sparse {
namespace {

Coo random_coo(index_t rows, index_t cols, index_t nnz, Rng& rng) {
  Coo coo(rows, cols);
  for (index_t e = 0; e < nnz; ++e) {
    coo.push(static_cast<index_t>(
                 rng.uniform_index(static_cast<std::uint64_t>(rows))),
             static_cast<index_t>(
                 rng.uniform_index(static_cast<std::uint64_t>(cols))),
             rng.uniform() - 0.5);
  }
  sort_and_merge(coo);
  return coo;
}

std::vector<real> dense_mv(const Coo& coo, const std::vector<real>& x,
                           real alpha, real beta,
                           const std::vector<real>& y0) {
  std::vector<real> y(static_cast<usize>(coo.rows));
  for (index_t r = 0; r < coo.rows; ++r) {
    y[static_cast<usize>(r)] = beta * y0[static_cast<usize>(r)];
  }
  for (usize e = 0; e < coo.values.size(); ++e) {
    y[static_cast<usize>(coo.row_idx[e])] +=
        alpha * coo.values[e] * x[static_cast<usize>(coo.col_idx[e])];
  }
  return y;
}

class SpmvFormats
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SpmvFormats, AllFormatsMatchDenseReference) {
  const auto [rows, cols, nnz] = GetParam();
  Rng rng(static_cast<std::uint64_t>(rows * 7919 + cols * 31 + nnz));
  const Coo coo = random_coo(rows, cols, nnz, rng);
  const Csr csr = coo_to_csr(coo);
  const Csc csc = csr_to_csc(csr);
  const Bsr bsr = csr_to_bsr(csr, 3);

  std::vector<real> x(static_cast<usize>(cols));
  for (real& v : x) v = rng.uniform() - 0.5;
  std::vector<real> y0(static_cast<usize>(rows));
  for (real& v : y0) v = rng.uniform();

  for (const auto& [alpha, beta] :
       {std::pair<real, real>{1, 0}, {2.5, 0}, {1, 1}, {-1, 0.5}}) {
    const auto expect = dense_mv(coo, x, alpha, beta, y0);
    auto check = [&](const std::vector<real>& got, const char* what) {
      for (usize i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], expect[i], 1e-10)
            << what << " alpha=" << alpha << " beta=" << beta << " i=" << i;
      }
    };
    std::vector<real> y;
    y = y0;
    csr_mv(csr, x.data(), y.data(), alpha, beta);
    check(y, "csr");
    y = y0;
    coo_mv(coo, x.data(), y.data(), alpha, beta);
    check(y, "coo");
    y = y0;
    csc_mv(csc, x.data(), y.data(), alpha, beta);
    check(y, "csc");
    y = y0;
    bsr_mv(bsr, x.data(), y.data(), alpha, beta);
    check(y, "bsr");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvFormats,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(10, 10, 30),
                      std::make_tuple(33, 17, 100),
                      std::make_tuple(17, 33, 100),
                      std::make_tuple(100, 100, 0),
                      std::make_tuple(200, 200, 2000)));

// Regression for the shared beta prologue: with beta == 0 the output must be
// pure overwrite — poisoning y with NaN beforehand must not leak through any
// of the four host formats (0 * NaN = NaN would propagate if an
// implementation multiplied instead of clearing).
TEST(HostSpmvBetaPrologue, BetaZeroIgnoresPoisonedOutput) {
  Rng rng(57);
  const Coo coo = random_coo(40, 40, 250, rng);
  const Csr csr = coo_to_csr(coo);
  const Csc csc = csr_to_csc(csr);
  const Bsr bsr = csr_to_bsr(csr, 3);

  std::vector<real> x(40);
  for (real& v : x) v = rng.uniform() - 0.5;
  const std::vector<real> zeros(40, 0.0);
  const auto expect = dense_mv(coo, x, 2.0, 0.0, zeros);

  const real nan = std::numeric_limits<real>::quiet_NaN();
  auto check = [&](auto&& mv, const char* what) {
    std::vector<real> y(40, nan);
    mv(y.data());
    for (usize i = 0; i < y.size(); ++i) {
      EXPECT_TRUE(std::isfinite(y[i])) << what << " i=" << i;
      EXPECT_NEAR(y[i], expect[i], 1e-12) << what << " i=" << i;
    }
  };
  check([&](real* y) { csr_mv(csr, x.data(), y, 2.0, 0.0); }, "csr");
  check([&](real* y) { coo_mv(coo, x.data(), y, 2.0, 0.0); }, "coo");
  check([&](real* y) { csc_mv(csc, x.data(), y, 2.0, 0.0); }, "csc");
  check([&](real* y) { bsr_mv(bsr, x.data(), y, 2.0, 0.0); }, "bsr");
}

class DeviceSparse : public ::testing::TestWithParam<int> {
 protected:
  device::DeviceContext ctx_{static_cast<usize>(GetParam())};
};

TEST_P(DeviceSparse, UploadDownloadRoundTrip) {
  Rng rng(17);
  const Coo coo = random_coo(30, 30, 100, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);
  const Csr back = dev.to_host();
  EXPECT_EQ(back.row_ptr, csr.row_ptr);
  EXPECT_EQ(back.col_idx, csr.col_idx);
  EXPECT_EQ(back.values, csr.values);

  DeviceCoo dcoo(ctx_, coo);
  const Coo cback = dcoo.to_host();
  EXPECT_EQ(cback.row_idx, coo.row_idx);
  EXPECT_EQ(cback.values, coo.values);
}

TEST_P(DeviceSparse, DeviceCsrmvMatchesHost) {
  Rng rng(23);
  const Coo coo = random_coo(120, 120, 1500, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);

  std::vector<real> x(120);
  for (real& v : x) v = rng.uniform() - 0.5;
  std::vector<real> y_host(120, 0.0);
  csr_mv(csr, x.data(), y_host.data());

  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx_, 120);
  device_csrmv(ctx_, dev, dx.data(), dy.data());
  const auto y_dev = dy.to_host();
  for (usize i = 0; i < 120; ++i) EXPECT_NEAR(y_dev[i], y_host[i], 1e-10);
}

TEST_P(DeviceSparse, DeviceCsrmvAlphaBeta) {
  Rng rng(29);
  const Coo coo = random_coo(50, 50, 300, rng);
  const Csr csr = coo_to_csr(coo);
  DeviceCsr dev(ctx_, csr);
  std::vector<real> x(50, 1.0), y(50, 2.0);
  std::vector<real> expect = y;
  csr_mv(csr, x.data(), expect.data(), 3.0, 0.5);

  device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
  device::DeviceBuffer<real> dy(ctx_, std::span<const real>(y));
  device_csrmv(ctx_, dev, dx.data(), dy.data(), 3.0, 0.5);
  const auto got = dy.to_host();
  for (usize i = 0; i < 50; ++i) EXPECT_NEAR(got[i], expect[i], 1e-12);
}

TEST_P(DeviceSparse, Coo2CsrMatchesHostConversion) {
  Rng rng(31);
  const Coo coo = random_coo(60, 45, 400, rng);  // sorted by sort_and_merge
  DeviceCoo dcoo(ctx_, coo);
  DeviceCsr dcsr;
  device_coo2csr(ctx_, dcoo, dcsr);
  const Csr host = coo_to_csr(coo);
  const Csr got = dcsr.to_host();
  EXPECT_EQ(got.row_ptr, host.row_ptr);
  EXPECT_EQ(got.col_idx, host.col_idx);
  EXPECT_EQ(got.values, host.values);
}

TEST_P(DeviceSparse, SortCooOrdersByRowCol) {
  Coo coo(4, 4);
  coo.push(3, 1, 1.0);
  coo.push(0, 2, 2.0);
  coo.push(3, 0, 3.0);
  coo.push(1, 1, 4.0);
  DeviceCoo dcoo(ctx_, coo);
  device_sort_coo(ctx_, dcoo);
  const Coo sorted = dcoo.to_host();
  EXPECT_EQ(sorted.row_idx, (std::vector<index_t>{0, 1, 3, 3}));
  EXPECT_EQ(sorted.col_idx, (std::vector<index_t>{2, 1, 0, 1}));
  EXPECT_EQ(sorted.values, (std::vector<real>{2.0, 4.0, 3.0, 1.0}));
}

TEST_P(DeviceSparse, DeviceCscmvMatchesHost) {
  Rng rng(37);
  const Coo coo = random_coo(90, 70, 800, rng);
  const Csc csc = csr_to_csc(coo_to_csr(coo));
  DeviceCsc dev(ctx_, csc);

  std::vector<real> x(70), y0(90);
  for (real& v : x) v = rng.uniform(-1, 1);
  for (real& v : y0) v = rng.uniform(-1, 1);

  for (const auto& [alpha, beta] :
       {std::pair<real, real>{1, 0}, {2.0, 0.5}, {-1, 1}}) {
    std::vector<real> expect = y0;
    csc_mv(csc, x.data(), expect.data(), alpha, beta);

    device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
    device::DeviceBuffer<real> dy(ctx_, std::span<const real>(y0));
    device_cscmv(ctx_, dev, dx.data(), dy.data(), alpha, beta);
    const auto got = dy.to_host();
    for (usize i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-10)
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST_P(DeviceSparse, DeviceBsrmvMatchesHost) {
  Rng rng(41);
  const Coo coo = random_coo(85, 85, 700, rng);
  for (index_t bs : {1, 3, 4}) {
    const Bsr bsr = csr_to_bsr(coo_to_csr(coo), bs);
    DeviceBsr dev(ctx_, bsr);

    std::vector<real> x(85), y0(85);
    for (real& v : x) v = rng.uniform(-1, 1);
    for (real& v : y0) v = rng.uniform(-1, 1);

    std::vector<real> expect = y0;
    bsr_mv(bsr, x.data(), expect.data(), 1.5, 0.25);

    device::DeviceBuffer<real> dx(ctx_, std::span<const real>(x));
    device::DeviceBuffer<real> dy(ctx_, std::span<const real>(y0));
    device_bsrmv(ctx_, dev, dx.data(), dy.data(), 1.5, 0.25);
    const auto got = dy.to_host();
    for (usize i = 0; i < got.size(); ++i) {
      EXPECT_NEAR(got[i], expect[i], 1e-10) << "block size " << bs;
    }
  }
}

TEST_P(DeviceSparse, DeviceCscBsrRoundTrip) {
  Rng rng(43);
  const Coo coo = random_coo(40, 30, 200, rng);
  const Csc csc = csr_to_csc(coo_to_csr(coo));
  DeviceCsc dcsc(ctx_, csc);
  const Csc csc_back = dcsc.to_host();
  EXPECT_EQ(csc_back.col_ptr, csc.col_ptr);
  EXPECT_EQ(csc_back.values, csc.values);

  const Bsr bsr = csr_to_bsr(coo_to_csr(coo), 4);
  DeviceBsr dbsr(ctx_, bsr);
  const Bsr bsr_back = dbsr.to_host();
  EXPECT_EQ(bsr_back.block_row_ptr, bsr.block_row_ptr);
  EXPECT_EQ(bsr_back.values, bsr.values);
  EXPECT_EQ(dbsr.block_count(), bsr.block_count());
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, DeviceSparse, ::testing::Values(1, 4));

}  // namespace
}  // namespace fastsc::sparse
