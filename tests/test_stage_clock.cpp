#include "common/stage_clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace fastsc {
namespace {

void spin_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(StageClock, UnknownStageIsZero) {
  StageClock clock;
  EXPECT_EQ(clock.seconds("never"), 0.0);
  EXPECT_EQ(clock.total_seconds(), 0.0);
}

TEST(StageClock, AccumulatesElapsedTime) {
  StageClock clock;
  clock.start("a");
  spin_ms(20);
  clock.stop();
  EXPECT_GE(clock.seconds("a"), 0.015);
  EXPECT_LT(clock.seconds("a"), 2.0);
}

TEST(StageClock, StartPausesPreviousStage) {
  StageClock clock;
  clock.start("a");
  spin_ms(5);
  clock.start("b");  // pauses "a", banking its elapsed time
  spin_ms(5);
  clock.stop();  // stops "b", resumes "a"
  const double a_banked = clock.seconds("a");
  EXPECT_GE(a_banked, 0.004);
  EXPECT_GE(clock.seconds("b"), 0.004);
  spin_ms(5);
  clock.stop();  // now "a" ends, adding the post-"b" interval
  EXPECT_GT(clock.seconds("a"), a_banked);  // it really resumed
}

TEST(StageClock, NestedStartTracksDepthAndExclusiveTime) {
  // Regression for nested instrumentation (an inner span starting a stage
  // while an outer stage runs): the stack must pause/resume rather than
  // orphan the outer stage, and total_seconds() must not double-count the
  // nested interval.
  StageClock clock;
  EXPECT_EQ(clock.depth(), 0u);
  clock.start("outer");
  EXPECT_EQ(clock.depth(), 1u);
  spin_ms(5);
  clock.start("inner");
  EXPECT_EQ(clock.depth(), 2u);
  spin_ms(50);
  clock.stop();
  EXPECT_EQ(clock.depth(), 1u);
  spin_ms(5);
  clock.stop();
  EXPECT_EQ(clock.depth(), 0u);
  const double outer = clock.seconds("outer");
  const double inner = clock.seconds("inner");
  EXPECT_GE(outer, 0.008);  // both outer slices, not the inner one
  EXPECT_GE(inner, 0.045);
  EXPECT_DOUBLE_EQ(clock.total_seconds(), outer + inner);
  // Exclusive accounting: outer's own time excludes inner's ~50ms interval.
  EXPECT_LT(outer, 0.045);
}

TEST(StageClock, NestedSameStageResumesAccumulation) {
  StageClock clock;
  clock.start("x");
  clock.start("x");  // nested start of the same stage
  spin_ms(5);
  clock.stop();
  clock.stop();
  EXPECT_EQ(clock.depth(), 0u);
  EXPECT_GE(clock.seconds("x"), 0.004);
  ASSERT_EQ(clock.stages().size(), 1u);
}

TEST(StageClock, ResumingAccumulates) {
  StageClock clock;
  clock.start("x");
  spin_ms(10);
  clock.stop();
  const double first = clock.seconds("x");
  clock.start("x");
  spin_ms(10);
  clock.stop();
  EXPECT_GT(clock.seconds("x"), first);
}

TEST(StageClock, AddInjectsExternalTime) {
  StageClock clock;
  clock.add("modeled", 1.5);
  clock.add("modeled", 0.5);
  EXPECT_DOUBLE_EQ(clock.seconds("modeled"), 2.0);
}

TEST(StageClock, TotalIsSumOfStages) {
  StageClock clock;
  clock.add("a", 1.0);
  clock.add("b", 2.0);
  EXPECT_DOUBLE_EQ(clock.total_seconds(), 3.0);
}

TEST(StageClock, StagesInFirstStartOrder) {
  StageClock clock;
  clock.add("third", 0);
  clock.add("first", 0);
  clock.add("third", 1);
  const auto names = clock.stages();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "third");
  EXPECT_EQ(names[1], "first");
}

TEST(StageClock, ClearRemovesEverything) {
  StageClock clock;
  clock.add("a", 1.0);
  clock.clear();
  EXPECT_EQ(clock.total_seconds(), 0.0);
  EXPECT_TRUE(clock.stages().empty());
}

TEST(StageClock, DoubleStopIsHarmless) {
  StageClock clock;
  clock.start("a");
  clock.stop();
  const double t = clock.seconds("a");
  clock.stop();
  EXPECT_DOUBLE_EQ(clock.seconds("a"), t);
}

TEST(StageClock, ConcurrentAddsFromWorkerThreadsAllLand) {
  // The async runtime calls add() from stream threads while the pipeline
  // drives start()/stop() from its own thread; every modeled second must be
  // accounted and no entry lost to a race.
  StageClock clock;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 500;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&clock, w] {
      const std::string mine = "worker-" + std::to_string(w % 2);
      for (int i = 0; i < kAddsPerThread; ++i) {
        clock.add("pcie", 0.001);
        clock.add(mine, 0.002);
      }
    });
  }
  clock.start("driver");
  spin_ms(5);
  clock.stop();
  for (std::thread& t : workers) t.join();
  EXPECT_NEAR(clock.seconds("pcie"), 0.001 * kThreads * kAddsPerThread, 1e-9);
  EXPECT_NEAR(clock.seconds("worker-0") + clock.seconds("worker-1"),
              0.002 * kThreads * kAddsPerThread, 1e-9);
  EXPECT_GT(clock.seconds("driver"), 0.0);
}

TEST(StageClock, CopyAndMovePreserveRecordedTimes) {
  StageClock clock;
  clock.add("a", 1.25);
  StageClock copied(clock);
  EXPECT_DOUBLE_EQ(copied.seconds("a"), 1.25);
  copied.add("a", 0.25);
  EXPECT_DOUBLE_EQ(copied.seconds("a"), 1.5);
  EXPECT_DOUBLE_EQ(clock.seconds("a"), 1.25);  // deep copy, not shared
  StageClock moved(std::move(copied));
  EXPECT_DOUBLE_EQ(moved.seconds("a"), 1.5);
  clock = moved;
  EXPECT_DOUBLE_EQ(clock.seconds("a"), 1.5);
}

}  // namespace
}  // namespace fastsc
