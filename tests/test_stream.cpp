// Tests for the asynchronous stream/event runtime: ordering guarantees,
// event fence semantics, pinned-staging snapshot behaviour, deterministic
// transfer/compute overlap attribution on the virtual timeline, and error
// propagation (including DeviceOutOfMemory from concurrent async
// allocations).
#include "device/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "device/event.h"
#include "fault/fault.h"

namespace fastsc::device {
namespace {

/// A transfer model where modeled seconds == bytes / 1e6, exactly (no
/// latency, unit efficiency) — lets tests predict timeline placement.
TransferModel unit_model() {
  TransferModel m;
  m.bandwidth_bytes_per_sec = 1e6;
  m.efficiency = 1.0;
  m.latency_seconds = 0;
  return m;
}

TEST(Stream, OpsRunInFifoOrder) {
  DeviceContext ctx(1);
  Stream s(ctx, "fifo");
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.enqueue([&order, i] { order.push_back(i); });
  }
  s.synchronize();
  std::vector<int> expected(100);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(Stream, LaunchAsyncIsStreamOrdered) {
  DeviceContext ctx(1);
  Stream s(ctx, "launch");
  DeviceBuffer<double> dev(ctx, 64);
  double* p = dev.data();
  s.launch_async(64, [=](index_t i) { p[i] = static_cast<double>(i); });
  s.launch_async(64, [=](index_t i) { p[i] *= 2; });
  std::vector<double> back(64);
  s.copy_to_host_async(std::span<double>(back), dev);
  s.synchronize();
  for (index_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(back[static_cast<usize>(i)], 2.0 * static_cast<double>(i));
  }
}

TEST(Stream, CopyToDeviceSnapshotsAtEnqueue) {
  DeviceContext ctx(1);
  Stream s(ctx, "snapshot");
  DeviceBuffer<double> dev(ctx, 256);
  std::vector<double> host(256, 1.0);
  // Hold the stream busy so the copy op cannot run before the overwrite.
  s.enqueue([] { std::this_thread::sleep_for(std::chrono::milliseconds(20)); });
  s.copy_to_device_async(dev, std::span<const double>(host));
  std::fill(host.begin(), host.end(), 2.0);  // caller reuses its buffer
  s.synchronize();
  const std::vector<double> back = dev.to_host();
  for (double v : back) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(Stream, StagingBlocksAreRecycled) {
  DeviceContext ctx(1);
  Stream s(ctx, "staging");
  DeviceBuffer<double> dev(ctx, 128);
  std::vector<double> host(128, 3.0);
  s.copy_to_device_async(dev, std::span<const double>(host));
  s.synchronize();
  s.copy_to_device_async(dev, std::span<const double>(host));
  s.synchronize();
  const PinnedPool::Stats stats = ctx.staging_pool().stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_GE(stats.reuses, 1u);
  EXPECT_EQ(stats.allocated_blocks, 1u);
}

TEST(Stream, AsyncOpsAreCountedSeparately) {
  DeviceContext ctx(1);
  Stream s(ctx, "counted");
  DeviceBuffer<double> dev(ctx, 16);
  std::vector<double> host(16, 0.0);
  s.copy_to_device_async(dev, std::span<const double>(host));
  s.launch_async(16, [p = dev.data()](index_t i) { p[i] = 1; });
  s.copy_to_host_async(std::span<double>(host), dev);
  s.synchronize();
  const DeviceCounters c = ctx.counters_snapshot();
  EXPECT_EQ(c.async_copies, 2u);
  EXPECT_EQ(c.async_kernel_launches, 1u);
}

TEST(Event, WaitBeforeRecordBlocksUntilRecorded) {
  DeviceContext ctx(1);
  Stream a(ctx, "producer");
  Stream b(ctx, "consumer");
  Event e;
  std::atomic<bool> ran{false};
  b.wait(e);
  b.add_callback([&ran] { ran = true; });
  // The wait is a fence: until someone records, the consumer cannot make
  // progress no matter how long we give it.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(ran.load());
  EXPECT_FALSE(e.query());
  a.record(e);
  b.synchronize();
  EXPECT_TRUE(ran.load());
  EXPECT_TRUE(e.query());
}

TEST(Event, CrossStreamOrderIsEnforced) {
  DeviceContext ctx(1);
  Stream a(ctx, "a");
  Stream b(ctx, "b");
  Event e;
  std::mutex mu;
  std::vector<char> order;
  a.add_callback([&] {
    std::lock_guard lock(mu);
    order.push_back('a');
  });
  a.record(e);
  b.wait(e);
  b.add_callback([&] {
    std::lock_guard lock(mu);
    order.push_back('b');
  });
  a.synchronize();
  b.synchronize();
  EXPECT_EQ(order, (std::vector<char>{'a', 'b'}));
}

TEST(Event, CarriesVirtualTimestampAcrossStreams) {
  DeviceContext ctx(1, unit_model());
  Stream a(ctx, "a");
  Stream b(ctx, "b");
  DeviceBuffer<unsigned char> dev(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  // 500000 bytes at 1e6 B/s = 0.5 virtual seconds on stream a.
  a.copy_to_device_async(dev.data(), std::span<const unsigned char>(host));
  Event e;
  a.record(e);
  b.wait(e);
  b.launch_async(
      1, [](index_t) {}, LaunchConfig{.modeled_seconds = 0.25});
  a.synchronize();
  b.synchronize();
  EXPECT_DOUBLE_EQ(e.virtual_time(), 0.5);
  // b's clock: joined to 0.5 by the wait, then +0.25 of modeled kernel.
  EXPECT_DOUBLE_EQ(b.virtual_now(), 0.75);
}

TEST(Overlap, ConcurrentCopyAndKernelCountedOnce) {
  DeviceContext ctx(1, unit_model());
  Stream transfer(ctx, "transfer");
  Stream compute(ctx, "compute");
  DeviceBuffer<unsigned char> dev(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  // Copy occupies the link over virtual [0, 0.5]; the kernel occupies the
  // compute engine over [0, 1].  Intersection = 0.5, counted exactly once.
  transfer.copy_to_device_async(dev.data(),
                                std::span<const unsigned char>(host));
  compute.launch_async(
      1, [](index_t) {}, LaunchConfig{.modeled_seconds = 1.0});
  transfer.synchronize();
  compute.synchronize();
  const DeviceCounters c = ctx.counters_snapshot();
  EXPECT_DOUBLE_EQ(c.overlapped_seconds, 0.5);
  EXPECT_DOUBLE_EQ(c.overlapped_h2d_seconds, 0.5);
  EXPECT_DOUBLE_EQ(c.overlapped_d2h_seconds, 0.0);
  EXPECT_DOUBLE_EQ(c.modeled_pipeline_seconds(),
                   c.kernel_seconds + c.modeled_transfer_seconds - 0.5);
}

TEST(Overlap, SameStreamSerializesWithNoOverlap) {
  DeviceContext ctx(1, unit_model());
  Stream s(ctx, "serial");
  DeviceBuffer<unsigned char> dev(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  // Same ops as above, one stream: copy [0, 0.5], then kernel [0.5, 1.5].
  s.copy_to_device_async(dev.data(), std::span<const unsigned char>(host));
  s.launch_async(1, [](index_t) {}, LaunchConfig{.modeled_seconds = 1.0});
  s.synchronize();
  const DeviceCounters c = ctx.counters_snapshot();
  EXPECT_DOUBLE_EQ(c.overlapped_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.virtual_now(), 1.5);
}

TEST(Overlap, BidirectionalSplitAttribution) {
  DeviceContext ctx(1, unit_model());
  Stream transfer(ctx, "transfer");
  Stream compute(ctx, "compute");
  DeviceBuffer<unsigned char> dev(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  // Link: H2D [0, 0.5] then D2H [0.5, 1.0]; compute engine: kernel [0, 1].
  // Both legs fully hide behind the kernel: h2d overlap 0.5, d2h 0.5.
  transfer.copy_to_device_async(dev.data(),
                                std::span<const unsigned char>(host));
  transfer.copy_to_host_async(std::span<unsigned char>(host), dev.data());
  compute.launch_async(
      1, [](index_t) {}, LaunchConfig{.modeled_seconds = 1.0});
  transfer.synchronize();
  compute.synchronize();
  const DeviceCounters c = ctx.counters_snapshot();
  EXPECT_DOUBLE_EQ(c.overlapped_h2d_seconds, 0.5);
  EXPECT_DOUBLE_EQ(c.overlapped_d2h_seconds, 0.5);
  EXPECT_DOUBLE_EQ(c.overlapped_seconds, 1.0);
}

TEST(Stream, SynchronizeJoinsHostClock) {
  DeviceContext ctx(1, unit_model());
  Stream s(ctx, "join");
  DeviceBuffer<unsigned char> dev(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);
  s.copy_to_device_async(dev.data(), std::span<const unsigned char>(host));
  s.synchronize();
  // The host clock has advanced to at least the stream's position, so a
  // following host-side kernel cannot appear to overlap the stream's copy.
  const double before_overlap = ctx.counters_snapshot().overlapped_seconds;
  launch(ctx, 1, [](index_t) {}, LaunchConfig{.modeled_seconds = 1.0});
  EXPECT_DOUBLE_EQ(ctx.counters_snapshot().overlapped_seconds, before_overlap);
}

TEST(StreamError, AsyncAllocationFailureSurfacesAtSynchronize) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  Stream s(ctx, "oom");
  std::atomic<bool> later_ran{false};
  s.enqueue([&ctx] {
    DeviceBuffer<double> big(ctx, 1024);  // 8 KiB > 1000 B budget
  });
  s.enqueue([&later_ran] { later_ran = true; });
  EXPECT_THROW(s.synchronize(), DeviceOutOfMemory);
  // Ops after the failure are skipped (sticky error), and the error is
  // cleared once thrown: the stream is usable again.
  EXPECT_FALSE(later_ran.load());
  s.enqueue([&later_ran] { later_ran = true; });
  s.synchronize();
  EXPECT_TRUE(later_ran.load());
}

TEST(StreamError, ConcurrentAsyncAllocationsExactlyOneFails) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  Stream a(ctx, "alloc-a");
  Stream b(ctx, "alloc-b");
  // Two async allocations of 800 bytes race for a 1000-byte budget; the
  // accounting is serialized, so exactly one succeeds and the other throws.
  std::mutex mu;
  std::vector<DeviceBuffer<unsigned char>> live;
  auto alloc = [&] {
    DeviceBuffer<unsigned char> buf(ctx, 800);
    std::lock_guard lock(mu);
    live.push_back(std::move(buf));
  };
  a.enqueue(alloc);
  b.enqueue(alloc);
  int failures = 0;
  try {
    a.synchronize();
  } catch (const DeviceOutOfMemory&) {
    ++failures;
  }
  try {
    b.synchronize();
  } catch (const DeviceOutOfMemory&) {
    ++failures;
  }
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(live.size(), 1u);
}

TEST(StreamError, EventRecordFiresAfterFailureSoWaitersDoNotDeadlock) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  Stream producer(ctx, "failing-producer");
  Stream consumer(ctx, "consumer");
  Event e;
  producer.enqueue([&ctx] { DeviceBuffer<double> big(ctx, 1024); });
  producer.record(e);  // must fire despite the failed op before it
  consumer.wait(e);
  std::atomic<bool> consumed{false};
  consumer.add_callback([&consumed] { consumed = true; });
  EXPECT_THROW(producer.synchronize(), DeviceOutOfMemory);
  consumer.synchronize();  // would deadlock if the record were skipped
  EXPECT_TRUE(consumed.load());
}

TEST(StreamError, StickyErrorCarriesOriginatingSite) {
  // Regression: the sticky first error used to surface from a later
  // synchronize() with no indication of *which* op failed.  The stream now
  // annotates the in-flight exception with the failing op's label (without
  // changing its dynamic type).
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  Stream s(ctx, "sticky-site");
  s.enqueue_labeled("upload-weights",
                    [&ctx] { DeviceBuffer<double> big(ctx, 1024); });
  s.enqueue([] {});  // skipped; must not re-annotate the sticky error
  try {
    s.synchronize();
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {  // dynamic type preserved
    EXPECT_EQ(e.site(), "upload-weights");
    EXPECT_NE(std::string(e.what()).find("[site: upload-weights]"),
              std::string::npos);
  }
}

TEST(StreamError, FirstErrorSiteWinsOverLaterFailures) {
  DeviceContext ctx(1);
  ctx.set_memory_limit(1000);
  Stream s(ctx, "first-wins");
  s.enqueue_labeled("first-bad",
                    [&ctx] { DeviceBuffer<double> big(ctx, 1024); });
  s.enqueue_labeled("second-bad",
                    [&ctx] { DeviceBuffer<double> big(ctx, 2048); });
  try {
    s.synchronize();
    FAIL() << "expected DeviceOutOfMemory";
  } catch (const DeviceOutOfMemory& e) {
    EXPECT_EQ(e.site(), "first-bad");
  }
}

TEST(StreamError, ExhaustedAsyncRetryPreservesTypeAndSite) {
  // Every occurrence of the stream h2d site faults, so the bounded retry
  // gives up; the error that surfaces is still the transient transfer type,
  // annotated with the site where it originated.
  fault::ArmScope scope(
      fault::FaultPlan::parse("site=stream.h2d,nth=1,count=0"));
  DeviceContext ctx(1);
  Stream s(ctx, "retry-exhausted");
  DeviceBuffer<double> dev(ctx, 8);
  std::vector<double> host(8, 1.0);
  s.copy_to_device_async(dev, std::span<const double>(host));
  try {
    s.synchronize();
    FAIL() << "expected DeviceTransferError";
  } catch (const DeviceTransferError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(e.site(), "stream.h2d");
  }
  EXPECT_EQ(ctx.counters_snapshot().transfer_retries,
            static_cast<usize>(ctx.transfer_retry().max_retries));
}

TEST(Stream, DestructorDrainsOutstandingWork) {
  DeviceContext ctx(1);
  std::atomic<int> done{0};
  {
    Stream s(ctx, "drain");
    for (int i = 0; i < 10; ++i) {
      s.enqueue([&done] { ++done; });
    }
  }
  EXPECT_EQ(done.load(), 10);
}

}  // namespace
}  // namespace fastsc::device
