#include "solvers/subspace_iteration.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "lanczos/dense_eig.h"

namespace fastsc::solvers {
namespace {

TEST(SubspaceIteration, DominantPairsOfDiagonal) {
  const index_t n = 80;
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  const auto result = subspace_iteration(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i + 1) * x[i];
      },
      cfg);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.eigenvalues[0], 80, 1e-5);
  EXPECT_NEAR(result.eigenvalues[1], 79, 1e-5);
  EXPECT_NEAR(result.eigenvalues[2], 78, 1e-5);
}

TEST(SubspaceIteration, MatchesDenseOracleOnRandomSymmetric) {
  const index_t n = 60;
  Rng rng(5);
  std::vector<real> a(static_cast<usize>(n) * static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      const real v = rng.uniform(-1, 1);
      a[static_cast<usize>(i * n + j)] = v;
      a[static_cast<usize>(j * n + i)] = v;
    }
  }
  const auto dense = lanczos::dense_sym_eig(a.data(), n);
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  cfg.tol = 1e-8;
  cfg.max_iters = 3000;
  const auto result = subspace_iteration(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) {
          real acc = 0;
          for (index_t j = 0; j < n; ++j) {
            acc += a[static_cast<usize>(i * n + j)] * x[j];
          }
          y[i] = acc;
        }
      },
      cfg);
  ASSERT_TRUE(result.converged);
  // Dominant = largest magnitude: compare against both spectrum ends.
  std::vector<real> by_mag(dense.eigenvalues);
  std::sort(by_mag.begin(), by_mag.end(),
            [](real x, real y) { return std::fabs(x) > std::fabs(y); });
  EXPECT_NEAR(result.eigenvalues[0], by_mag[0], 1e-6);
  EXPECT_NEAR(result.eigenvalues[1], by_mag[1], 1e-6);
}

TEST(SubspaceIteration, BlockMatvecPathMatchesPerVectorPath) {
  const index_t n = 60;
  Rng rng(19);
  std::vector<real> a(static_cast<usize>(n) * static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) {
      const real v = rng.uniform(-1, 1);
      a[static_cast<usize>(i * n + j)] = v;
      a[static_cast<usize>(j * n + i)] = v;
    }
  }
  auto apply_row = [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      real acc = 0;
      for (index_t j = 0; j < n; ++j) {
        acc += a[static_cast<usize>(i * n + j)] * x[j];
      }
      y[i] = acc;
    }
  };
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  cfg.tol = 1e-8;
  cfg.max_iters = 3000;
  const auto scalar = subspace_iteration(apply_row, cfg);

  index_t block_calls = 0;
  cfg.block_matvec = [&](const real* x, real* y, index_t nvec) {
    ++block_calls;
    for (index_t v = 0; v < nvec; ++v) apply_row(x + v * n, y + v * n);
  };
  const auto blocked = subspace_iteration(apply_row, cfg);

  // The block operator applies A row-for-row identically, so the whole
  // iteration — same RNG, same panels — must reproduce the scalar run.
  ASSERT_TRUE(blocked.converged);
  EXPECT_GT(block_calls, 0);
  EXPECT_EQ(blocked.iterations, scalar.iterations);
  EXPECT_EQ(blocked.matvec_count, scalar.matvec_count);
  ASSERT_EQ(blocked.eigenvalues.size(), scalar.eigenvalues.size());
  for (usize i = 0; i < scalar.eigenvalues.size(); ++i) {
    EXPECT_DOUBLE_EQ(blocked.eigenvalues[i], scalar.eigenvalues[i]);
  }
  EXPECT_EQ(blocked.eigenvectors, scalar.eigenvectors);
}

TEST(SubspaceIteration, EigenvectorResiduals) {
  // Well-separated dominant eigenvalues (subspace iteration converges at
  // the eigenvalue-ratio rate, so a clustered spectrum would stall — that
  // is exactly what bench_ablation_eigensolvers demonstrates).
  const index_t n = 70;
  auto matvec = [&](const real* x, real* y) {
    for (index_t i = 0; i < n; ++i) {
      const real diag = i < 3 ? 100.0 / static_cast<real>(1 + i) : 1.0;
      y[i] = diag * x[i];
      if (i > 0) y[i] += 0.1 * x[i - 1];
      if (i + 1 < n) y[i] += 0.1 * x[i + 1];
    }
  };
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 3;
  const auto result = subspace_iteration(matvec, cfg);
  ASSERT_TRUE(result.converged);
  std::vector<real> av(static_cast<usize>(n));
  for (index_t k = 0; k < 3; ++k) {
    const real* v = result.eigenvectors.data() + k * n;
    matvec(v, av.data());
    real worst = 0;
    for (index_t i = 0; i < n; ++i) {
      worst = std::max(worst,
                       std::fabs(av[static_cast<usize>(i)] -
                                 result.eigenvalues[static_cast<usize>(k)] *
                                     v[i]));
    }
    EXPECT_LT(worst, 1e-6);
  }
}

TEST(SubspaceIteration, ReportsNonConvergenceHonestly) {
  const index_t n = 100;
  // Clustered dominant eigenvalues (1.0 vs 0.9999) with a tiny budget.
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 2;
  cfg.max_iters = 3;
  cfg.tol = 1e-12;
  const auto result = subspace_iteration(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) {
          y[i] = (i == 0 ? 1.0 : (i == 1 ? 0.9999 : 0.1)) * x[i];
        }
      },
      cfg);
  EXPECT_FALSE(result.converged);
  EXPECT_LE(result.iterations, 3);
}

TEST(SubspaceIteration, ValidatesConfig) {
  SubspaceConfig cfg;
  cfg.n = 0;
  EXPECT_THROW((void)subspace_iteration([](const real*, real*) {}, cfg),
               std::invalid_argument);
  cfg.n = 5;
  cfg.nev = 6;
  EXPECT_THROW((void)subspace_iteration([](const real*, real*) {}, cfg),
               std::invalid_argument);
}

TEST(SubspaceIteration, CountsMatvecs) {
  const index_t n = 30;
  SubspaceConfig cfg;
  cfg.n = n;
  cfg.nev = 1;
  const auto result = subspace_iteration(
      [&](const real* x, real* y) {
        for (index_t i = 0; i < n; ++i) y[i] = static_cast<real>(i) * x[i];
      },
      cfg);
  EXPECT_GT(result.matvec_count, 0);
}

}  // namespace
}  // namespace fastsc::solvers
