#include "common/table.h"

#include <gtest/gtest.h>

namespace fastsc {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t("demo");
  t.header({"a", "bee"});
  t.row({"1", "2"});
  t.row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("bee"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(TextTable, ColumnsAreAligned) {
  TextTable t;
  t.header({"x", "y"});
  t.row({"longvalue", "1"});
  const std::string s = t.to_string();
  // Header "y" must start at the same column as "1".
  const auto header_line = s.substr(0, s.find('\n'));
  EXPECT_GE(header_line.size(), std::string("longvalue").size());
}

TEST(TextTable, CsvEscapesNothingButJoins) {
  TextTable t;
  t.header({"a", "b"});
  t.row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, ShortRowsPadInAscii) {
  TextTable t;
  t.header({"a", "b", "c"});
  t.row({"1"});
  EXPECT_NO_THROW((void)t.to_string());
}

TEST(TextTable, FmtSecondsPrecisionTiers) {
  EXPECT_EQ(TextTable::fmt_seconds(0.03312345), "0.03312");
  EXPECT_EQ(TextTable::fmt_seconds(5.40712), "5.407");
  EXPECT_EQ(TextTable::fmt_seconds(1785.17), "1785.2");
}

TEST(TextTable, FmtSpeedup) { EXPECT_EQ(TextTable::fmt_speedup(12.34), "12.3x"); }

TEST(TextTable, FmtIndex) { EXPECT_EQ(TextTable::fmt(index_t{12345}), "12345"); }

TEST(TextTable, FmtDoublePrecision) {
  EXPECT_EQ(TextTable::fmt(3.14159, 3), "3.14");
}

TEST(TextTable, EmptyTableRenders) {
  TextTable t;
  EXPECT_EQ(t.to_string(), "");
  EXPECT_EQ(t.to_csv(), "");
}

}  // namespace
}  // namespace fastsc
