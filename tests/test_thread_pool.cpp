#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "common/cancel.h"
#include "common/par.h"

namespace fastsc {
namespace {

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  int calls = 0;
  pool.run_workers([&](usize w) {
    EXPECT_EQ(w, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, EveryWorkerInvokedExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(4);
  pool.run_workers([&](usize w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RepeatedDispatchesAreIndependent) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run_workers([&](usize) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

// Service executors share one pool: dispatches from several threads must
// serialize cleanly, each job running every worker exactly once.
TEST(ThreadPool, ConcurrentDispatchersAreSerialized) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 4; ++t) {
    callers.emplace_back([&] {
      for (int r = 0; r < 25; ++r) {
        pool.run_workers([&](usize) { total.fetch_add(1); });
      }
    });
  }
  for (std::thread& c : callers) c.join();
  EXPECT_EQ(total.load(), 4 * 25 * 2);
}

// Workers must observe the dispatcher's cancellation governor, so per-job
// deadlines govern the parallel sections run on the job's behalf.
TEST(ThreadPool, DispatchPropagatesBoundGovernor) {
  ThreadPool pool(4);
  cancel::Governor gov;
  const cancel::GovernorBindScope bind(&gov);
  std::atomic<int> mismatches{0};
  pool.run_workers([&](usize) {
    if (&cancel::current_governor() != &gov) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  // And an unbound dispatcher leaves workers on the default governor.
  const cancel::GovernorBindScope unbind(nullptr);
  std::atomic<int> defaulted{0};
  pool.run_workers([&](usize) {
    if (&cancel::current_governor() == &cancel::governor()) {
      defaulted.fetch_add(1);
    }
  });
  EXPECT_EQ(defaulted.load(), static_cast<int>(pool.worker_count()));
}

TEST(ThreadPool, DefaultPoolIsSingleton) {
  EXPECT_EQ(&default_thread_pool(), &default_thread_pool());
  EXPECT_GE(default_thread_pool().worker_count(), 1u);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const index_t n = 10007;
  std::vector<std::atomic<int>> hits(static_cast<usize>(n));
  parallel_for(pool, index_t{0}, n,
               [&](index_t i) { hits[static_cast<usize>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, index_t{5}, index_t{5}, [&](index_t) { ++calls; });
  parallel_for(pool, index_t{5}, index_t{3}, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<index_t> sum{0};
  parallel_for(pool, index_t{10}, index_t{20},
               [&](index_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145);  // 10 + ... + 19
}

TEST(ParallelForGrain, ChunkedScheduleVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  const index_t n = 10000;
  std::vector<std::atomic<int>> hits(static_cast<usize>(n));
  parallel_for(pool, index_t{0}, n, index_t{64},
               [&](index_t i) { hits[static_cast<usize>(i)].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForGrain, NonPositiveGrainFallsBackToOwnerComputes) {
  ThreadPool pool(3);
  std::atomic<index_t> sum{0};
  parallel_for(pool, index_t{10}, index_t{110}, index_t{0},
               [&](index_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), (10 + 109) * 100 / 2);
}

TEST(ParallelForGrain, GrainLargerThanRangeRunsSerial) {
  ThreadPool pool(4);
  std::atomic<index_t> sum{0};
  parallel_for(pool, index_t{0}, index_t{7}, index_t{1000},
               [&](index_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 21);
}

TEST(ParallelForGrain, EmptyRangeDoesNothing) {
  ThreadPool pool(2);
  int calls = 0;
  parallel_for(pool, index_t{5}, index_t{5}, index_t{8},
               [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelReduce, SumsCorrectly) {
  ThreadPool pool(4);
  const index_t n = 100000;
  const auto sum = parallel_reduce(
      pool, index_t{0}, n, index_t{0}, [](index_t i) { return i; },
      [](index_t a, index_t b) { return a + b; });
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const auto result = parallel_reduce(
      pool, index_t{3}, index_t{3}, index_t{-7}, [](index_t i) { return i; },
      [](index_t a, index_t b) { return a + b; });
  EXPECT_EQ(result, -7);
}

TEST(ParallelReduce, MaxReduction) {
  ThreadPool pool(4);
  std::vector<double> data(5000);
  for (usize i = 0; i < data.size(); ++i) {
    data[i] = static_cast<double>((i * 37) % 1000);
  }
  data[1234] = 5000.0;
  const double m = parallel_reduce(
      pool, index_t{0}, static_cast<index_t>(data.size()), 0.0,
      [&](index_t i) { return data[static_cast<usize>(i)]; },
      [](double a, double b) { return a > b ? a : b; });
  EXPECT_EQ(m, 5000.0);
}

}  // namespace
}  // namespace fastsc
