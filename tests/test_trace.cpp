// Tests for the trace recorder: disabled fast path, span/counter emission,
// concurrent recording, JSON shape, and the contract the trace_check CTest
// leans on — the virtual-timeline intervals in the trace reproduce
// DeviceCounters::overlapped_seconds when recomputed pairwise.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "device/device.h"
#include "device/executor.h"

namespace fastsc::obs {
namespace {

TEST(Trace, DisabledRecorderDropsEverything) {
  TraceRecorder rec;
  rec.set_enabled(false);
  rec.complete(kWallPid, 1, "span", "cat", 0.0, 1.0);
  rec.counter("c", 1.0, 0.0);
  EXPECT_EQ(rec.event_count(), 0u);
}

TEST(Trace, DisabledScopedSpanRecordsNothing) {
  trace().set_enabled(false);
  trace().clear();
  {
    ScopedSpan span("invisible");
  }
  EXPECT_EQ(trace().event_count(), 0u);
}

TEST(Trace, ScopedSpanRecordsCompleteEventOnWallTrack) {
  const TraceEnableScope on(true);
  trace().clear();
  {
    ScopedSpan span("work", "test", {{"n", 7.0}});
  }
  const std::vector<TraceEvent> events = trace().snapshot();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  EXPECT_EQ(e.name, "work");
  EXPECT_EQ(e.cat, "test");
  EXPECT_EQ(e.phase, 'X');
  EXPECT_EQ(e.pid, kWallPid);
  EXPECT_GT(e.tid, 0u);
  EXPECT_GT(e.ts_us, 0.0);
  EXPECT_GE(e.dur_us, 0.0);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].key, "n");
  EXPECT_DOUBLE_EQ(e.args[0].num, 7.0);
}

TEST(Trace, CounterEventCarriesValue) {
  const TraceEnableScope on(true);
  trace().clear();
  trace().counter("lanczos.worst_residual", 0.125, 10.0);
  const std::vector<TraceEvent> events = trace().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, 'C');
  EXPECT_EQ(events[0].name, "lanczos.worst_residual");
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].args[0].num, 0.125);
}

TEST(Trace, ConcurrentSpansAllLandOnDistinctTracks) {
  const TraceEnableScope on(true);
  trace().clear();
  constexpr int kThreads = 8;
  constexpr int kSpansEach = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kSpansEach; ++i) {
        ScopedSpan span("burst");
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const std::vector<TraceEvent> events = trace().snapshot();
  ASSERT_EQ(events.size(),
            static_cast<usize>(kThreads) * static_cast<usize>(kSpansEach));
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());
  EXPECT_EQ(tids.size(), static_cast<usize>(kThreads));
}

TEST(Trace, JsonHasMetadataTracksAndEvents) {
  const TraceEnableScope on(true);
  trace().clear();
  trace().complete(kVirtualPid, kLinkTid, "h2d", "transfer", 0.0, 5.0,
                   {{"bytes", 4096.0}});
  std::ostringstream os;
  trace().write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"PCIe link\""), std::string::npos);
  EXPECT_NE(json.find("\"compute engine\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"h2d\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
}

TEST(Trace, EnableScopeRestoresPreviousState) {
  trace().set_enabled(false);
  {
    const TraceEnableScope on(true);
    EXPECT_TRUE(trace_enabled());
    {
      const TraceEnableScope inner(false);  // "false" must not disable
      EXPECT_TRUE(trace_enabled());
    }
    EXPECT_TRUE(trace_enabled());
  }
  EXPECT_FALSE(trace_enabled());
}

/// Pairwise link-x-compute overlap from the virtual-timeline events, the
/// same sum DeviceContext accumulates incrementally (and the recomputation
/// tools/check_trace.py performs on the JSON).
double recompute_overlap_seconds(const std::vector<TraceEvent>& events) {
  std::vector<std::pair<double, double>> link;
  std::vector<std::pair<double, double>> compute;
  for (const TraceEvent& e : events) {
    if (e.phase != 'X' || e.pid != kVirtualPid) continue;
    const std::pair<double, double> iv{e.ts_us, e.ts_us + e.dur_us};
    if (e.tid == kLinkTid) link.push_back(iv);
    if (e.tid == kComputeTid) compute.push_back(iv);
  }
  double total_us = 0;
  for (const auto& [cb, ce] : link) {
    for (const auto& [kb, ke] : compute) {
      const double ov = std::min(ce, ke) - std::max(cb, kb);
      if (ov > 0) total_us += ov;
    }
  }
  return total_us * 1e-6;
}

TEST(Trace, ExecutorOverlapMatchesDeviceCounters) {
  device::TransferModel model;
  model.bandwidth_bytes_per_sec = 1e6;
  model.efficiency = 1.0;
  model.latency_seconds = 0;
  device::DeviceContext ctx(1, model);
  device::PipelineExecutor exec(ctx, 2);
  device::DeviceBuffer<unsigned char> buf_a(ctx, 500000);
  device::DeviceBuffer<unsigned char> buf_b(ctx, 500000);
  std::vector<unsigned char> host(500000, 0);

  const TraceEnableScope on(true);
  trace().clear();
  using Exec = device::PipelineExecutor;
  // Double buffering: tile B uploads over [0, 0.5] on the link while a
  // kernel occupies the compute engine over [0, 1].
  exec.add(Exec::kTransferStream, "h2d-b", [&] {
    device::copy_h2d(ctx, buf_b.data(), host.data(), host.size());
  });
  exec.add(Exec::kComputeStream, "kernel-a", [&] {
    device::launch(
        ctx, 1, [p = buf_a.data()](index_t) { p[0] = 1; },
        device::LaunchConfig{.modeled_seconds = 1.0});
  });
  exec.run();

  const device::DeviceCounters c = ctx.counters_snapshot();
  ASSERT_DOUBLE_EQ(c.overlapped_seconds, 0.5);
  const std::vector<TraceEvent> events = trace().snapshot();
  EXPECT_NEAR(recompute_overlap_seconds(events), c.overlapped_seconds, 1e-9);

  // The wall timeline carries the executor node spans alongside.
  bool saw_h2d_node = false;
  bool saw_kernel_node = false;
  for (const TraceEvent& e : events) {
    if (e.pid != kWallPid) continue;
    if (e.name == "h2d-b") saw_h2d_node = true;
    if (e.name == "kernel-a") saw_kernel_node = true;
  }
  EXPECT_TRUE(saw_h2d_node);
  EXPECT_TRUE(saw_kernel_node);
}

// Two service jobs can hold TraceEnableScope with overlapping, non-nested
// lifetimes.  The scope is a refcount, not a save/restore of a global bool:
// destroying the first scope must not disable tracing while the second is
// still alive.
TEST(Trace, EnableScopesAreRefcountedNotSaveRestore) {
  trace().set_enabled(false);
  auto a = std::make_unique<TraceEnableScope>(true);
  auto b = std::make_unique<TraceEnableScope>(true);
  EXPECT_TRUE(trace().enabled());
  a.reset();  // non-LIFO teardown: "job A" finishes first
  EXPECT_TRUE(trace().enabled());
  b.reset();
  EXPECT_FALSE(trace().enabled());
}

TEST(Trace, EnableScopesFromConcurrentThreads) {
  trace().set_enabled(false);
  std::atomic<int> saw_disabled{0};
  std::vector<std::thread> jobs;
  for (int t = 0; t < 4; ++t) {
    jobs.emplace_back([&] {
      for (int r = 0; r < 200; ++r) {
        const TraceEnableScope on(true);
        if (!trace().enabled()) saw_disabled.fetch_add(1);
      }
    });
  }
  for (std::thread& j : jobs) j.join();
  EXPECT_EQ(saw_disabled.load(), 0);
  EXPECT_FALSE(trace().enabled());
}

TEST(Trace, SequentialDeviceWorkProducesNoOverlap) {
  device::DeviceContext ctx(1);
  const TraceEnableScope on(true);
  trace().clear();
  device::DeviceBuffer<double> buf(ctx, 1024);
  std::vector<double> host(1024, 1.0);
  buf.copy_from_host(host);
  device::launch(ctx, 1024, [p = buf.data()](index_t i) { p[i] *= 2; });
  buf.copy_to_host(host);
  const device::DeviceCounters c = ctx.counters_snapshot();
  const std::vector<TraceEvent> events = trace().snapshot();
  EXPECT_NEAR(recompute_overlap_seconds(events), c.overlapped_seconds, 1e-9);
}

}  // namespace
}  // namespace fastsc::obs
