#include "lanczos/tridiag_eig.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"

namespace fastsc::lanczos {
namespace {

/// Multiply the tridiagonal (d, e) by vector x.
std::vector<real> tri_mv(const std::vector<real>& d,
                         const std::vector<real>& e,
                         const std::vector<real>& x) {
  const index_t n = static_cast<index_t>(d.size());
  std::vector<real> y(static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) {
    y[static_cast<usize>(i)] = d[static_cast<usize>(i)] * x[static_cast<usize>(i)];
    if (i > 0) {
      y[static_cast<usize>(i)] +=
          e[static_cast<usize>(i) - 1] * x[static_cast<usize>(i) - 1];
    }
    if (i + 1 < n) {
      y[static_cast<usize>(i)] +=
          e[static_cast<usize>(i)] * x[static_cast<usize>(i) + 1];
    }
  }
  return y;
}

std::vector<real> identity(index_t n) {
  std::vector<real> z(static_cast<usize>(n) * static_cast<usize>(n), 0.0);
  for (index_t i = 0; i < n; ++i) z[static_cast<usize>(i * n + i)] = 1.0;
  return z;
}

TEST(TridiagEig, EmptyAndSingleton) {
  std::vector<real> d, e;
  EXPECT_TRUE(tridiag_eigvalues(d, e));
  d = {4.2};
  e = {};
  EXPECT_TRUE(tridiag_eigvalues(d, e));
  EXPECT_DOUBLE_EQ(d[0], 4.2);
}

TEST(TridiagEig, TwoByTwoExact) {
  // [[2, 1], [1, 2]] -> eigenvalues 1 and 3.
  std::vector<real> d{2, 2}, e{1};
  ASSERT_TRUE(tridiag_eigvalues(d, e));
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 3.0, 1e-12);
}

TEST(TridiagEig, DiagonalMatrixIsSorted) {
  std::vector<real> d{5, 1, 3}, e{0, 0};
  ASSERT_TRUE(tridiag_eigvalues(d, e));
  EXPECT_EQ(d, (std::vector<real>{1, 3, 5}));
}

TEST(TridiagEig, LaplacianChainKnownSpectrum) {
  // Path-graph Laplacian-like tridiagonal: d=2, e=-1 has eigenvalues
  // 2 - 2 cos(k pi / (n+1)), k=1..n.
  const index_t n = 20;
  std::vector<real> d(static_cast<usize>(n), 2.0);
  std::vector<real> e(static_cast<usize>(n) - 1, -1.0);
  ASSERT_TRUE(tridiag_eigvalues(d, e));
  for (index_t k = 1; k <= n; ++k) {
    const real expect =
        2.0 - 2.0 * std::cos(static_cast<real>(k) * M_PI /
                             static_cast<real>(n + 1));
    EXPECT_NEAR(d[static_cast<usize>(k - 1)], expect, 1e-10);
  }
}

class TridiagRandom : public ::testing::TestWithParam<int> {};

TEST_P(TridiagRandom, EigenpairsSatisfyResidual) {
  const index_t n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 101);
  std::vector<real> d(static_cast<usize>(n));
  std::vector<real> e(static_cast<usize>(n) - 1);
  for (real& v : d) v = rng.uniform(-2, 2);
  for (real& v : e) v = rng.uniform(-1, 1);
  const auto d0 = d;
  const auto e0 = e;

  std::vector<real> z = identity(n);
  ASSERT_TRUE(tridiag_eig(d, e, z.data(), n));

  // Ascending order.
  EXPECT_TRUE(std::is_sorted(d.begin(), d.end()));

  // Residuals ||T v - lambda v||_inf and orthonormality.
  for (index_t k = 0; k < n; ++k) {
    std::vector<real> v(static_cast<usize>(n));
    for (index_t i = 0; i < n; ++i) {
      v[static_cast<usize>(i)] = z[static_cast<usize>(i * n + k)];
    }
    const auto tv = tri_mv(d0, e0, v);
    for (index_t i = 0; i < n; ++i) {
      EXPECT_NEAR(tv[static_cast<usize>(i)],
                  d[static_cast<usize>(k)] * v[static_cast<usize>(i)], 1e-9);
    }
    real norm = 0;
    for (real x : v) norm += x * x;
    EXPECT_NEAR(norm, 1.0, 1e-10);
  }
  // Pairwise orthogonality (spot check adjacent columns).
  for (index_t k = 0; k + 1 < n; ++k) {
    real dotp = 0;
    for (index_t i = 0; i < n; ++i) {
      dotp += z[static_cast<usize>(i * n + k)] *
              z[static_cast<usize>(i * n + k + 1)];
    }
    EXPECT_NEAR(dotp, 0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagRandom,
                         ::testing::Values(2, 3, 5, 8, 16, 33, 64));

TEST(TridiagEig, TraceIsPreserved) {
  Rng rng(77);
  const index_t n = 30;
  std::vector<real> d(static_cast<usize>(n));
  std::vector<real> e(static_cast<usize>(n) - 1);
  real trace = 0;
  for (real& v : d) {
    v = rng.uniform(-1, 1);
    trace += v;
  }
  for (real& v : e) v = rng.uniform(-1, 1);
  ASSERT_TRUE(tridiag_eigvalues(d, e));
  real sum = 0;
  for (real v : d) sum += v;
  EXPECT_NEAR(sum, trace, 1e-10);
}

}  // namespace
}  // namespace fastsc::lanczos
