#!/usr/bin/env python3
"""Compare a fresh bench metrics snapshot against a committed baseline.

Both inputs are metrics-registry JSON snapshots (the --metrics-out format:
{"counters": {...}, "gauges": {...}, "histograms": {...}}).  The tolerance
file (tools/bench_tolerances.json) names, per suite, the metrics the gate
watches and how to judge each one:

  direction "lower_better":  fail if fresh > baseline * (1 + rel_tol)
  direction "higher_better": fail if fresh < baseline * (1 - rel_tol)
  direction "equal":         fail if |fresh - baseline| > rel_tol * max(
                             |baseline|, 1e-12) — rel_tol 0 means exact
  direction "report_only":   print the delta, never fail

Wall-clock latencies are report_only by design: this gate runs on shared CI
machines, so it holds the line on *modeled* quantities (worst-wave nnz,
rejection rate, hit ratio) that are deterministic for pinned flags, and
merely narrates the noisy ones.

--degrade NAME=FACTOR multiplies the fresh value by FACTOR before judging;
the perf_regression ctest uses it to prove the gate actually fails when the
SpMV balance regresses 2x.

Exit status: 0 all gated metrics pass, 1 any failure or missing metric.

Usage:
  check_bench_regression.py --suite spmv_balance \
      --baseline bench/baselines/BENCH_spmv_balance.json \
      --fresh build/fresh.json \
      [--tolerances tools/bench_tolerances.json] \
      [--degrade spmv.wave_max_nnz=2.0]
"""

import argparse
import json
import os
import sys


def fail(msg):
    print("check_bench_regression: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(f"{path}: not a JSON object")
    flat = {}
    for kind in ("counters", "gauges"):
        section = doc.get(kind, {})
        if not isinstance(section, dict):
            fail(f"{path}: '{kind}' is not an object")
        flat.update(section)
    return flat


def parse_degrades(specs):
    out = {}
    for spec in specs:
        name, sep, factor = spec.partition("=")
        if not sep:
            fail(f"malformed --degrade '{spec}' (want NAME=FACTOR)")
        try:
            out[name] = float(factor)
        except ValueError:
            fail(f"malformed --degrade factor in '{spec}'")
    return out


def judge(name, rule, base, fresh):
    """Returns (ok, verdict_text)."""
    direction = rule.get("direction", "report_only")
    rel_tol = float(rule.get("rel_tol", 0.0))
    delta = fresh - base
    rel = delta / base if base != 0 else float("inf") if delta else 0.0
    desc = (f"{name}: baseline {base:g}, fresh {fresh:g} "
            f"({rel:+.1%} vs baseline)")
    if direction == "report_only":
        return True, desc + " [report only]"
    if direction == "lower_better":
        ok = fresh <= base * (1.0 + rel_tol)
        bound = f"allowed <= baseline * {1.0 + rel_tol:g}"
    elif direction == "higher_better":
        ok = fresh >= base * (1.0 - rel_tol)
        bound = f"allowed >= baseline * {1.0 - rel_tol:g}"
    elif direction == "equal":
        ok = abs(delta) <= rel_tol * max(abs(base), 1e-12)
        bound = f"allowed |delta| <= {rel_tol:g} * |baseline|"
    else:
        fail(f"{name}: unknown direction '{direction}' in tolerances")
    return ok, desc + f" [{bound}]"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--suite", required=True,
                    help="suite key in the tolerances file")
    ap.add_argument("--baseline", required=True,
                    help="committed baseline metrics snapshot")
    ap.add_argument("--fresh", required=True,
                    help="metrics snapshot from the fresh bench run")
    ap.add_argument("--tolerances",
                    default=os.path.join(os.path.dirname(__file__),
                                         "bench_tolerances.json"),
                    help="per-suite metric tolerance spec")
    ap.add_argument("--degrade", action="append", default=[],
                    metavar="NAME=FACTOR",
                    help="multiply the fresh metric by FACTOR before "
                         "judging (gate self-test; repeatable)")
    args = ap.parse_args()

    with open(args.tolerances, "r", encoding="utf-8") as f:
        tolerances = json.load(f)
    suites = tolerances.get("suites", {})
    if args.suite not in suites:
        fail(f"suite '{args.suite}' not in {args.tolerances} "
             f"(have: {sorted(suites)})")
    rules = suites[args.suite].get("metrics", {})
    if not rules:
        fail(f"suite '{args.suite}' has no gated metrics")

    base = load_metrics(args.baseline)
    fresh = load_metrics(args.fresh)
    degrades = parse_degrades(args.degrade)
    unknown = set(degrades) - set(rules)
    if unknown:
        fail(f"--degrade names not gated by suite '{args.suite}': "
             f"{sorted(unknown)}")

    failures = []
    for name, rule in sorted(rules.items()):
        if name not in base:
            fail(f"metric '{name}' absent from baseline {args.baseline}")
        if name not in fresh:
            fail(f"metric '{name}' absent from fresh snapshot {args.fresh}")
        value = float(fresh[name])
        if name in degrades:
            value *= degrades[name]
            print(f"check_bench_regression: degrading {name} by "
                  f"{degrades[name]:g}x for the self-test")
        ok, verdict = judge(name, rule, float(base[name]), value)
        print(("  ok   " if ok else "  FAIL ") + verdict)
        if not ok:
            failures.append(name)

    if failures:
        fail(f"suite '{args.suite}': {len(failures)} metric(s) regressed: "
             f"{', '.join(failures)}")
    print(f"check_bench_regression: OK — suite '{args.suite}', "
          f"{len(rules)} metrics within tolerance")
    sys.exit(0)


if __name__ == "__main__":
    main()
