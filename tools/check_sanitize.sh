#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-heavy parts of the tree: the
# stream/event runtime (stream FIFOs, event fences, virtual clocks, the
# pipeline executor) and the thread-safe StageClock.  Usage:
#
#   tools/check_sanitize.sh [thread|address] [build-dir]
#
# Defaults to a TSan build in build-tsan/.  Exits non-zero if the build or
# any sanitized test fails.
set -euo pipefail

SANITIZER="${1:-thread}"
BUILD_DIR="${2:-build-${SANITIZER}san}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

case "${SANITIZER}" in
  thread|address) ;;
  *)
    echo "usage: $0 [thread|address] [build-dir]" >&2
    exit 2
    ;;
esac

# The async runtime's regression surface: everything that crosses stream
# threads plus the tests that drive full pipelines through it, and the
# observability layer (trace recorder / metrics registry record from
# stream and worker threads concurrently).  test_balance and test_hblas
# exercise the merge-path balanced SpMV / SpMM kernels and the threaded
# level-2 hblas paths across worker counts; test_powerlaw feeds them.
TESTS=(
  test_thread_pool
  test_stage_clock
  test_device
  test_device_algorithms
  test_stream
  test_executor
  test_spectral_pipeline
  test_trace
  test_metrics_registry
  test_attribution
  test_fault_injection
  test_degradation
  test_irlm_checkpoint
  test_cancel
  test_budget_anytime
  test_service
  test_result_cache
  test_device_group
  test_sharded_differential
  test_precision
  test_sdc
  test_hblas
  test_balance
  test_powerlaw
)

echo "== configuring ${SANITIZER}-sanitized build in ${BUILD_DIR} =="
cmake -S "${ROOT}" -B "${ROOT}/${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DFASTSC_SANITIZE="${SANITIZER}"

targets=("${TESTS[@]}")
echo "== building ${targets[*]} =="
cmake --build "${ROOT}/${BUILD_DIR}" -j "$(nproc)" --target "${targets[@]}"

status=0
for t in "${TESTS[@]}"; do
  echo "== running ${t} under ${SANITIZER} sanitizer =="
  if ! "${ROOT}/${BUILD_DIR}/tests/${t}"; then
    echo "!! ${t} FAILED" >&2
    status=1
  fi
done

if [ "${status}" -eq 0 ]; then
  echo "== all sanitized tests passed =="
fi
exit "${status}"
