#!/usr/bin/env python3
"""Validate a fastsc Chrome trace-event / Perfetto JSON trace.

Checks, in order:
  1. Schema: top-level object with a "traceEvents" list; every event has
     name/ph/ts/pid/tid; 'X' (complete) events carry a non-negative dur.
  2. Track discipline: on each virtual-device track (pid 2; device i owns
     link tid 2i+1 and compute tid 2i+2, so a single device keeps the
     historical tids 1 and 2) the spans are pairwise disjoint — every
     simulated link and compute engine is serialized, so any overlap within
     one of those tracks means the emitter is broken.  On wall-clock tracks
     (pid 1, one tid per thread) spans must be properly nested or disjoint.
  3. Counter series: every fault.* / degrade.* / service.* / cache.* /
     d2d.* counter ('C') sample is numeric, non-negative, and
     non-decreasing by timestamp — the emitters publish cumulative registry
     values, so a dip means double-reset.
  4. Optional cross-check (--metrics metrics.json): recompute the
     transfer-x-kernel overlap from the virtual-timeline intervals — summed
     over every device's (link, compute) track pair — and compare it
     against the device.overlapped_seconds gauge (and the h2d/d2h/d2d
     splits) published by the run, within --tolerance.
  5. Optional presence check (--expect-counter NAME, repeatable): fail if
     the trace carries no counter samples with that name.  The form
     "NAME>=MIN" additionally requires the final sampled value to reach
     MIN (sdc_smoke asserts sdc.detected>=1 this way).
  6. Optional gauge-ratio assertion (--expect-gauge-ratio "NUM/DEN>=MIN",
     repeatable, requires --metrics): fail unless both gauges exist in the
     metrics snapshot and NUM / DEN >= MIN.  This is how perf_smoke asserts
     the merge-path balance win from artifacts alone:
     spmv.rowchunk_wave_max_nnz / spmv.wave_max_nnz >= 2.
  7. Optional gauge-bound assertion (--expect-gauge "NAME>=MIN" or
     "NAME<=MAX", repeatable, requires --metrics): fail unless the gauge
     exists in the metrics snapshot and satisfies the bound.  service_smoke
     uses this for service.warm_vs_cold_ari >= 1.
  8. Optional byte-ratio ceiling (--expect-bytes-ratio "NUM/DEN<=MAX",
     repeatable, requires --metrics): fail unless both gauges exist and
     NUM / DEN <= MAX.  precision_smoke uses this to assert the narrow
     SpMV rung actually moves fewer staging bytes than the fp64 baseline:
     precision.fp32.spmv_stage_bytes/precision.fp64.spmv_stage_bytes<=0.55.
  9. Optional run-report attribution check (--report report.json): the
     report's "attribution" section must use disciplined site names
     (dotted lowercase identifiers, no "unattributed" bucket), carry only
     non-negative counters, have nonzero flops on every site that launched
     a kernel, keep roofline utilization in (0, 1], and its per-site sums
     must reproduce the device-counter totals — byte/launch/transfer
     counts exactly, seconds within --seconds-tolerance.  The trace
     argument is optional when --report is given.

Exit status 0 on success; 1 with a message on the first failure.

Usage:
  check_trace.py trace.json [--metrics metrics.json] [--tolerance 1e-9]
                 [--expect-counter fault.transfer_retry]
                 [--expect-gauge-ratio "a.max/b.max>=2"]
                 [--expect-gauge "service.warm_vs_cold_ari>=1"]
                 [--expect-bytes-ratio "a.bytes/b.bytes<=0.55"]
                 [--report report.json] [--seconds-tolerance 1e-6]
"""

import argparse
import json
import re
import sys

WALL_PID = 1
VIRTUAL_PID = 2
LINK_TID = 1
COMPUTE_TID = 2


def fail(msg):
    print("check_trace: FAIL: " + msg, file=sys.stderr)
    sys.exit(1)


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail('missing "traceEvents" list')
    return events


def check_schema(events):
    phases = {}
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event #{i} is not an object")
        for field in ("name", "ph", "pid", "tid"):
            if field not in e:
                fail(f"event #{i} ({e.get('name', '?')}) missing '{field}'")
        ph = e["ph"]
        phases[ph] = phases.get(ph, 0) + 1
        if ph != "M":  # metadata records carry no timestamp
            if not isinstance(e.get("ts"), (int, float)):
                fail(f"event #{i} ({e['name']}) has non-numeric ts")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)):
                fail(f"event #{i} ({e['name']}) 'X' without numeric dur")
            if dur < 0:
                fail(f"event #{i} ({e['name']}) negative dur {dur}")
    if phases.get("X", 0) == 0:
        fail("trace contains no complete ('X') events")
    return phases


def spans_by_track(events):
    tracks = {}
    for e in events:
        if e["ph"] != "X":
            continue
        key = (e["pid"], e["tid"])
        tracks.setdefault(key, []).append(
            (float(e["ts"]), float(e["ts"]) + float(e["dur"]), e["name"]))
    for spans in tracks.values():
        # Enclosing span first when begins tie, so the nesting check sees
        # the parent before its children.
        spans.sort(key=lambda s: (s[0], -s[1]))
    return tracks


def check_track_discipline(tracks):
    eps = 1e-6  # one trace tick (traces are in microseconds)
    for (pid, tid), spans in tracks.items():
        if pid == VIRTUAL_PID:
            # Serialized engine: strictly disjoint.
            for (b0, e0, n0), (b1, e1, n1) in zip(spans, spans[1:]):
                if b1 < e0 - eps:
                    fail(f"virtual track {pid}:{tid}: '{n1}' "
                         f"[{b1:.3f},{e1:.3f}) overlaps '{n0}' "
                         f"[{b0:.3f},{e0:.3f})")
        else:
            # Wall-clock thread: nested-or-disjoint (a stage span contains
            # its inner spmv spans).  Sorted by (begin, end); maintain a
            # stack of open enclosing spans.
            stack = []
            for b, e, n in spans:
                while stack and stack[-1][1] <= b + eps:
                    stack.pop()
                if stack and e > stack[-1][1] + eps:
                    pb, pe, pn = stack[-1]
                    fail(f"wall track {pid}:{tid}: '{n}' [{b:.3f},{e:.3f}) "
                         f"straddles '{pn}' [{pb:.3f},{pe:.3f}) — neither "
                         f"nested nor disjoint")
                stack.append((b, e, n))


def check_monotonic(tracks):
    # After sorting, begins are non-decreasing by construction; assert the
    # raw timestamps are sane (no NaN snuck through as sort garbage).
    for (pid, tid), spans in tracks.items():
        for b, e, n in spans:
            if not (e >= b):  # also catches NaN
                fail(f"track {pid}:{tid}: span '{n}' has end {e} < begin {b}")


def counter_series(events):
    """Group 'C' samples by (pid, name) -> [(ts, value)] sorted by ts."""
    series = {}
    for i, e in enumerate(events):
        if e["ph"] != "C":
            continue
        args = e.get("args")
        if not isinstance(args, dict) or not isinstance(
                args.get("value"), (int, float)):
            fail(f"counter event #{i} ('{e['name']}') has no numeric "
                 f"args.value")
        series.setdefault((e["pid"], e["name"]), []).append(
            (float(e["ts"]), float(args["value"])))
    for samples in series.values():
        samples.sort(key=lambda s: s[0])
    return series


CUMULATIVE_PREFIXES = ("fault.", "degrade.", "budget.", "cancel.",
                       "watchdog.", "service.", "cache.", "d2d.", "sdc.")


def check_counter_series(series):
    """fault./degrade./budget./cancel./watchdog./service./cache. counters
    mirror cumulative registry values, so each series must be non-negative
    and non-decreasing in time."""
    checked = 0
    for (pid, name), samples in series.items():
        if not name.startswith(CUMULATIVE_PREFIXES):
            continue
        checked += 1
        prev = None
        for ts, v in samples:
            if v < 0:
                fail(f"counter '{name}' (pid {pid}) negative value {v} "
                     f"at ts {ts:.3f}")
            if prev is not None and v < prev:
                fail(f"counter '{name}' (pid {pid}) decreases {prev} -> {v} "
                     f"at ts {ts:.3f}; cumulative series must be monotone")
            prev = v
    return checked


def check_expected_counters(series, names):
    """Bare NAME asserts presence; 'NAME>=MIN' additionally requires the
    series' final (= cumulative max, for monotone counters) value to reach
    MIN — e.g. the sdc_smoke gate's 'sdc.detected>=1'."""
    present = {name for (_, name) in series}
    for spec in names:
        name, minimum = spec, None
        if ">=" in spec:
            name, bound = spec.split(">=", 1)
            name = name.strip()
            try:
                minimum = float(bound)
            except ValueError:
                fail(f"--expect-counter '{spec}': bound '{bound}' is not "
                     f"a number")
        if name not in present:
            fail(f"expected counter '{name}' absent from trace "
                 f"(present: {sorted(present) or ['<none>']})")
        if minimum is None:
            continue
        final = max(samples[-1][1]
                    for (_, n), samples in series.items()
                    if n == name and samples)
        if final < minimum:
            fail(f"counter '{name}' final value {final} < required "
                 f"{minimum}")


def recompute_overlap_seconds(tracks):
    """Pairwise link-x-compute intersection, mirroring DeviceContext's
    incremental accounting (each copy/kernel interval pair counted once).
    A DeviceGroup gives device i the tids (2i+1, 2i+2), so overlap is only
    counted between a link track and its own device's compute track, then
    summed across devices."""
    total = 0.0
    split = {"h2d": 0.0, "d2h": 0.0, "d2d": 0.0}
    for (pid, tid), link in tracks.items():
        if pid != VIRTUAL_PID or tid % 2 != 1:
            continue
        compute = tracks.get((VIRTUAL_PID, tid + 1), [])
        for cb, ce, cname in link:
            for kb, ke, _ in compute:
                ov = min(ce, ke) - max(cb, kb)
                if ov > 0:
                    total += ov
                    if cname in split:
                        split[cname] += ov
    scale = 1e-6  # trace is in microseconds, counters in seconds
    return (total * scale, split["h2d"] * scale, split["d2h"] * scale,
            split["d2d"] * scale)


def check_against_metrics(tracks, metrics_path, tolerance):
    with open(metrics_path, "r", encoding="utf-8") as f:
        metrics = json.load(f)
    gauges = metrics.get("gauges", {})
    want = gauges.get("device.overlapped_seconds")
    if want is None:
        fail(f"{metrics_path} has no device.overlapped_seconds gauge")
    total, h2d, d2h, d2d = recompute_overlap_seconds(tracks)
    checks = [("device.overlapped_seconds", want, total)]
    for key, got in (("device.overlapped_h2d_seconds", h2d),
                     ("device.overlapped_d2h_seconds", d2h),
                     ("device.overlapped_d2d_seconds", d2d)):
        if key in gauges:
            checks.append((key, gauges[key], got))
    for key, want, got in checks:
        if abs(want - got) > tolerance:
            fail(f"{key}: counter says {want!r} but trace recomputes "
                 f"{got!r} (|diff| = {abs(want - got):g} > {tolerance:g})")
    print(f"check_trace: overlap cross-check OK "
          f"(total {total:.9f}s, h2d {h2d:.9f}s, d2h {d2h:.9f}s, "
          f"d2d {d2d:.9f}s)")


def check_gauge_ratios(metrics_path, specs):
    """Assert NUM/DEN >= MIN over gauges in the metrics snapshot."""
    if not specs:
        return
    if not metrics_path:
        fail("--expect-gauge-ratio requires --metrics")
    with open(metrics_path, "r", encoding="utf-8") as f:
        gauges = json.load(f).get("gauges", {})
    for spec in specs:
        m = re.fullmatch(r"\s*([^/\s]+)\s*/\s*([^>\s]+)\s*>=\s*(\S+)\s*", spec)
        if m is None:
            fail(f"malformed --expect-gauge-ratio '{spec}' "
                 f"(want NUM/DEN>=MIN)")
        num_name, den_name, want = m.group(1), m.group(2), float(m.group(3))
        for name in (num_name, den_name):
            if name not in gauges:
                fail(f"gauge '{name}' absent from {metrics_path} "
                     f"(present: {sorted(gauges) or ['<none>']})")
        den = float(gauges[den_name])
        if den == 0:
            fail(f"gauge '{den_name}' is 0; ratio '{spec}' undefined")
        ratio = float(gauges[num_name]) / den
        if ratio < want:
            fail(f"gauge ratio {num_name}/{den_name} = {ratio:.3f} "
                 f"below required {want:g}")
        print(f"check_trace: gauge ratio OK — {num_name}/{den_name} = "
              f"{ratio:.3f} >= {want:g}")


def check_bytes_ratios(metrics_path, specs):
    """Assert NUM/DEN <= MAX over gauges in the metrics snapshot — the
    ceiling-shaped sibling of check_gauge_ratios, used to prove a narrow
    precision rung really shrinks the bytes a site moves."""
    if not specs:
        return
    if not metrics_path:
        fail("--expect-bytes-ratio requires --metrics")
    with open(metrics_path, "r", encoding="utf-8") as f:
        gauges = json.load(f).get("gauges", {})
    for spec in specs:
        m = re.fullmatch(r"\s*([^/\s]+)\s*/\s*([^<\s]+)\s*<=\s*(\S+)\s*", spec)
        if m is None:
            fail(f"malformed --expect-bytes-ratio '{spec}' "
                 f"(want NUM/DEN<=MAX)")
        num_name, den_name, want = m.group(1), m.group(2), float(m.group(3))
        for name in (num_name, den_name):
            if name not in gauges:
                fail(f"gauge '{name}' absent from {metrics_path} "
                     f"(present: {sorted(gauges) or ['<none>']})")
        den = float(gauges[den_name])
        if den == 0:
            fail(f"gauge '{den_name}' is 0; ratio '{spec}' undefined")
        ratio = float(gauges[num_name]) / den
        if ratio > want:
            fail(f"bytes ratio {num_name}/{den_name} = {ratio:.3f} "
                 f"above allowed {want:g}")
        print(f"check_trace: bytes ratio OK — {num_name}/{den_name} = "
              f"{ratio:.3f} <= {want:g}")


def check_gauges(metrics_path, specs):
    """Assert NAME >= MIN (or NAME <= MAX) over gauges in the snapshot."""
    if not specs:
        return
    if not metrics_path:
        fail("--expect-gauge requires --metrics")
    with open(metrics_path, "r", encoding="utf-8") as f:
        gauges = json.load(f).get("gauges", {})
    for spec in specs:
        m = re.fullmatch(r"\s*([^<>=\s]+)\s*(>=|<=)\s*(\S+)\s*", spec)
        if m is None:
            fail(f"malformed --expect-gauge '{spec}' "
                 f"(want NAME>=MIN or NAME<=MAX)")
        name, op, bound = m.group(1), m.group(2), float(m.group(3))
        if name not in gauges:
            fail(f"gauge '{name}' absent from {metrics_path} "
                 f"(present: {sorted(gauges) or ['<none>']})")
        value = float(gauges[name])
        ok = value >= bound if op == ">=" else value <= bound
        if not ok:
            fail(f"gauge {name} = {value:g} violates '{spec}'")
        print(f"check_trace: gauge OK — {name} = {value:g} {op} {bound:g}")


SITE_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

COUNT_FIELDS = ("kernel_launches", "transfers_h2d", "transfers_d2h",
                "transfers_d2d", "bytes_h2d", "bytes_d2h", "bytes_d2d")
MODEL_FIELDS = ("flops", "bytes_read", "bytes_written", "kernel_seconds",
                "transfer_seconds")


def check_report_attribution(report_path, seconds_tol):
    """Validate the run report's attribution section (check #8)."""
    with open(report_path, "r", encoding="utf-8") as f:
        report = json.load(f)
    attr = report.get("attribution")
    if not isinstance(attr, dict):
        fail(f"{report_path} has no 'attribution' section")
    sites = attr.get("sites")
    if not isinstance(sites, list) or not sites:
        fail(f"{report_path}: attribution.sites missing or empty")
    roofline = attr.get("roofline", {})
    for key in ("peak_flops", "bandwidth_bytes_per_sec"):
        if not (isinstance(roofline.get(key), (int, float))
                and roofline[key] > 0):
            fail(f"{report_path}: attribution.roofline.{key} missing or "
                 f"non-positive")

    sums = {k: 0 for k in COUNT_FIELDS}
    sums.update({k: 0.0 for k in MODEL_FIELDS})
    for s in sites:
        name = s.get("site", "")
        if not SITE_RE.fullmatch(name):
            fail(f"{report_path}: site name '{name}' violates the dotted "
                 f"lowercase-identifier convention")
        if name == "unattributed":
            fail(f"{report_path}: 'unattributed' bucket present — some "
                 f"launch or transfer is missing a site tag")
        for field in COUNT_FIELDS + MODEL_FIELDS:
            v = s.get(field)
            if not isinstance(v, (int, float)) or v < 0:
                fail(f"{report_path}: site '{name}' field '{field}' "
                     f"missing or negative ({v!r})")
            sums[field] += v
        if s["kernel_launches"] > 0 and s["flops"] <= 0:
            fail(f"{report_path}: site '{name}' launched "
                 f"{s['kernel_launches']} kernels but modeled 0 flops")
        util = s.get("roofline_utilization")
        if not isinstance(util, (int, float)):
            fail(f"{report_path}: site '{name}' missing "
                 f"roofline_utilization")
        has_work = s["kernel_seconds"] + s["transfer_seconds"] > 0
        if has_work and not 0 < util <= 1:
            fail(f"{report_path}: site '{name}' roofline_utilization "
                 f"{util!r} outside (0, 1]")

    dc = attr.get("device_counters")
    if not isinstance(dc, dict):
        fail(f"{report_path}: attribution.device_counters missing")
    exact = (("kernel_launches", "kernel_launches"),
             ("bytes_h2d", "bytes_h2d"), ("bytes_d2h", "bytes_d2h"),
             ("bytes_d2d", "bytes_d2d"),
             ("transfers_h2d", "transfers_h2d"),
             ("transfers_d2h", "transfers_d2h"),
             ("transfers_d2d", "transfers_d2d"))
    for site_field, dc_field in exact:
        if sums[site_field] != dc.get(dc_field):
            fail(f"{report_path}: per-site {site_field} sums to "
                 f"{sums[site_field]} but device counters say "
                 f"{dc.get(dc_field)!r}")
    near = (("kernel_seconds", "kernel_seconds"),
            ("transfer_seconds", "modeled_transfer_seconds"))
    for site_field, dc_field in near:
        want = dc.get(dc_field, 0.0)
        if abs(sums[site_field] - want) > seconds_tol:
            fail(f"{report_path}: per-site {site_field} sums to "
                 f"{sums[site_field]!r} but device counters say {want!r} "
                 f"(|diff| > {seconds_tol:g})")
    print(f"check_trace: attribution OK — {len(sites)} sites, "
          f"{sums['kernel_launches']} launches, seconds sums match device "
          f"counters within {seconds_tol:g}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?",
                    help="trace JSON written with --trace-out (optional "
                         "when only --report is being validated)")
    ap.add_argument("--metrics",
                    help="metrics JSON written with --metrics-out; "
                         "cross-check overlapped_seconds against the trace")
    ap.add_argument("--tolerance", type=float, default=1e-9,
                    help="absolute tolerance for the overlap cross-check")
    ap.add_argument("--expect-counter", action="append", default=[],
                    metavar="NAME[>=MIN]",
                    help="fail unless a counter series with this name is "
                         "present (repeatable); with >=MIN also require "
                         "its final value to reach MIN")
    ap.add_argument("--expect-gauge-ratio", action="append", default=[],
                    metavar="NUM/DEN>=MIN",
                    help="fail unless metrics gauges NUM and DEN exist and "
                         "NUM/DEN >= MIN (repeatable; requires --metrics)")
    ap.add_argument("--expect-gauge", action="append", default=[],
                    metavar="NAME>=MIN",
                    help="fail unless the metrics gauge exists and satisfies "
                         "the bound; NAME>=MIN or NAME<=MAX (repeatable; "
                         "requires --metrics)")
    ap.add_argument("--expect-bytes-ratio", action="append", default=[],
                    metavar="NUM/DEN<=MAX",
                    help="fail unless metrics gauges NUM and DEN exist and "
                         "NUM/DEN <= MAX (repeatable; requires --metrics)")
    ap.add_argument("--report", metavar="REPORT.json",
                    help="run-report JSON (--report-out); validate its "
                         "attribution section against the device counters")
    ap.add_argument("--seconds-tolerance", type=float, default=1e-6,
                    help="absolute tolerance for the attribution seconds "
                         "sums (default 1e-6)")
    args = ap.parse_args()

    if args.report:
        check_report_attribution(args.report, args.seconds_tolerance)
    if args.trace is None:
        if not args.report:
            ap.error("a trace argument or --report is required")
        sys.exit(0)

    events = load_events(args.trace)
    phases = check_schema(events)
    tracks = spans_by_track(events)
    check_monotonic(tracks)
    check_track_discipline(tracks)
    series = counter_series(events)
    fault_series = check_counter_series(series)
    check_expected_counters(series, args.expect_counter)
    if args.metrics:
        check_against_metrics(tracks, args.metrics, args.tolerance)
    check_gauge_ratios(args.metrics, args.expect_gauge_ratio)
    check_gauges(args.metrics, args.expect_gauge)
    check_bytes_ratios(args.metrics, args.expect_bytes_ratio)
    n_spans = sum(len(s) for s in tracks.values())
    print(f"check_trace: OK — {len(events)} events "
          f"({phases.get('X', 0)} spans on {len(tracks)} tracks, "
          f"{phases.get('C', 0)} counter samples in {len(series)} series "
          f"of which {fault_series} fault/degrade, "
          f"{phases.get('M', 0)} metadata records); "
          f"{n_spans} spans well-formed")
    sys.exit(0)


if __name__ == "__main__":
    main()
